// TACL expression evaluator (the `expr` command, and conditions for
// `if`/`while`/`for`).
//
// A recursive-descent parser over the expression string.  Like real Tcl,
// `expr` performs its own $variable and [command] substitution, so the
// recommended brace-quoted style — `while {$i < 10} {...}` — works and
// short-circuiting (&&, ||, ?:) skips side effects in dead branches.
#include <cctype>
#include <cmath>

#include "tacl/interp.h"
#include "tacl/list.h"

namespace tacoma::tacl {
namespace {

struct Val {
  enum class Kind { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double d = 0.0;
  std::string s;

  static Val Int(int64_t v) {
    Val out;
    out.kind = Kind::kInt;
    out.i = v;
    return out;
  }
  static Val Double(double v) {
    Val out;
    out.kind = Kind::kDouble;
    out.d = v;
    return out;
  }
  static Val Str(std::string v) {
    Val out;
    out.kind = Kind::kString;
    out.s = std::move(v);
    return out;
  }

  double AsDouble() const { return kind == Kind::kDouble ? d : static_cast<double>(i); }

  std::string ToString() const {
    switch (kind) {
      case Kind::kInt:
        return FormatInt(i);
      case Kind::kDouble:
        return FormatDouble(d);
      case Kind::kString:
        return s;
    }
    return "";
  }
};

class ExprParser {
 public:
  ExprParser(Interp& interp, const std::string& text) : interp_(interp), s_(text) {}

  Outcome Run() {
    Val v = ParseTernary(/*live=*/true);
    if (failed_) {
      return Error(error_);
    }
    SkipSpace();
    if (pos_ != s_.size()) {
      return Error("syntax error in expression: trailing characters at \"" +
                   s_.substr(pos_) + "\"");
    }
    return Ok(v.ToString());
  }

 private:
  // --- Error plumbing ---------------------------------------------------------

  Val Fail(const std::string& message) {
    if (!failed_) {
      failed_ = true;
      error_ = message;
    }
    return Val::Int(0);
  }

  // --- Lexing helpers ----------------------------------------------------------

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }
  char Peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char PeekAt(size_t ahead) {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }
  bool Consume(std::string_view op) {
    SkipSpace();
    if (s_.compare(pos_, op.size(), op) == 0) {
      pos_ += op.size();
      return true;
    }
    return false;
  }
  // Consumes `op` only if not followed by `not_followed_by` (so "<" doesn't
  // eat "<<" or "<=").
  bool ConsumeExact(std::string_view op, std::string_view not_followed_by) {
    SkipSpace();
    if (s_.compare(pos_, op.size(), op) != 0) {
      return false;
    }
    char next = pos_ + op.size() < s_.size() ? s_[pos_ + op.size()] : '\0';
    if (not_followed_by.find(next) != std::string_view::npos && next != '\0') {
      return false;
    }
    pos_ += op.size();
    return true;
  }

  // --- Truthiness & numeric coercion ---------------------------------------------

  bool Truthy(const Val& v) {
    switch (v.kind) {
      case Val::Kind::kInt:
        return v.i != 0;
      case Val::Kind::kDouble:
        return v.d != 0.0;
      case Val::Kind::kString: {
        if (auto i = ParseInt(v.s)) {
          return *i != 0;
        }
        if (auto d = ParseDouble(v.s)) {
          return *d != 0.0;
        }
        std::string lower = v.s;
        for (char& c : lower) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (lower == "true" || lower == "yes" || lower == "on") {
          return true;
        }
        if (lower == "false" || lower == "no" || lower == "off") {
          return false;
        }
        Fail("expected boolean value but got \"" + v.s + "\"");
        return false;
      }
    }
    return false;
  }

  // Coerces to numeric; fails on non-numeric strings.
  Val ToNumber(const Val& v) {
    if (v.kind != Val::Kind::kString) {
      return v;
    }
    if (auto i = ParseInt(v.s)) {
      return Val::Int(*i);
    }
    if (auto d = ParseDouble(v.s)) {
      return Val::Double(*d);
    }
    return Fail("can't use non-numeric string \"" + v.s + "\" as operand");
  }

  bool BothInt(const Val& a, const Val& b) {
    return a.kind == Val::Kind::kInt && b.kind == Val::Kind::kInt;
  }

  // --- Grammar (lowest to highest precedence) --------------------------------------

  Val ParseTernary(bool live) {
    Val cond = ParseOr(live);
    SkipSpace();
    if (!Consume("?")) {
      return cond;
    }
    bool take_then = live && !failed_ && Truthy(cond);
    Val then_val = ParseTernary(live && take_then);
    SkipSpace();
    if (!Consume(":")) {
      return Fail("missing ':' in ternary expression");
    }
    Val else_val = ParseTernary(live && !take_then);
    if (!live || failed_) {
      return Val::Int(0);
    }
    return take_then ? then_val : else_val;
  }

  Val ParseOr(bool live) {
    Val lhs = ParseAnd(live);
    while (Consume("||")) {
      bool lhs_true = live && !failed_ && Truthy(lhs);
      Val rhs = ParseAnd(live && !lhs_true);
      if (live && !failed_) {
        lhs = Val::Int((lhs_true || Truthy(rhs)) ? 1 : 0);
      }
    }
    return lhs;
  }

  Val ParseAnd(bool live) {
    Val lhs = ParseBitOr(live);
    while (Consume("&&")) {
      bool lhs_true = live && !failed_ && Truthy(lhs);
      Val rhs = ParseBitOr(live && lhs_true);
      if (live && !failed_) {
        lhs = Val::Int((lhs_true && Truthy(rhs)) ? 1 : 0);
      }
    }
    return lhs;
  }

  Val ParseBitOr(bool live) {
    Val lhs = ParseBitXor(live);
    while (true) {
      SkipSpace();
      if (Peek() == '|' && PeekAt(1) != '|') {
        ++pos_;
        Val rhs = ParseBitXor(live);
        lhs = IntBinop(lhs, rhs, '|', live);
      } else {
        return lhs;
      }
    }
  }

  Val ParseBitXor(bool live) {
    Val lhs = ParseBitAnd(live);
    while (true) {
      SkipSpace();
      if (Peek() == '^') {
        ++pos_;
        Val rhs = ParseBitAnd(live);
        lhs = IntBinop(lhs, rhs, '^', live);
      } else {
        return lhs;
      }
    }
  }

  Val ParseBitAnd(bool live) {
    Val lhs = ParseEquality(live);
    while (true) {
      SkipSpace();
      if (Peek() == '&' && PeekAt(1) != '&') {
        ++pos_;
        Val rhs = ParseEquality(live);
        lhs = IntBinop(lhs, rhs, '&', live);
      } else {
        return lhs;
      }
    }
  }

  Val ParseEquality(bool live) {
    Val lhs = ParseRelational(live);
    while (true) {
      SkipSpace();
      int op;
      if (Consume("==")) {
        op = 0;
      } else if (Consume("!=")) {
        op = 1;
      } else if (ConsumeWord("eq")) {
        op = 2;
      } else if (ConsumeWord("ne")) {
        op = 3;
      } else {
        return lhs;
      }
      Val rhs = ParseRelational(live);
      if (!live || failed_) {
        continue;
      }
      if (op >= 2) {
        bool equal = lhs.ToString() == rhs.ToString();
        lhs = Val::Int((op == 2) == equal ? 1 : 0);
        continue;
      }
      lhs = Val::Int(Compare(lhs, rhs, op == 0 ? "==" : "!="));
    }
  }

  Val ParseRelational(bool live) {
    Val lhs = ParseShift(live);
    while (true) {
      SkipSpace();
      const char* op = nullptr;
      if (Consume("<=")) {
        op = "<=";
      } else if (Consume(">=")) {
        op = ">=";
      } else if (ConsumeExact("<", "<=")) {
        op = "<";
      } else if (ConsumeExact(">", ">=")) {
        op = ">";
      } else {
        return lhs;
      }
      Val rhs = ParseShift(live);
      if (live && !failed_) {
        lhs = Val::Int(Compare(lhs, rhs, op));
      }
    }
  }

  Val ParseShift(bool live) {
    Val lhs = ParseAdditive(live);
    while (true) {
      SkipSpace();
      char op;
      if (Consume("<<")) {
        op = 'l';
      } else if (Consume(">>")) {
        op = 'r';
      } else {
        return lhs;
      }
      Val rhs = ParseAdditive(live);
      lhs = IntBinop(lhs, rhs, op, live);
    }
  }

  Val ParseAdditive(bool live) {
    Val lhs = ParseMultiplicative(live);
    while (true) {
      SkipSpace();
      char op = Peek();
      if (op != '+' && op != '-') {
        return lhs;
      }
      ++pos_;
      Val rhs = ParseMultiplicative(live);
      lhs = Arith(lhs, rhs, op, live);
    }
  }

  Val ParseMultiplicative(bool live) {
    Val lhs = ParseUnary(live);
    while (true) {
      SkipSpace();
      char op = Peek();
      if (op != '*' && op != '/' && op != '%') {
        return lhs;
      }
      ++pos_;
      Val rhs = ParseUnary(live);
      lhs = Arith(lhs, rhs, op, live);
    }
  }

  Val ParseUnary(bool live) {
    SkipSpace();
    char c = Peek();
    if (c == '-') {
      ++pos_;
      Val v = ToNumber(ParseUnary(live));
      if (!live || failed_) {
        return Val::Int(0);
      }
      return v.kind == Val::Kind::kInt ? Val::Int(-v.i) : Val::Double(-v.d);
    }
    if (c == '+') {
      ++pos_;
      return ToNumber(ParseUnary(live));
    }
    if (c == '!') {
      ++pos_;
      Val v = ParseUnary(live);
      if (!live || failed_) {
        return Val::Int(0);
      }
      return Val::Int(Truthy(v) ? 0 : 1);
    }
    if (c == '~') {
      ++pos_;
      Val v = ToNumber(ParseUnary(live));
      if (!live || failed_) {
        return Val::Int(0);
      }
      if (v.kind != Val::Kind::kInt) {
        return Fail("can't apply ~ to a floating-point value");
      }
      return Val::Int(~v.i);
    }
    return ParsePrimary(live);
  }

  Val ParsePrimary(bool live) {
    SkipSpace();
    if (pos_ >= s_.size()) {
      return Fail("premature end of expression");
    }
    char c = Peek();
    if (c == '(') {
      ++pos_;
      Val v = ParseTernary(live);
      SkipSpace();
      if (!Consume(")")) {
        return Fail("missing close parenthesis");
      }
      return v;
    }
    if (c == '$') {
      return ParseVariable(live);
    }
    if (c == '[') {
      return ParseCommandSub(live);
    }
    if (c == '"') {
      return ParseStringLiteral();
    }
    if (c == '{') {
      return ParseBracedLiteral();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(1))))) {
      return ParseNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseWordOrFunction(live);
    }
    return Fail(std::string("unexpected character '") + c + "' in expression");
  }

  Val ParseVariable(bool live) {
    ++pos_;  // Consume '$'.
    std::string name;
    if (Peek() == '{') {
      ++pos_;
      while (pos_ < s_.size() && s_[pos_] != '}') {
        name.push_back(s_[pos_++]);
      }
      if (pos_ >= s_.size()) {
        return Fail("missing close-brace for variable name");
      }
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
        name.push_back(s_[pos_++]);
      }
    }
    if (name.empty()) {
      return Fail("invalid '$' in expression");
    }
    if (!live) {
      return Val::Int(0);
    }
    auto value = interp_.GetVar(name);
    if (!value.has_value()) {
      return Fail("can't read \"" + name + "\": no such variable");
    }
    return Val::Str(*value);
  }

  Val ParseCommandSub(bool live) {
    ++pos_;  // Consume '['.
    size_t start = pos_;
    int depth = 1;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '\\' && pos_ + 1 < s_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        if (--depth == 0) {
          break;
        }
      }
      ++pos_;
    }
    if (depth != 0) {
      return Fail("missing close-bracket");
    }
    std::string script = s_.substr(start, pos_ - start);
    ++pos_;  // Consume ']'.
    if (!live) {
      return Val::Int(0);
    }
    Outcome out = interp_.Eval(script);
    if (out.code != Code::kOk) {
      return Fail(out.value);
    }
    return Val::Str(out.value);
  }

  Val ParseStringLiteral() {
    ++pos_;  // Consume '"'.
    std::string value;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        char e = s_[pos_ + 1];
        value.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
        pos_ += 2;
        continue;
      }
      value.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) {
      return Fail("missing close-quote in expression");
    }
    ++pos_;
    return Val::Str(std::move(value));
  }

  Val ParseBracedLiteral() {
    ++pos_;  // Consume '{'.
    std::string value;
    int depth = 1;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          break;
        }
      }
      value.push_back(c);
      ++pos_;
    }
    if (depth != 0) {
      return Fail("missing close-brace in expression");
    }
    ++pos_;
    return Val::Str(std::move(value));
  }

  Val ParseNumber() {
    size_t start = pos_;
    // Hex?
    if (Peek() == '0' && (PeekAt(1) == 'x' || PeekAt(1) == 'X')) {
      pos_ += 2;
      while (pos_ < s_.size() && std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      auto v = ParseInt(s_.substr(start, pos_ - start));
      if (!v.has_value()) {
        return Fail("malformed hex number");
      }
      return Val::Int(*v);
    }
    bool is_double = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.') {
        is_double = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ + 1 < s_.size() &&
                 (std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])) ||
                  s_[pos_ + 1] == '+' || s_[pos_ + 1] == '-')) {
        is_double = true;
        pos_ += 2;
      } else {
        break;
      }
    }
    std::string text = s_.substr(start, pos_ - start);
    if (is_double) {
      auto v = ParseDouble(text);
      if (!v.has_value()) {
        return Fail("malformed number \"" + text + "\"");
      }
      return Val::Double(*v);
    }
    auto v = ParseInt(text);
    if (!v.has_value()) {
      return Fail("malformed number \"" + text + "\"");
    }
    return Val::Int(*v);
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (s_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    char next = pos_ + word.size() < s_.size() ? s_[pos_ + word.size()] : '\0';
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  Val ParseWordOrFunction(bool live) {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
      ++pos_;
    }
    std::string word = s_.substr(start, pos_ - start);
    SkipSpace();
    if (Peek() == '(') {
      ++pos_;
      std::vector<Val> args;
      SkipSpace();
      if (Peek() != ')') {
        while (true) {
          args.push_back(ParseTernary(live));
          SkipSpace();
          if (Consume(",")) {
            continue;
          }
          break;
        }
      }
      if (!Consume(")")) {
        return Fail("missing close parenthesis in function call");
      }
      if (!live || failed_) {
        return Val::Int(0);
      }
      return CallFunction(word, args);
    }
    // Boolean literals.
    if (word == "true" || word == "yes" || word == "on") {
      return Val::Int(1);
    }
    if (word == "false" || word == "no" || word == "off") {
      return Val::Int(0);
    }
    return Fail("unknown word \"" + word + "\" in expression (missing $?)");
  }

  // --- Operator implementations -------------------------------------------------

  // Returns 1/0 for relational ops; numeric compare when both sides are
  // numeric, string compare otherwise (Tcl semantics).
  int64_t Compare(const Val& lhs, const Val& rhs, std::string_view op) {
    auto lnum = TryNumber(lhs);
    auto rnum = TryNumber(rhs);
    int cmp;
    if (lnum.has_value() && rnum.has_value()) {
      if (lnum->kind == Val::Kind::kInt && rnum->kind == Val::Kind::kInt) {
        cmp = lnum->i < rnum->i ? -1 : lnum->i > rnum->i ? 1 : 0;
      } else {
        double a = lnum->AsDouble();
        double b = rnum->AsDouble();
        cmp = a < b ? -1 : a > b ? 1 : 0;
      }
    } else {
      std::string a = lhs.ToString();
      std::string b = rhs.ToString();
      cmp = a < b ? -1 : a > b ? 1 : 0;
    }
    if (op == "==") {
      return cmp == 0;
    }
    if (op == "!=") {
      return cmp != 0;
    }
    if (op == "<") {
      return cmp < 0;
    }
    if (op == "<=") {
      return cmp <= 0;
    }
    if (op == ">") {
      return cmp > 0;
    }
    return cmp >= 0;  // ">="
  }

  std::optional<Val> TryNumber(const Val& v) {
    if (v.kind != Val::Kind::kString) {
      return v;
    }
    if (auto i = ParseInt(v.s)) {
      return Val::Int(*i);
    }
    if (auto d = ParseDouble(v.s)) {
      return Val::Double(*d);
    }
    return std::nullopt;
  }

  Val Arith(const Val& lhs, const Val& rhs, char op, bool live) {
    if (!live || failed_) {
      return Val::Int(0);
    }
    Val a = ToNumber(lhs);
    Val b = ToNumber(rhs);
    if (failed_) {
      return Val::Int(0);
    }
    if (BothInt(a, b)) {
      switch (op) {
        case '+':
          return Val::Int(a.i + b.i);
        case '-':
          return Val::Int(a.i - b.i);
        case '*':
          return Val::Int(a.i * b.i);
        case '/':
          if (b.i == 0) {
            return Fail("divide by zero");
          }
          return Val::Int(a.i / b.i);
        case '%':
          if (b.i == 0) {
            return Fail("divide by zero");
          }
          return Val::Int(a.i % b.i);
      }
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op) {
      case '+':
        return Val::Double(x + y);
      case '-':
        return Val::Double(x - y);
      case '*':
        return Val::Double(x * y);
      case '/':
        if (y == 0.0) {
          return Fail("divide by zero");
        }
        return Val::Double(x / y);
      case '%':
        return Fail("can't apply % to floating-point values");
    }
    return Fail("internal: bad arithmetic operator");
  }

  Val IntBinop(const Val& lhs, const Val& rhs, char op, bool live) {
    if (!live || failed_) {
      return Val::Int(0);
    }
    Val a = ToNumber(lhs);
    Val b = ToNumber(rhs);
    if (failed_) {
      return Val::Int(0);
    }
    if (!BothInt(a, b)) {
      return Fail("bitwise operators require integer operands");
    }
    switch (op) {
      case '|':
        return Val::Int(a.i | b.i);
      case '^':
        return Val::Int(a.i ^ b.i);
      case '&':
        return Val::Int(a.i & b.i);
      case 'l':
        return Val::Int(b.i < 0 || b.i > 63 ? 0 : a.i << b.i);
      case 'r':
        return Val::Int(b.i < 0 || b.i > 63 ? (a.i < 0 ? -1 : 0) : a.i >> b.i);
    }
    return Fail("internal: bad bitwise operator");
  }

  Val CallFunction(const std::string& name, const std::vector<Val>& args) {
    auto need = [&](size_t n) {
      if (args.size() != n) {
        Fail("wrong # args for math function \"" + name + "\"");
        return false;
      }
      return true;
    };
    auto num = [&](const Val& v) { return ToNumber(v); };

    if (name == "abs") {
      if (!need(1)) {
        return Val::Int(0);
      }
      Val v = num(args[0]);
      if (failed_) {
        return Val::Int(0);
      }
      return v.kind == Val::Kind::kInt ? Val::Int(v.i < 0 ? -v.i : v.i)
                                       : Val::Double(std::fabs(v.d));
    }
    if (name == "int") {
      if (!need(1)) {
        return Val::Int(0);
      }
      Val v = num(args[0]);
      return Val::Int(v.kind == Val::Kind::kInt ? v.i : static_cast<int64_t>(v.d));
    }
    if (name == "double") {
      if (!need(1)) {
        return Val::Int(0);
      }
      return Val::Double(num(args[0]).AsDouble());
    }
    if (name == "round") {
      if (!need(1)) {
        return Val::Int(0);
      }
      return Val::Int(static_cast<int64_t>(std::llround(num(args[0]).AsDouble())));
    }
    if (name == "sqrt") {
      if (!need(1)) {
        return Val::Int(0);
      }
      double x = num(args[0]).AsDouble();
      if (x < 0) {
        return Fail("domain error: sqrt of negative value");
      }
      return Val::Double(std::sqrt(x));
    }
    if (name == "pow") {
      if (!need(2)) {
        return Val::Int(0);
      }
      // Sequence the conversions: function-argument evaluation order is
      // unspecified, and first-error-wins must pick args[0]'s error.
      double base = num(args[0]).AsDouble();
      double exponent = num(args[1]).AsDouble();
      return Val::Double(std::pow(base, exponent));
    }
    if (name == "floor") {
      if (!need(1)) {
        return Val::Int(0);
      }
      return Val::Double(std::floor(num(args[0]).AsDouble()));
    }
    if (name == "ceil") {
      if (!need(1)) {
        return Val::Int(0);
      }
      return Val::Double(std::ceil(num(args[0]).AsDouble()));
    }
    if (name == "exp") {
      if (!need(1)) {
        return Val::Int(0);
      }
      return Val::Double(std::exp(num(args[0]).AsDouble()));
    }
    if (name == "log") {
      if (!need(1)) {
        return Val::Int(0);
      }
      double x = num(args[0]).AsDouble();
      if (x <= 0) {
        return Fail("domain error: log of non-positive value");
      }
      return Val::Double(std::log(x));
    }
    if (name == "fmod") {
      if (!need(2)) {
        return Val::Int(0);
      }
      double y = num(args[1]).AsDouble();
      if (y == 0.0) {
        return Fail("divide by zero");
      }
      return Val::Double(std::fmod(num(args[0]).AsDouble(), y));
    }
    if (name == "min" || name == "max") {
      if (args.empty()) {
        return Fail("wrong # args for math function \"" + name + "\"");
      }
      Val best = num(args[0]);
      for (size_t i = 1; i < args.size() && !failed_; ++i) {
        Val v = num(args[i]);
        bool less = BothInt(v, best) ? v.i < best.i : v.AsDouble() < best.AsDouble();
        if ((name == "min") == less) {
          best = v;
        }
      }
      return best;
    }
    return Fail("unknown math function \"" + name + "\"");
  }

  Interp& interp_;
  std::string s_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

Outcome EvalExpr(Interp& interp, const std::string& expression) {
  return ExprParser(interp, expression).Run();
}

}  // namespace tacoma::tacl
