#include "tacl/interp.h"

#include "tacl/list.h"

namespace tacoma::tacl {

namespace {
constexpr size_t kParseCacheMax = 512;
}  // namespace

Interp::Interp() {
  frames_.emplace_back();
  RegisterBuiltins(this);
}

void Interp::Register(const std::string& name, CommandFn fn) {
  commands_[name] = std::move(fn);
}

bool Interp::HasCommand(const std::string& name) const {
  return commands_.contains(name);
}

void Interp::RemoveCommand(const std::string& name) {
  commands_.erase(name);
  procs_.erase(name);
}

std::vector<std::string> Interp::CommandNames() const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& [name, fn] : commands_) {
    names.push_back(name);
  }
  return names;
}

void Interp::Output(const std::string& line) {
  if (output_) {
    output_(line);
  }
}

// --- Variables ----------------------------------------------------------------

std::pair<Interp::Frame*, std::string> Interp::ResolveVar(const std::string& name) {
  size_t frame_index = frames_.size() - 1;
  std::string resolved = name;
  // Follow alias chains with a small bound (self-referential upvar guards).
  for (int hops = 0; hops < 16; ++hops) {
    auto link = frames_[frame_index].links.find(resolved);
    if (link == frames_[frame_index].links.end()) {
      break;
    }
    if (link->second.first == frame_index && link->second.second == resolved) {
      break;
    }
    frame_index = std::min(link->second.first, frames_.size() - 1);
    resolved = link->second.second;
  }
  return {&frames_[frame_index], resolved};
}

std::pair<const Interp::Frame*, std::string> Interp::ResolveVar(
    const std::string& name) const {
  auto resolved = const_cast<Interp*>(this)->ResolveVar(name);
  return {resolved.first, resolved.second};
}

std::optional<std::string> Interp::GetVar(const std::string& name) const {
  auto [frame, resolved] = ResolveVar(name);
  auto it = frame->vars.find(resolved);
  if (it == frame->vars.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Interp::SetVar(const std::string& name, std::string value) {
  auto [frame, resolved] = ResolveVar(name);
  frame->vars[resolved] = std::move(value);
}

bool Interp::UnsetVar(const std::string& name) {
  auto [frame, resolved] = ResolveVar(name);
  return frame->vars.erase(resolved) > 0;
}

void Interp::LinkGlobal(const std::string& name) {
  if (frames_.size() > 1) {
    frames_.back().links[name] = {0, name};
  }
}

Status Interp::LinkUpvar(size_t frame_index, const std::string& target,
                         const std::string& local) {
  if (frame_index >= frames_.size() - 1 && frames_.size() > 1) {
    return InvalidArgumentError("upvar: bad frame level");
  }
  frames_.back().links[local] = {frame_index, target};
  return OkStatus();
}

std::vector<std::string> Interp::VarNames() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : CurrentFrame().vars) {
    names.push_back(name);
  }
  return names;
}

// --- Procs ---------------------------------------------------------------------

Status Interp::DefineProc(const std::string& name, const std::string& params,
                          const std::string& body) {
  auto parsed = ParseList(params);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Proc proc;
  proc.body = body;
  for (size_t i = 0; i < parsed->size(); ++i) {
    const std::string& spec = (*parsed)[i];
    if (spec == "args" && i + 1 == parsed->size()) {
      proc.varargs = true;
      break;
    }
    auto pair = ParseList(spec);
    if (!pair.ok()) {
      return pair.status();
    }
    if (pair->size() == 1) {
      proc.params.push_back({(*pair)[0], std::nullopt});
    } else if (pair->size() == 2) {
      proc.params.push_back({(*pair)[0], (*pair)[1]});
    } else {
      return InvalidArgumentError("bad parameter specifier: " + spec);
    }
  }
  procs_[name] = std::move(proc);

  // Procs dispatch through the command table like everything else.
  commands_[name] = [name](Interp& interp, const std::vector<std::string>& argv) {
    auto it = interp.procs_.find(name);
    if (it == interp.procs_.end()) {
      return Error("invalid command name \"" + name + "\"");
    }
    return interp.CallProc(name, it->second, argv);
  };
  return OkStatus();
}

bool Interp::HasProc(const std::string& name) const { return procs_.contains(name); }

std::vector<std::string> Interp::ProcNames() const {
  std::vector<std::string> names;
  names.reserve(procs_.size());
  for (const auto& [name, proc] : procs_) {
    names.push_back(name);
  }
  return names;
}

Outcome Interp::CallProc(const std::string& name, const Proc& proc,
                         const std::vector<std::string>& argv) {
  if (frames_.size() >= max_depth_) {
    return Error("too many nested proc calls (max " + std::to_string(max_depth_) + ")");
  }
  // Copy what we need before pushing a frame: `proc` may reference
  // procs_[name], which a redefine inside the body would invalidate.
  const std::string body = proc.body;
  const auto params = proc.params;
  const bool varargs = proc.varargs;

  Frame frame;
  size_t given = argv.size() - 1;
  for (size_t i = 0; i < params.size(); ++i) {
    if (i < given) {
      frame.vars[params[i].name] = argv[i + 1];
    } else if (params[i].default_value.has_value()) {
      frame.vars[params[i].name] = *params[i].default_value;
    } else {
      return Error("wrong # args: should be \"" + name + " ...\"");
    }
  }
  if (varargs) {
    std::vector<std::string> rest;
    for (size_t i = params.size() + 1; i < argv.size(); ++i) {
      rest.push_back(argv[i]);
    }
    frame.vars["args"] = FormatList(rest);
  } else if (given > params.size()) {
    return Error("wrong # args: should be \"" + name + " ...\"");
  }

  frames_.push_back(std::move(frame));
  Outcome out = Eval(body);
  frames_.pop_back();

  if (out.code == Code::kReturn) {
    return Ok(std::move(out.value));
  }
  if (out.code == Code::kBreak || out.code == Code::kContinue) {
    return Error("invoked \"break\" or \"continue\" outside of a loop");
  }
  return out;
}

// --- Evaluation ------------------------------------------------------------------

std::shared_ptr<const std::vector<ParsedCommand>> Interp::ParseCached(
    std::string_view script, Status* error) {
  std::string key(script);
  auto it = parse_cache_.find(key);
  if (it != parse_cache_.end()) {
    return it->second;
  }
  auto parsed = ParseScript(script);
  if (!parsed.ok()) {
    *error = parsed.status();
    return nullptr;
  }
  auto shared =
      std::make_shared<const std::vector<ParsedCommand>>(std::move(parsed).value());
  if (parse_cache_.size() >= kParseCacheMax) {
    parse_cache_.clear();
  }
  parse_cache_.emplace(std::move(key), shared);
  return shared;
}

Outcome Interp::Eval(std::string_view script) {
  Status parse_error = OkStatus();
  auto commands = ParseCached(script, &parse_error);
  if (commands == nullptr) {
    return Error("parse error: " + parse_error.message());
  }
  ++eval_depth_;
  Outcome out = RunParsed(*commands);
  --eval_depth_;
  // A break/continue escaping to top level was never consumed by a loop.
  if (eval_depth_ == 0 &&
      (out.code == Code::kBreak || out.code == Code::kContinue)) {
    return Error("invoked \"break\" or \"continue\" outside of a loop");
  }
  return out;
}

Outcome Interp::RunParsed(const std::vector<ParsedCommand>& commands) {
  Outcome result = Ok();
  for (const ParsedCommand& cmd : commands) {
    ++steps_;
    if (step_limit_ != 0 && steps_ > step_limit_) {
      return Error("step limit exceeded");
    }
    std::vector<std::string> argv;
    argv.reserve(cmd.words.size());
    bool failed = false;
    for (const Word& word : cmd.words) {
      std::string value;
      Outcome sub = SubstituteWord(word, &value);
      if (!sub.ok()) {
        // Propagate errors and any control code raised during substitution.
        return sub;
      }
      argv.push_back(std::move(value));
      (void)failed;
    }
    if (argv.empty()) {
      continue;
    }
    result = EvalCommand(argv);
    if (result.code != Code::kOk) {
      return result;
    }
  }
  return result;
}

Outcome Interp::EvalCommand(const std::vector<std::string>& argv) {
  auto it = commands_.find(argv[0]);
  if (it == commands_.end()) {
    return Error("invalid command name \"" + argv[0] + "\"");
  }
  return it->second(*this, argv);
}

Outcome Interp::SubstituteWord(const Word& word, std::string* out) {
  if (word.parts.size() == 1 && word.parts[0].kind == WordPart::Kind::kLiteral) {
    *out = word.parts[0].text;
    return Ok();
  }
  std::string value;
  for (const WordPart& part : word.parts) {
    switch (part.kind) {
      case WordPart::Kind::kLiteral:
        value.append(part.text);
        break;
      case WordPart::Kind::kVariable: {
        auto var = GetVar(part.text);
        if (!var.has_value()) {
          return Error("can't read \"" + part.text + "\": no such variable");
        }
        value.append(*var);
        break;
      }
      case WordPart::Kind::kScript: {
        Outcome sub = Eval(part.text);
        if (sub.code != Code::kOk) {
          return sub;
        }
        value.append(sub.value);
        break;
      }
    }
  }
  *out = std::move(value);
  return Ok();
}

Result<bool> Interp::EvalCondition(const std::string& condition) {
  Outcome out = EvalExpr(*this, condition);
  if (out.code != Code::kOk) {
    return InvalidArgumentError(out.value);
  }
  // Numeric: nonzero is true.  Also accept boolean words.
  if (auto i = ParseInt(out.value)) {
    return *i != 0;
  }
  if (auto d = ParseDouble(out.value)) {
    return *d != 0.0;
  }
  std::string v = out.value;
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "no" || v == "off") {
    return false;
  }
  return InvalidArgumentError("expected boolean value but got \"" + out.value + "\"");
}

}  // namespace tacoma::tacl
