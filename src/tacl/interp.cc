#include "tacl/interp.h"

#include <cstdlib>

#include "tacl/list.h"
#include "tacl/vm/compiler.h"
#include "tacl/vm/vm.h"

namespace tacoma::tacl {

namespace {
constexpr size_t kParseCacheCapacity = 128;
constexpr size_t kUnitCacheCapacity = 128;

// The builtins the bytecode compiler inlines; shadowing or removing one of
// these invalidates inlined fast paths (see Interp::NoteCommandMutation).
bool IsInlinableBuiltin(const std::string& name) {
  return name == "set" || name == "incr" || name == "if" || name == "while" ||
         name == "for" || name == "foreach" || name == "break" ||
         name == "continue" || name == "return" || name == "expr";
}

bool ReadVmEnvDefault() {
  const char* env = std::getenv("TACOMA_TACL_VM");
  if (env == nullptr) {
    return true;
  }
  std::string v(env);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return !(v == "0" || v == "off" || v == "false");
}

bool& VmDefaultFlag() {
  static bool flag = ReadVmEnvDefault();
  return flag;
}
}  // namespace

bool VmDefaultEnabled() { return VmDefaultFlag(); }
void SetVmDefaultEnabled(bool enabled) { VmDefaultFlag() = enabled; }

Interp::Interp()
    : parse_cache_(kParseCacheCapacity),
      unit_cache_(kUnitCacheCapacity),
      vm_enabled_(VmDefaultEnabled()) {
  frames_.emplace_back();
  RegisterBuiltins(this);
  builtins_ready_ = true;
}

void Interp::NoteCommandMutation(const std::string& name, bool removed) {
  if (removed) {
    ++command_table_epoch_;
  }
  if (builtins_ready_ && IsInlinableBuiltin(name)) {
    ++builtin_epoch_;
    // Cached units that inlined this builtin would degrade statement-by-
    // statement; recompiles (generic invokes only) replace them.
    unit_cache_.Clear();
  }
}

void Interp::Register(const std::string& name, CommandFn fn) {
  commands_[name] = std::move(fn);
  NoteCommandMutation(name, /*removed=*/false);
}

bool Interp::HasCommand(const std::string& name) const {
  return commands_.contains(name);
}

void Interp::RemoveCommand(const std::string& name) {
  commands_.erase(name);
  procs_.erase(name);
  NoteCommandMutation(name, /*removed=*/true);
}

std::vector<std::string> Interp::CommandNames() const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& [name, fn] : commands_) {
    names.push_back(name);
  }
  return names;
}

void Interp::Output(const std::string& line) {
  if (output_) {
    output_(line);
  }
}

// --- Variables ----------------------------------------------------------------

std::pair<Interp::Frame*, std::string> Interp::ResolveVar(const std::string& name) {
  size_t frame_index = frames_.size() - 1;
  std::string resolved = name;
  // Follow alias chains with a small bound (self-referential upvar guards).
  for (int hops = 0; hops < 16; ++hops) {
    auto link = frames_[frame_index].links.find(resolved);
    if (link == frames_[frame_index].links.end()) {
      break;
    }
    if (link->second.first == frame_index && link->second.second == resolved) {
      break;
    }
    frame_index = std::min(link->second.first, frames_.size() - 1);
    resolved = link->second.second;
  }
  return {&frames_[frame_index], resolved};
}

std::pair<const Interp::Frame*, std::string> Interp::ResolveVar(
    const std::string& name) const {
  auto resolved = const_cast<Interp*>(this)->ResolveVar(name);
  return {resolved.first, resolved.second};
}

std::optional<std::string> Interp::GetVar(const std::string& name) const {
  auto [frame, resolved] = ResolveVar(name);
  auto it = frame->vars.find(resolved);
  if (it == frame->vars.end()) {
    return std::nullopt;
  }
  return it->second.AsString();
}

void Interp::SetVar(const std::string& name, std::string value) {
  auto [frame, resolved] = ResolveVar(name);
  frame->vars[resolved] = vm::Value::Str(std::move(value));
}

const vm::Value* Interp::GetVarValue(const std::string& name) {
  auto [frame, resolved] = ResolveVar(name);
  auto it = frame->vars.find(resolved);
  if (it == frame->vars.end()) {
    return nullptr;
  }
  return &it->second;
}

void Interp::SetVarValue(const std::string& name, vm::Value value) {
  auto [frame, resolved] = ResolveVar(name);
  frame->vars[resolved] = std::move(value);
}

bool Interp::UnsetVar(const std::string& name) {
  auto [frame, resolved] = ResolveVar(name);
  return frame->vars.erase(resolved) > 0;
}

void Interp::LinkGlobal(const std::string& name) {
  if (frames_.size() > 1) {
    frames_.back().links[name] = {0, name};
  }
}

Status Interp::LinkUpvar(size_t frame_index, const std::string& target,
                         const std::string& local) {
  if (frame_index >= frames_.size() - 1 && frames_.size() > 1) {
    return InvalidArgumentError("upvar: bad frame level");
  }
  frames_.back().links[local] = {frame_index, target};
  return OkStatus();
}

std::vector<std::string> Interp::VarNames() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : CurrentFrame().vars) {
    names.push_back(name);
  }
  return names;
}

// --- Procs ---------------------------------------------------------------------

Status Interp::DefineProc(const std::string& name, const std::string& params,
                          const std::string& body) {
  auto parsed = ParseList(params);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Proc proc;
  proc.body = body;
  for (size_t i = 0; i < parsed->size(); ++i) {
    const std::string& spec = (*parsed)[i];
    if (spec == "args" && i + 1 == parsed->size()) {
      proc.varargs = true;
      break;
    }
    auto pair = ParseList(spec);
    if (!pair.ok()) {
      return pair.status();
    }
    if (pair->size() == 1) {
      proc.params.push_back({(*pair)[0], std::nullopt});
    } else if (pair->size() == 2) {
      proc.params.push_back({(*pair)[0], (*pair)[1]});
    } else {
      return InvalidArgumentError("bad parameter specifier: " + spec);
    }
  }
  procs_[name] = std::move(proc);

  // Procs dispatch through the command table like everything else.
  commands_[name] = [name](Interp& interp, const std::vector<std::string>& argv) {
    auto it = interp.procs_.find(name);
    if (it == interp.procs_.end()) {
      return Error("invalid command name \"" + name + "\"");
    }
    return interp.CallProc(name, it->second, argv);
  };
  NoteCommandMutation(name, /*removed=*/false);
  return OkStatus();
}

bool Interp::HasProc(const std::string& name) const { return procs_.contains(name); }

std::vector<std::string> Interp::ProcNames() const {
  std::vector<std::string> names;
  names.reserve(procs_.size());
  for (const auto& [name, proc] : procs_) {
    names.push_back(name);
  }
  return names;
}

Outcome Interp::CallProc(const std::string& name, const Proc& proc,
                         const std::vector<std::string>& argv) {
  if (frames_.size() >= max_depth_) {
    return Error("too many nested proc calls (max " + std::to_string(max_depth_) + ")");
  }
  // Copy what we need before pushing a frame: `proc` may reference
  // procs_[name], which a redefine inside the body would invalidate.
  const std::string body = proc.body;
  const auto params = proc.params;
  const bool varargs = proc.varargs;

  Frame frame;
  size_t given = argv.size() - 1;
  for (size_t i = 0; i < params.size(); ++i) {
    if (i < given) {
      frame.vars[params[i].name] = vm::Value::Str(argv[i + 1]);
    } else if (params[i].default_value.has_value()) {
      frame.vars[params[i].name] = vm::Value::Str(*params[i].default_value);
    } else {
      return Error("wrong # args: should be \"" + name + " ...\"");
    }
  }
  if (varargs) {
    std::vector<std::string> rest;
    for (size_t i = params.size() + 1; i < argv.size(); ++i) {
      rest.push_back(argv[i]);
    }
    frame.vars["args"] = vm::Value::Str(FormatList(rest));
  } else if (given > params.size()) {
    return Error("wrong # args: should be \"" + name + " ...\"");
  }

  frames_.push_back(std::move(frame));
  Outcome out = Eval(body);
  frames_.pop_back();

  if (out.code == Code::kReturn) {
    return Ok(std::move(out.value));
  }
  if (out.code == Code::kBreak || out.code == Code::kContinue) {
    return Error("invoked \"break\" or \"continue\" outside of a loop");
  }
  return out;
}

// --- Evaluation ------------------------------------------------------------------

std::shared_ptr<const std::vector<ParsedCommand>> Interp::ParseCached(
    std::string_view script, Status* error) {
  std::string key(script);
  if (auto* cached = parse_cache_.Get(key)) {
    return *cached;
  }
  auto parsed = ParseScript(script);
  if (!parsed.ok()) {
    *error = parsed.status();
    return nullptr;
  }
  auto shared =
      std::make_shared<const std::vector<ParsedCommand>>(std::move(parsed).value());
  parse_cache_.Put(std::move(key), shared);
  return shared;
}

Outcome Interp::Eval(std::string_view script) {
  if (vm_enabled_) {
    return EvalCompiled(script);
  }
  return EvalTree(script);
}

Outcome Interp::EvalTree(std::string_view script) {
  Status parse_error = OkStatus();
  auto commands = ParseCached(script, &parse_error);
  if (commands == nullptr) {
    return Error("parse error: " + parse_error.message());
  }
  ++eval_depth_;
  Outcome out = RunParsed(*commands);
  --eval_depth_;
  // A break/continue escaping to top level was never consumed by a loop.
  if (eval_depth_ == 0 &&
      (out.code == Code::kBreak || out.code == Code::kContinue)) {
    return Error("invoked \"break\" or \"continue\" outside of a loop");
  }
  return out;
}

std::shared_ptr<const vm::CompiledUnit> Interp::CompileUnit(std::string_view script,
                                                            Status* error) {
  vm::CompileOptions options;
  options.inline_builtins = builtin_epoch_ == 0;
  ++vm_stats_.compiles;
  return vm::Compile(script, options, error);
}

Outcome Interp::EvalCompiled(std::string_view script) {
  std::string key(script);
  if (auto* cached = unit_cache_.Get(key)) {
    ++vm_stats_.unit_cache_hits;
    return RunUnit(*cached);
  }
  Status error = OkStatus();
  auto unit = CompileUnit(script, &error);
  if (unit == nullptr) {
    return Error("parse error: " + error.message());
  }
  unit_cache_.Put(std::move(key), unit);
  return RunUnit(unit);
}

Outcome Interp::RunUnit(const std::shared_ptr<const vm::CompiledUnit>& unit) {
  ++eval_depth_;
  Outcome out = vm::Runner(*this, *unit).Run();
  --eval_depth_;
  if (eval_depth_ == 0 &&
      (out.code == Code::kBreak || out.code == Code::kContinue)) {
    return Error("invoked \"break\" or \"continue\" outside of a loop");
  }
  return out;
}

Outcome Interp::ExecParsedCommand(const ParsedCommand& cmd) {
  std::vector<std::string> argv;
  argv.reserve(cmd.words.size());
  for (const Word& word : cmd.words) {
    std::string value;
    Outcome sub = SubstituteWord(word, &value);
    if (!sub.ok()) {
      return sub;
    }
    argv.push_back(std::move(value));
  }
  if (argv.empty()) {
    return Ok();  // Unreachable: the parser filters empty commands.
  }
  return EvalCommand(argv);
}

const Interp::CommandFn* Interp::FindCommandFn(const std::string& name) const {
  auto it = commands_.find(name);
  return it == commands_.end() ? nullptr : &it->second;
}

Outcome Interp::RunParsed(const std::vector<ParsedCommand>& commands) {
  Outcome result = Ok();
  for (const ParsedCommand& cmd : commands) {
    ++steps_;
    if (step_limit_ != 0 && steps_ > step_limit_) {
      return Error("step limit exceeded");
    }
    std::vector<std::string> argv;
    argv.reserve(cmd.words.size());
    bool failed = false;
    for (const Word& word : cmd.words) {
      std::string value;
      Outcome sub = SubstituteWord(word, &value);
      if (!sub.ok()) {
        // Propagate errors and any control code raised during substitution.
        return sub;
      }
      argv.push_back(std::move(value));
      (void)failed;
    }
    if (argv.empty()) {
      continue;
    }
    result = EvalCommand(argv);
    if (result.code != Code::kOk) {
      return result;
    }
  }
  return result;
}

Outcome Interp::EvalCommand(const std::vector<std::string>& argv) {
  auto it = commands_.find(argv[0]);
  if (it == commands_.end()) {
    return Error("invalid command name \"" + argv[0] + "\"");
  }
  return it->second(*this, argv);
}

Outcome Interp::SubstituteWord(const Word& word, std::string* out) {
  if (word.parts.size() == 1 && word.parts[0].kind == WordPart::Kind::kLiteral) {
    *out = word.parts[0].text;
    return Ok();
  }
  std::string value;
  for (const WordPart& part : word.parts) {
    switch (part.kind) {
      case WordPart::Kind::kLiteral:
        value.append(part.text);
        break;
      case WordPart::Kind::kVariable: {
        auto var = GetVar(part.text);
        if (!var.has_value()) {
          return Error("can't read \"" + part.text + "\": no such variable");
        }
        value.append(*var);
        break;
      }
      case WordPart::Kind::kScript: {
        Outcome sub = Eval(part.text);
        if (sub.code != Code::kOk) {
          return sub;
        }
        value.append(sub.value);
        break;
      }
    }
  }
  *out = std::move(value);
  return Ok();
}

Result<bool> Interp::EvalCondition(const std::string& condition) {
  Outcome out = EvalExpr(*this, condition);
  if (out.code != Code::kOk) {
    return InvalidArgumentError(out.value);
  }
  // Numeric: nonzero is true.  Also accept boolean words.
  if (auto i = ParseInt(out.value)) {
    return *i != 0;
  }
  if (auto d = ParseDouble(out.value)) {
    return *d != 0.0;
  }
  std::string v = out.value;
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "no" || v == "off") {
    return false;
  }
  return InvalidArgumentError("expected boolean value but got \"" + out.value + "\"");
}

}  // namespace tacoma::tacl
