// The TACL interpreter.
//
// TACL is the agent language of this TACOMA reproduction: a small Tcl (the
// paper's prototype language, §6) with the classic semantics — every value is
// a string, a command is a list of substituted words, control flow is
// implemented with result codes rather than exceptions.  A Place (core
// library) embeds one Interp per agent activation and registers the agent
// primitives (bc_get, meet, ...) as host commands; agent programs are plain
// source strings carried in CODE folders, so the same agent runs on every
// site regardless of "machine language" — the paper's portability argument.
#ifndef TACOMA_TACL_INTERP_H_
#define TACOMA_TACL_INTERP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tacl/parse.h"
#include "tacl/vm/bytecode.h"
#include "util/lru.h"
#include "util/status.h"

namespace tacoma::tacl {

namespace vm {
class Runner;
}  // namespace vm

// Tcl-style result codes.  kReturn/kBreak/kContinue unwind to the construct
// that consumes them (proc call, loop); reaching top level as kBreak/kContinue
// is an error.
enum class Code { kOk, kError, kReturn, kBreak, kContinue };

struct Outcome {
  Code code = Code::kOk;
  std::string value;  // Result string, or the error message for kError.

  bool ok() const { return code == Code::kOk; }
};

inline Outcome Ok(std::string value = "") { return {Code::kOk, std::move(value)}; }
inline Outcome Error(std::string message) { return {Code::kError, std::move(message)}; }

class Interp {
 public:
  using CommandFn = std::function<Outcome(Interp&, const std::vector<std::string>&)>;
  using OutputFn = std::function<void(const std::string&)>;

  Interp();
  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // --- Commands -------------------------------------------------------------

  void Register(const std::string& name, CommandFn fn);
  bool HasCommand(const std::string& name) const;
  void RemoveCommand(const std::string& name);
  std::vector<std::string> CommandNames() const;

  // --- Evaluation -------------------------------------------------------------

  // Evaluates a script in the current frame.
  Outcome Eval(std::string_view script);

  // Invokes a single command with already-substituted words.
  Outcome EvalCommand(const std::vector<std::string>& argv);

  // Evaluates `condition` as an expr and yields its truth value.
  Result<bool> EvalCondition(const std::string& condition);

  // --- Variables --------------------------------------------------------------

  std::optional<std::string> GetVar(const std::string& name) const;
  void SetVar(const std::string& name, std::string value);
  bool UnsetVar(const std::string& name);
  // Links `name` in the current frame to the global variable of the same name.
  void LinkGlobal(const std::string& name);
  // Links `local` in the current frame to `target` in the frame at absolute
  // index `frame_index` (0 = global) — the mechanism behind upvar.
  Status LinkUpvar(size_t frame_index, const std::string& target,
                   const std::string& local);
  std::vector<std::string> VarNames() const;

  // --- Procs ------------------------------------------------------------------

  // Defines a proc (also invocable as a command).  `params` is a TACL list:
  // plain names, {name default} pairs, and a trailing "args" collector.
  Status DefineProc(const std::string& name, const std::string& params,
                    const std::string& body);
  bool HasProc(const std::string& name) const;
  std::vector<std::string> ProcNames() const;

  // --- Accounting & limits ------------------------------------------------------

  // Total commands dispatched; the Place charges simulated CPU time off this.
  uint64_t steps() const { return steps_; }
  void ResetSteps() { steps_ = 0; }
  // 0 = unlimited.  Exceeding the limit fails evaluation with an error.
  void set_step_limit(uint64_t limit) { step_limit_ = limit; }
  void set_max_depth(size_t depth) { max_depth_ = depth; }
  size_t FrameDepth() const { return frames_.size(); }

  // --- Host integration -----------------------------------------------------------

  void set_output(OutputFn fn) { output_ = std::move(fn); }
  // `puts` lands here; defaults to discarding.
  void Output(const std::string& line);

  // Opaque host pointer (the Place that owns this interp).
  void set_context(void* context) { context_ = context; }
  void* context() const { return context_; }

  // --- Bytecode VM ----------------------------------------------------------------

  struct VmStats {
    uint64_t compiles = 0;            // Units compiled by this interp.
    uint64_t unit_cache_hits = 0;     // Per-interp unit-cache hits.
    uint64_t unit_cache_evictions = 0;
    uint64_t dispatches = 0;          // VM instructions executed.
    uint64_t invokes = 0;             // Generic command invocations from the VM.
    uint64_t shimmers = 0;            // Numeric->string materializations.
    uint64_t stmt_fallbacks = 0;      // Epoch-mismatch per-statement fallbacks.
  };

  // Eval routes through the VM when enabled (the default follows
  // VmDefaultEnabled()); the tree-walk engine remains as EvalTree, both for
  // fallbacks and as the differential-testing oracle.
  void set_vm_enabled(bool on) { vm_enabled_ = on; }
  bool vm_enabled() const { return vm_enabled_; }
  VmStats vm_stats() const {
    VmStats s = vm_stats_;
    s.unit_cache_evictions = unit_cache_.evictions();
    return s;
  }
  uint64_t parse_cache_evictions() const { return parse_cache_.evictions(); }

  // Compiles `script` against the interp's current builtin surface.  Returns
  // nullptr and sets *error on a parse failure.  Counts a compile.
  std::shared_ptr<const vm::CompiledUnit> CompileUnit(std::string_view script,
                                                      Status* error);
  // Runs a pre-compiled unit (e.g. from a place's digest-keyed code cache),
  // with Eval's top-level break/continue conversion.
  Outcome RunUnit(const std::shared_ptr<const vm::CompiledUnit>& unit);

 private:
  friend class FrameGuard;
  friend class vm::Runner;
  struct Frame {
    std::map<std::string, vm::Value> vars;
    // Aliased names: local name -> (absolute frame index, name there).
    // `global x` is the special case {0, x}; `upvar` makes arbitrary ones.
    std::map<std::string, std::pair<size_t, std::string>> links;
  };
  struct Proc {
    struct Param {
      std::string name;
      std::optional<std::string> default_value;
    };
    std::vector<Param> params;
    bool varargs = false;
    std::string body;
  };

  Frame& CurrentFrame() { return frames_.back(); }
  const Frame& CurrentFrame() const { return frames_.back(); }
  // Follows alias links from the current frame to where `name` really lives.
  std::pair<Frame*, std::string> ResolveVar(const std::string& name);
  std::pair<const Frame*, std::string> ResolveVar(const std::string& name) const;

  Outcome SubstituteWord(const Word& word, std::string* out);
  Outcome RunParsed(const std::vector<ParsedCommand>& commands);
  Outcome CallProc(const std::string& name, const Proc& proc,
                   const std::vector<std::string>& argv);

  // The tree-walk evaluation path (also the VM's differential oracle).
  Outcome EvalTree(std::string_view script);
  // The VM evaluation path: per-interp unit cache keyed by script text.
  Outcome EvalCompiled(std::string_view script);
  // Substitutes and dispatches one parsed command without counting a step —
  // the per-statement fallback the VM uses when a unit's inlined builtins no
  // longer match the interp's builtin surface (the kStmt op has already
  // counted the step, exactly as RunParsed would have).
  Outcome ExecParsedCommand(const ParsedCommand& cmd);
  const CommandFn* FindCommandFn(const std::string& name) const;
  // Epoch bookkeeping for command-table mutations (Register/Remove/proc
  // definition); shadowing an inlinable builtin invalidates inlined units.
  void NoteCommandMutation(const std::string& name, bool removed);

  // Typed variable access for the VM (dual-representation values).
  const vm::Value* GetVarValue(const std::string& name);
  void SetVarValue(const std::string& name, vm::Value value);

  // Parse cache: loop bodies are re-evaluated constantly; caching the parse
  // keeps interpretation roughly linear.
  std::shared_ptr<const std::vector<ParsedCommand>> ParseCached(std::string_view script,
                                                                Status* error);

  std::map<std::string, CommandFn> commands_;
  std::map<std::string, Proc> procs_;
  std::vector<Frame> frames_;
  LruMap<std::shared_ptr<const std::vector<ParsedCommand>>> parse_cache_;
  LruMap<std::shared_ptr<const vm::CompiledUnit>> unit_cache_;

  uint64_t steps_ = 0;
  int eval_depth_ = 0;
  uint64_t step_limit_ = 0;
  size_t max_depth_ = 256;
  OutputFn output_;
  void* context_ = nullptr;

  bool vm_enabled_;  // Initialized from VmDefaultEnabled().
  // Bumped when an inlinable builtin is registered/removed/shadowed after
  // construction; nonzero disables inlined-unit fast paths (see Op::kStmt).
  uint64_t builtin_epoch_ = 0;
  // Bumped when a command is removed (erase invalidates map nodes that VM
  // runners may hold CommandFn pointers into).
  uint64_t command_table_epoch_ = 0;
  bool builtins_ready_ = false;  // True once the constructor's builtins are in.
  VmStats vm_stats_;
  uint64_t vm_shimmers_claimed_ = 0;  // Nested-runner shimmer attribution.
};

// Process-wide default for new interps, initialized lazily from the
// TACOMA_TACL_VM environment variable (on unless "0"/"off"/"false").
// SetVmDefaultEnabled overrides it (benchmarks and differential tests flip
// engines per run).
bool VmDefaultEnabled();
void SetVmDefaultEnabled(bool enabled);

// Registers the standard command set (set/if/while/list/string/expr/...).
// Called by the Interp constructor; exposed for tests that build bare interps.
void RegisterBuiltins(Interp* interp);

// Evaluates a TACL expression string (with $var and [script] substitution
// performed lazily inside the expression).  Used by `expr`, `if`, `while`.
Outcome EvalExpr(Interp& interp, const std::string& expression);

}  // namespace tacoma::tacl

#endif  // TACOMA_TACL_INTERP_H_
