#include "tacl/list.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tacoma::tacl {
namespace {

bool NeedsQuoting(std::string_view s) {
  if (s.empty()) {
    return true;
  }
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '{' || c == '}' ||
        c == '[' || c == ']' || c == '$' || c == '"' || c == '\\' || c == ';') {
      return true;
    }
  }
  return false;
}

bool BracesBalanced(std::string_view s) {
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;  // Skip escaped char.
      continue;
    }
    if (s[i] == '{') {
      ++depth;
    } else if (s[i] == '}') {
      if (--depth < 0) {
        return false;
      }
    }
  }
  return depth == 0;
}

}  // namespace

std::string QuoteElement(std::string_view element) {
  if (!NeedsQuoting(element)) {
    return std::string(element);
  }
  // A trailing backslash would escape the closing brace; count it as a run:
  // an odd-length run of trailing backslashes rules out brace quoting.
  size_t trailing_backslashes = 0;
  for (auto it = element.rbegin(); it != element.rend() && *it == '\\'; ++it) {
    ++trailing_backslashes;
  }
  if (trailing_backslashes % 2 == 0 && BracesBalanced(element)) {
    std::string out;
    out.reserve(element.size() + 2);
    out.push_back('{');
    out.append(element);
    out.push_back('}');
    return out;
  }
  // Unbalanced braces: backslash-escape specials.
  std::string out;
  out.reserve(element.size() * 2);
  for (char c : element) {
    switch (c) {
      case '{':
      case '}':
      case '[':
      case ']':
      case '$':
      case '"':
      case '\\':
      case ';':
      case ' ':
        out.push_back('\\');
        out.push_back(c);
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        out.push_back(c);
    }
  }
  return out.empty() ? "{}" : out;
}

std::string FormatList(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) {
      out.push_back(' ');
    }
    out.append(QuoteElement(elements[i]));
  }
  return out;
}

Result<std::vector<std::string>> ParseList(std::string_view list) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = list.size();
  while (i < n) {
    // Skip whitespace between elements.
    while (i < n && std::isspace(static_cast<unsigned char>(list[i]))) {
      ++i;
    }
    if (i >= n) {
      break;
    }
    std::string element;
    if (list[i] == '{') {
      int depth = 1;
      size_t start = ++i;
      while (i < n && depth > 0) {
        if (list[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (list[i] == '{') {
          ++depth;
        } else if (list[i] == '}') {
          --depth;
        }
        ++i;
      }
      if (depth != 0) {
        return InvalidArgumentError("unmatched open brace in list");
      }
      element.assign(list.substr(start, i - start - 1));
      // A braced element must be followed by whitespace or end.
      if (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        return InvalidArgumentError("list element in braces followed by junk");
      }
    } else if (list[i] == '"') {
      size_t start = ++i;
      std::string buf;
      bool closed = false;
      while (i < n) {
        if (list[i] == '\\' && i + 1 < n) {
          buf.append(list.substr(start, i - start));
          char c = list[i + 1];
          buf.push_back(c == 'n' ? '\n' : c == 't' ? '\t' : c);
          i += 2;
          start = i;
          continue;
        }
        if (list[i] == '"') {
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        return InvalidArgumentError("unmatched quote in list");
      }
      buf.append(list.substr(start, i - start));
      element = std::move(buf);
      ++i;  // Skip closing quote.
    } else {
      size_t start = i;
      std::string buf;
      while (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        if (list[i] == '\\' && i + 1 < n) {
          buf.append(list.substr(start, i - start));
          char c = list[i + 1];
          buf.push_back(c == 'n' ? '\n' : c == 't' ? '\t' : c);
          i += 2;
          start = i;
          continue;
        }
        ++i;
      }
      buf.append(list.substr(start, i - start));
      element = std::move(buf);
    }
    out.push_back(std::move(element));
  }
  return out;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  // Trim whitespace.
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  if (s.empty()) {
    return std::nullopt;
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 0);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  if (s.empty()) {
    return std::nullopt;
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return v;
}

std::string FormatInt(int64_t v) { return std::to_string(v); }

std::string FormatDouble(double v) {
  if (std::isnan(v)) {
    return "NaN";
  }
  if (std::isinf(v)) {
    return v > 0 ? "Inf" : "-Inf";
  }
  // Integral doubles render with a trailing ".0" like Tcl.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    bool matched = false;
    if (p < pattern.size()) {
      char pc = pattern[p];
      if (pc == '*') {
        star_p = p++;
        star_t = t;
        continue;
      }
      if (pc == '?') {
        matched = true;
      } else if (pc == '[') {
        size_t q = p + 1;
        bool negate = q < pattern.size() && pattern[q] == '^';
        if (negate) {
          ++q;
        }
        bool in_set = false;
        while (q < pattern.size() && pattern[q] != ']') {
          char lo = pattern[q];
          char hi = lo;
          if (q + 2 < pattern.size() && pattern[q + 1] == '-' && pattern[q + 2] != ']') {
            hi = pattern[q + 2];
            q += 3;
          } else {
            q += 1;
          }
          if (text[t] >= lo && text[t] <= hi) {
            in_set = true;
          }
        }
        if (q < pattern.size()) {
          // Consume ']'.
          if (in_set != negate) {
            matched = true;
            p = q;  // Will be advanced below.
          }
        }
      } else if (pc == '\\' && p + 1 < pattern.size()) {
        if (pattern[p + 1] == text[t]) {
          matched = true;
          ++p;
        }
      } else if (pc == text[t]) {
        matched = true;
      }
    }
    if (matched) {
      ++p;
      ++t;
      continue;
    }
    if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace tacoma::tacl
