// TACL value helpers: Tcl-style list formatting/parsing, number parsing, and
// glob matching.
//
// TACL, like Tcl, has one data type — the string.  A list is a string whose
// elements are separated by whitespace, with braces/backslashes quoting
// elements that contain special characters.  These helpers implement that
// round-trippable encoding.
#ifndef TACOMA_TACL_LIST_H_
#define TACOMA_TACL_LIST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tacoma::tacl {

// Quotes one element so that ListParse() recovers it verbatim.
std::string QuoteElement(std::string_view element);

// Joins elements into a canonical list string.
std::string FormatList(const std::vector<std::string>& elements);

// Splits a list string into elements.  Fails on unbalanced braces.
Result<std::vector<std::string>> ParseList(std::string_view list);

// Number parsing.  TACL integers are int64; "0x" hex accepted.
std::optional<int64_t> ParseInt(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Canonical formatting (matches Tcl's %g-ish float rendering closely enough
// for tests to rely on).
std::string FormatInt(int64_t v);
std::string FormatDouble(double v);

// Tcl-style glob: '*', '?', '[a-z]' ranges, '\' escapes.
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace tacoma::tacl

#endif  // TACOMA_TACL_LIST_H_
