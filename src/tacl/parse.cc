#include "tacl/parse.h"

#include <cctype>

namespace tacoma::tacl {
namespace {

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

char EscapeChar(char c) {
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case 'a':
      return '\a';
    case '0':
      return '\0';
    default:
      return c;  // \$ \[ \" \\ \{ etc. yield the char itself.
  }
}

class Parser {
 public:
  explicit Parser(std::string_view script) : s_(script) {}

  Result<std::vector<ParsedCommand>> Run() {
    std::vector<ParsedCommand> commands;
    while (true) {
      SkipCommandSeparators();
      if (AtEnd()) {
        break;
      }
      if (Peek() == '#') {
        SkipComment();
        continue;
      }
      TACOMA_ASSIGN_OR_RETURN(ParsedCommand cmd, ParseCommand());
      if (!cmd.words.empty()) {
        commands.push_back(std::move(cmd));
      }
    }
    return commands;
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char Peek(size_t ahead) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (s_[pos_] == '\n') {
      ++line_;
    }
    ++pos_;
  }
  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) {
      Advance();
    }
  }
  Status ErrorHere(const std::string& message) const {
    return InvalidArgumentError("line " + std::to_string(line_) + ": " + message);
  }

  void SkipCommandSeparators() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';') {
        Advance();
      } else if (c == '\\' && Peek(1) == '\n') {
        AdvanceBy(2);  // Line continuation.
      } else {
        break;
      }
    }
  }

  void SkipComment() {
    while (!AtEnd() && Peek() != '\n') {
      // Backslash-newline continues the comment.
      if (Peek() == '\\' && Peek(1) == '\n') {
        AdvanceBy(2);
        continue;
      }
      Advance();
    }
  }

  // Skips spaces/tabs between words (and line continuations).
  void SkipWordSeparators() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t') {
        Advance();
      } else if (c == '\\' && Peek(1) == '\n') {
        AdvanceBy(2);
      } else {
        break;
      }
    }
  }

  bool AtCommandEnd() const {
    if (AtEnd()) {
      return true;
    }
    char c = s_[pos_];
    return c == '\n' || c == '\r' || c == ';';
  }

  Result<ParsedCommand> ParseCommand() {
    ParsedCommand cmd;
    cmd.line = line_;
    while (true) {
      SkipWordSeparators();
      if (AtCommandEnd()) {
        if (!AtEnd()) {
          Advance();  // Consume the separator.
        }
        break;
      }
      TACOMA_ASSIGN_OR_RETURN(Word w, ParseWord());
      cmd.words.push_back(std::move(w));
    }
    if (!cmd.words.empty()) {
      cmd.line = cmd.words.front().line;
    }
    return cmd;
  }

  Result<Word> ParseWord() {
    char c = Peek();
    size_t line = line_;
    Result<Word> word = c == '{'   ? ParseBracedWord()
                        : c == '"' ? ParseQuotedWord()
                                   : ParseBareWord();
    if (word.ok()) {
      word->line = line;
    }
    return word;
  }

  Result<Word> ParseBracedWord() {
    Advance();  // Consume '{'.
    size_t start = pos_;
    int depth = 1;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < s_.size()) {
        AdvanceBy(2);
        continue;
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          break;
        }
      }
      Advance();
    }
    if (depth != 0) {
      return ErrorHere("missing close-brace");
    }
    Word w;
    w.braced = true;
    w.parts.push_back({WordPart::Kind::kLiteral, std::string(s_.substr(start, pos_ - start))});
    Advance();  // Consume '}'.
    if (!AtEnd() && !AtCommandEnd() && Peek() != ' ' && Peek() != '\t') {
      return ErrorHere("extra characters after close-brace");
    }
    return w;
  }

  Result<Word> ParseQuotedWord() {
    Advance();  // Consume '"'.
    Word w;
    std::string literal;
    while (true) {
      if (AtEnd()) {
        return ErrorHere("missing close-quote");
      }
      char c = Peek();
      if (c == '"') {
        Advance();
        break;
      }
      TACOMA_RETURN_IF_ERROR(ConsumePart(&w, &literal, /*quoted=*/true));
    }
    FlushLiteral(&w, &literal);
    if (!AtEnd() && !AtCommandEnd() && Peek() != ' ' && Peek() != '\t') {
      return ErrorHere("extra characters after close-quote");
    }
    if (w.parts.empty()) {
      w.parts.push_back({WordPart::Kind::kLiteral, ""});
    }
    return w;
  }

  Result<Word> ParseBareWord() {
    Word w;
    std::string literal;
    while (!AtEnd() && !AtCommandEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t') {
        break;
      }
      if (c == '\\' && Peek(1) == '\n') {
        break;  // Line continuation ends the word.
      }
      TACOMA_RETURN_IF_ERROR(ConsumePart(&w, &literal, /*quoted=*/false));
    }
    FlushLiteral(&w, &literal);
    if (w.parts.empty()) {
      w.parts.push_back({WordPart::Kind::kLiteral, ""});
    }
    return w;
  }

  static void FlushLiteral(Word* w, std::string* literal) {
    if (!literal->empty()) {
      w->parts.push_back({WordPart::Kind::kLiteral, std::move(*literal)});
      literal->clear();
    }
  }

  // Consumes one character, '$var', '[script]', or escape, appending to the
  // pending literal or pushing a substitution part.
  Status ConsumePart(Word* w, std::string* literal, bool quoted) {
    char c = Peek();
    if (c == '\\' && pos_ + 1 < s_.size()) {
      Advance();
      char e = Peek();
      Advance();
      if (e == '\n') {
        literal->push_back(' ');
      } else {
        literal->push_back(EscapeChar(e));
      }
      return OkStatus();
    }
    if (c == '$') {
      return ConsumeVariable(w, literal);
    }
    if (c == '[') {
      return ConsumeScript(w, literal);
    }
    (void)quoted;
    literal->push_back(c);
    Advance();
    return OkStatus();
  }

  Status ConsumeVariable(Word* w, std::string* literal) {
    Advance();  // Consume '$'.
    if (AtEnd()) {
      literal->push_back('$');
      return OkStatus();
    }
    if (Peek() == '{') {
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != '}') {
        Advance();
      }
      if (AtEnd()) {
        return ErrorHere("missing close-brace for variable name");
      }
      FlushLiteral(w, literal);
      w->parts.push_back(
          {WordPart::Kind::kVariable, std::string(s_.substr(start, pos_ - start))});
      Advance();  // Consume '}'.
      return OkStatus();
    }
    size_t start = pos_;
    while (!AtEnd() && IsVarNameChar(Peek())) {
      Advance();
    }
    if (pos_ == start) {
      // Bare '$' with no name: literal dollar sign.
      literal->push_back('$');
      return OkStatus();
    }
    FlushLiteral(w, literal);
    w->parts.push_back(
        {WordPart::Kind::kVariable, std::string(s_.substr(start, pos_ - start))});
    return OkStatus();
  }

  Status ConsumeScript(Word* w, std::string* literal) {
    Advance();  // Consume '['.
    size_t start = pos_;
    int depth = 1;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < s_.size()) {
        AdvanceBy(2);
        continue;
      }
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        if (--depth == 0) {
          break;
        }
      }
      Advance();
    }
    if (depth != 0) {
      return ErrorHere("missing close-bracket");
    }
    FlushLiteral(w, literal);
    w->parts.push_back(
        {WordPart::Kind::kScript, std::string(s_.substr(start, pos_ - start))});
    Advance();  // Consume ']'.
    return OkStatus();
  }

  std::string_view s_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

}  // namespace

Result<std::vector<ParsedCommand>> ParseScript(std::string_view script) {
  return Parser(script).Run();
}

}  // namespace tacoma::tacl
