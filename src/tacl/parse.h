// TACL script parser.
//
// Parsing is separated from evaluation: a script is parsed into commands made
// of words, and each word into parts (literal text, $variable references, and
// [bracketed script] substitutions).  The evaluator performs substitution at
// run time, re-entering Eval() for script parts.
#ifndef TACOMA_TACL_PARSE_H_
#define TACOMA_TACL_PARSE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tacoma::tacl {

struct WordPart {
  enum class Kind {
    kLiteral,   // text is the value.
    kVariable,  // text is the variable name.
    kScript,    // text is a script to evaluate; its result is the value.
  };
  Kind kind;
  std::string text;
};

struct Word {
  std::vector<WordPart> parts;
  // True when the word was written {braced}: a single literal part with no
  // substitution performed (the usual form for loop bodies and proc bodies).
  bool braced = false;
  // 1-based line within the parsed script where the word starts.  Static
  // analysis maps nested bodies back to absolute lines with this.
  size_t line = 1;
};

struct ParsedCommand {
  std::vector<Word> words;
  // Line of the first word (1-based within the parsed script).
  size_t line = 1;
};

// Splits `script` into commands (separated by newline or ';' at top level)
// and words.  Comments ('#' in command position) are skipped.
Result<std::vector<ParsedCommand>> ParseScript(std::string_view script);

}  // namespace tacoma::tacl

#endif  // TACOMA_TACL_PARSE_H_
