// TACL bytecode: instruction set, compiled-unit layout, and disassembler.
//
// A CompiledUnit is a flat instruction array over three constant pools
// (values, names, parsed-command trees) plus side tables describing loops,
// foreach headers, expr barriers, and per-statement fallback anchors.  The
// compiler inlines only forms whose semantics it fully understands
// (set/incr/if/while/for/foreach/break/continue/return/expr and the full expr
// grammar); everything else becomes a generic invoke that dispatches through
// the same registered CommandFn the tree-walk engine would call, so observable
// behavior — Outcome codes, values, error strings, step counts — is identical
// by construction.
#ifndef TACOMA_TACL_VM_BYTECODE_H_
#define TACOMA_TACL_VM_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tacl/parse.h"
#include "tacl/vm/value.h"

namespace tacoma::tacl::vm {

enum class Op : uint8_t {
  // --- statements / control ---
  kStmt,             // a=stmt index: count one interp step, check the step
                     // limit, and (if the unit inlined builtins) verify the
                     // builtin surface is unchanged — on epoch mismatch the
                     // whole source statement is re-run through the tree-walk
                     // and execution resumes at stmts[a].next_pc.
  kJump,             // a=target pc
  kDone,             // return Ok(result register)
  kReturnEmpty,      // raise {kReturn, ""} through the outcome handler
  kReturnValue,      // pop v -> raise {kReturn, str(v)}
  kRaiseCode,        // a=Code as int: raise {code, ""} — a break/continue with
                     // no enclosing compiled loop (the unit returns it and the
                     // caller — an outer loop, proc call, or Eval — consumes it)

  // --- operand stack ---
  kPushConst,        // a=const index
  kLoadVar,          // a=name index: push variable value (error if unset)
  kConcat,           // a=n: pop n values, push their string concatenation
  kPopN,             // a=n: discard n values (stack cleanup before a compiled
                     // break/continue jumps out of word assembly)

  // --- result register ---
  kResultClear,      // result = "" (fresh Eval of a block)
  kResultPop,        // pop v -> result = v
  kPushResult,       // push result (doubles normalized: the tree-walk engine
                     // passes nested-script results through Outcome strings)

  // --- variables / invocation ---
  kSetVar,           // a=name index: pop v, store normalized, result = v
  kIncrVar,          // a=name index: pop delta, incr semantics, result = new
  kInvoke,           // a=name index (argv[0]), b=argc: pop argc words,
                     // dispatch via Interp::commands_, result = outcome value
  kInvokeDyn,        // a=argc: like kInvoke but argv[0] popped from the stack

  // --- branches ---
  kJumpIfFalse,      // a=target: pop v, expr-Truthy, jump if false
  kCondJumpIfFalse,  // a=target: pop v, EvalCondition truthiness, jump if false
  kJumpZeroPushZero, // a=target: pop v, Truthy; if false push Int(0) and jump
                     // (short-circuit &&)
  kJumpOnePushOne,   // a=target: pop v, Truthy; if true push Int(1) and jump
                     // (short-circuit ||)
  kTruthy,           // pop v, push Int(0|1) by expr-Truthy

  // --- expr operators (exact ExprParser semantics, messages included) ---
  kAdd, kSub, kMul, kDiv, kMod,
  kNeg, kToNum, kNot, kBitNot,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
  kStrEq, kStrNe,    // eq / ne
  kMathFn,           // a=MathFn id, b=argc: pop argc args, apply
  kFail,             // a=const index: raise Error(message) — used for errors
                     // the tree-walk engine only reports when a live branch
                     // actually reaches them (e.g. unknown math function)

  // --- foreach ---
  kForeachBegin,     // a=foreach index: pop values word, ParseList (error:
                     // "bad value list in foreach"), push iteration state
  kForeachIter,      // a=foreach index, b=exit pc: assign next stride of vars
                     // or (when exhausted) pop state and jump to exit
  kForeachEnd,       // pop iteration state (break landing pad)

  // --- fallbacks (tree-walk escape hatches, exact by definition) ---
  kEvalExprPush,     // a=const index (expr text): EvalExpr, push string result
  kCondEvalPush,     // a=const index (cond text): EvalCondition, push Int(0|1)
  kEvalScriptPush,   // a=const index (script text): Interp::Eval, push value
};

struct Instr {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
};

// One compiled source statement: which ParsedCommand it came from and where
// execution resumes after the statement, for the epoch-mismatch fallback.
struct StmtRef {
  uint32_t tree;     // index into CompiledUnit::trees
  uint32_t index;    // command index within that tree
  uint32_t next_pc;  // pc of the first instruction after this statement
};

struct ForeachInfo {
  std::vector<std::string> names;  // loop variables (compile-time literal)
};

// Loop extent for unwinding kBreak/kContinue outcomes returned by generic
// invokes (or fallback evals) executed inside an inlined loop body.  Entries
// are appended as loops finish compiling, so inner loops precede outer ones
// and the first range containing a pc is the innermost.
struct LoopInfo {
  uint32_t body_begin = 0;   // [body_begin, body_end) — pcs of the loop body
  uint32_t body_end = 0;
  uint32_t break_pc = 0;     // jump target for break
  uint32_t continue_pc = 0;  // jump target for continue
  uint32_t stack_depth = 0;  // operand-stack depth at loop statement entry
  uint32_t foreach_depth = 0;  // live foreach states inside the body
};

struct CompiledUnit {
  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<std::string> names;
  std::vector<std::shared_ptr<const std::vector<ParsedCommand>>> trees;
  std::vector<StmtRef> stmts;
  std::vector<ForeachInfo> foreachs;
  std::vector<LoopInfo> loops;
  bool inlined = false;  // true if any builtin was inlined (epoch-guarded)
};

// Math functions the expr compiler pre-resolves.
enum class MathFn : uint8_t {
  kAbs, kInt, kDouble, kRound, kSqrt, kPow, kFloor, kCeil, kExp, kLog, kFmod,
  kMin, kMax,
};

const char* OpName(Op op);
const char* MathFnName(MathFn fn);

// Deterministic human-readable listing (used by `tacl_lint --disasm` and the
// golden test).
std::string Disassemble(const CompiledUnit& unit);

}  // namespace tacoma::tacl::vm

#endif  // TACOMA_TACL_VM_BYTECODE_H_
