#include "tacl/vm/compiler.h"

#include <cctype>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tacl/interp.h"
#include "tacl/list.h"
#include "tacl/vm/ops.h"

namespace tacoma::tacl::vm {
namespace {

// Inline compilation depth bound for nested scripts (bodies, [subs]); deeper
// nesting falls back to tree-walk eval ops, which handle any depth the
// tree-walk engine itself can.
constexpr int kMaxInlineScriptDepth = 32;
constexpr int kMaxExprDepth = 64;

bool IsLiteralWord(const Word& w) {
  return w.parts.size() == 1 && w.parts[0].kind == WordPart::Kind::kLiteral;
}

const std::string& LiteralText(const Word& w) { return w.parts[0].text; }

// Static operand-stack effect of one instruction (branch merges are handled
// explicitly at the emission sites).
int DepthDelta(Op op, int32_t a, int32_t b) {
  switch (op) {
    case Op::kPushConst:
    case Op::kLoadVar:
    case Op::kPushResult:
    case Op::kEvalExprPush:
    case Op::kCondEvalPush:
    case Op::kEvalScriptPush:
      return 1;
    case Op::kResultPop:
    case Op::kSetVar:
    case Op::kIncrVar:
    case Op::kCondJumpIfFalse:
    case Op::kJumpIfFalse:
    case Op::kJumpZeroPushZero:
    case Op::kJumpOnePushOne:
    case Op::kReturnValue:
    case Op::kForeachBegin:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kBitAnd:
    case Op::kBitOr:
    case Op::kBitXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmpEq:
    case Op::kCmpNe:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpGt:
    case Op::kCmpGe:
    case Op::kStrEq:
    case Op::kStrNe:
      return -1;
    case Op::kConcat:
      return -(a - 1);
    case Op::kPopN:
      return -a;
    case Op::kInvoke:
      return -b;
    case Op::kInvokeDyn:
      return -a;
    case Op::kMathFn:
      return 1 - b;
    default:
      return 0;
  }
}

class Compiler {
 public:
  explicit Compiler(const CompileOptions& opts) : opts_(opts) {}

  std::shared_ptr<const CompiledUnit> Run(std::string_view script, Status* error) {
    auto parsed = ParseScript(script);
    if (!parsed.ok()) {
      *error = parsed.status();
      return nullptr;
    }
    auto tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(parsed).value());
    CompileBlock(tree, /*clear_result=*/false);
    Emit(Op::kDone);
    return std::make_shared<const CompiledUnit>(std::move(unit_));
  }

 private:
  struct LoopCtx {
    std::vector<uint32_t> break_jumps;
    std::vector<uint32_t> continue_jumps;
    uint32_t stack_depth = 0;
    uint32_t foreach_depth = 0;
  };

  // --- emission helpers -----------------------------------------------------

  uint32_t Pc() const { return static_cast<uint32_t>(unit_.code.size()); }

  uint32_t Emit(Op op, int32_t a = 0, int32_t b = 0) {
    unit_.code.push_back({op, a, b});
    depth_ += DepthDelta(op, a, b);
    return Pc() - 1;
  }

  void Patch(uint32_t pc, uint32_t target) {
    unit_.code[pc].a = static_cast<int32_t>(target);
  }

  int32_t AddConst(const Value& v) {
    std::string key;
    switch (v.kind()) {
      case Value::Kind::kString:
        key = "s:" + v.AsString();
        break;
      case Value::Kind::kInt:
        key = (v.has_string() ? "I:" + v.AsString() + "|" : "i:") +
              std::to_string(v.int_value());
        break;
      case Value::Kind::kDouble: {
        uint64_t bits = 0;
        double d = v.dbl_value();
        std::memcpy(&bits, &d, sizeof(bits));
        key = "d:" + std::to_string(bits);
        break;
      }
    }
    auto [it, inserted] =
        const_index_.emplace(std::move(key), static_cast<int32_t>(unit_.consts.size()));
    if (inserted) {
      unit_.consts.push_back(v);
    }
    return it->second;
  }

  int32_t AddName(const std::string& name) {
    auto [it, inserted] =
        name_index_.emplace(name, static_cast<int32_t>(unit_.names.size()));
    if (inserted) {
      unit_.names.push_back(name);
    }
    return it->second;
  }

  int32_t AddTree(std::shared_ptr<const std::vector<ParsedCommand>> tree) {
    unit_.trees.push_back(std::move(tree));
    return static_cast<int32_t>(unit_.trees.size()) - 1;
  }

  void EmitFail(const std::string& message) {
    Emit(Op::kFail, AddConst(Value::Str(message)));
  }

  // Rollback state for abandoned expr compilations.
  struct Snapshot {
    size_t code, stmts, foreachs, loops, trees;
    int depth;
    bool inlined;
  };
  Snapshot Snap() const {
    return {unit_.code.size(),  unit_.stmts.size(), unit_.foreachs.size(),
            unit_.loops.size(), unit_.trees.size(), depth_,
            unit_.inlined};
  }
  void Restore(const Snapshot& s) {
    unit_.code.resize(s.code);
    unit_.stmts.resize(s.stmts);
    unit_.foreachs.resize(s.foreachs);
    unit_.loops.resize(s.loops);
    unit_.trees.resize(s.trees);
    depth_ = s.depth;
    unit_.inlined = s.inlined;
  }

  // --- statements -----------------------------------------------------------

  void CompileBlock(const std::shared_ptr<const std::vector<ParsedCommand>>& tree,
                    bool clear_result) {
    if (clear_result) {
      Emit(Op::kResultClear);
    }
    int32_t tree_idx = AddTree(tree);
    for (size_t i = 0; i < tree->size(); ++i) {
      uint32_t stmt_idx = static_cast<uint32_t>(unit_.stmts.size());
      unit_.stmts.push_back({static_cast<uint32_t>(tree_idx),
                             static_cast<uint32_t>(i), 0});
      Emit(Op::kStmt, static_cast<int32_t>(stmt_idx));
      CompileCommand((*tree)[i]);
      unit_.stmts[stmt_idx].next_pc = Pc();
    }
  }

  void CompileCommand(const ParsedCommand& cmd) {
    if (cmd.words.empty()) {
      return;  // The parser filters empty commands; a bare kStmt is exact.
    }
    if (opts_.inline_builtins && IsLiteralWord(cmd.words[0])) {
      const std::string& name = LiteralText(cmd.words[0]);
      bool handled = false;
      if (name == "set") {
        handled = CompileSet(cmd);
      } else if (name == "incr") {
        handled = CompileIncr(cmd);
      } else if (name == "if") {
        handled = CompileIf(cmd);
      } else if (name == "while") {
        handled = CompileWhile(cmd);
      } else if (name == "for") {
        handled = CompileFor(cmd);
      } else if (name == "foreach") {
        handled = CompileForeach(cmd);
      } else if (name == "break") {
        handled = CompileBreakContinue(cmd, Code::kBreak);
      } else if (name == "continue") {
        handled = CompileBreakContinue(cmd, Code::kContinue);
      } else if (name == "return") {
        handled = CompileReturn(cmd);
      } else if (name == "expr") {
        handled = CompileExprCmd(cmd);
      }
      if (handled) {
        unit_.inlined = true;
        return;
      }
    }
    CompileGeneric(cmd);
  }

  void CompileGeneric(const ParsedCommand& cmd) {
    if (IsLiteralWord(cmd.words[0])) {
      for (size_t i = 1; i < cmd.words.size(); ++i) {
        CompileWord(cmd.words[i]);
      }
      Emit(Op::kInvoke, AddName(LiteralText(cmd.words[0])),
           static_cast<int32_t>(cmd.words.size()) - 1);
    } else {
      for (const Word& w : cmd.words) {
        CompileWord(w);
      }
      Emit(Op::kInvokeDyn, static_cast<int32_t>(cmd.words.size()));
    }
  }

  // Pushes exactly one value.
  void CompileWord(const Word& w) {
    if (IsLiteralWord(w)) {
      Emit(Op::kPushConst, AddConst(Value::Str(LiteralText(w))));
      return;
    }
    for (const WordPart& part : w.parts) {
      switch (part.kind) {
        case WordPart::Kind::kLiteral:
          Emit(Op::kPushConst, AddConst(Value::Str(part.text)));
          break;
        case WordPart::Kind::kVariable:
          Emit(Op::kLoadVar, AddName(part.text));
          break;
        case WordPart::Kind::kScript:
          CompileScriptPartPush(part.text);
          break;
      }
    }
    if (w.parts.size() > 1) {
      Emit(Op::kConcat, static_cast<int32_t>(w.parts.size()));
    }
  }

  // Nested script in word context: evaluate, push the result.
  void CompileScriptPartPush(const std::string& text) {
    if (script_depth_ >= kMaxInlineScriptDepth) {
      Emit(Op::kEvalScriptPush, AddConst(Value::Str(text)));
      return;
    }
    auto parsed = ParseScript(text);
    if (!parsed.ok()) {
      // Runtime Eval reports the identical "parse error: ..." the tree-walk
      // substitution would.
      Emit(Op::kEvalScriptPush, AddConst(Value::Str(text)));
      return;
    }
    auto tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(parsed).value());
    ++script_depth_;
    CompileBlock(tree, /*clear_result=*/true);
    --script_depth_;
    Emit(Op::kPushResult);
  }

  // Inline `if`/`else` branch body: result register takes the body's result.
  void CompileBodyEval(const std::string& text) {
    if (script_depth_ < kMaxInlineScriptDepth) {
      auto parsed = ParseScript(text);
      if (parsed.ok()) {
        auto tree = std::make_shared<const std::vector<ParsedCommand>>(
            std::move(parsed).value());
        ++script_depth_;
        CompileBlock(tree, /*clear_result=*/true);
        --script_depth_;
        return;
      }
    }
    Emit(Op::kEvalScriptPush, AddConst(Value::Str(text)));
    Emit(Op::kResultPop);
  }

  // Pushes the condition's value (compiled expr, or an EvalCondition fallback
  // that pushes 0/1).
  void CompileCondition(const std::string& text) {
    if (!CompileExprText(text)) {
      Emit(Op::kCondEvalPush, AddConst(Value::Str(text)));
    }
  }

  // --- inlined builtins -----------------------------------------------------

  bool CompileSet(const ParsedCommand& cmd) {
    if (cmd.words.size() == 2 && IsLiteralWord(cmd.words[1])) {
      Emit(Op::kLoadVar, AddName(LiteralText(cmd.words[1])));
      Emit(Op::kResultPop);
      return true;
    }
    if (cmd.words.size() == 3 && IsLiteralWord(cmd.words[1])) {
      CompileWord(cmd.words[2]);
      Emit(Op::kSetVar, AddName(LiteralText(cmd.words[1])));
      return true;
    }
    return false;
  }

  bool CompileIncr(const ParsedCommand& cmd) {
    if ((cmd.words.size() != 2 && cmd.words.size() != 3) ||
        !IsLiteralWord(cmd.words[1])) {
      return false;
    }
    if (cmd.words.size() == 2) {
      Emit(Op::kPushConst, AddConst(Value::Int(1)));
    } else if (IsLiteralWord(cmd.words[2])) {
      const std::string& text = LiteralText(cmd.words[2]);
      if (auto d = ParseInt(text)) {
        Emit(Op::kPushConst, AddConst(Value::IntWithString(*d, text)));
      } else {
        Emit(Op::kPushConst, AddConst(Value::Str(text)));
      }
    } else {
      CompileWord(cmd.words[2]);
    }
    Emit(Op::kIncrVar, AddName(LiteralText(cmd.words[1])));
    return true;
  }

  bool CompileIf(const ParsedCommand& cmd) {
    for (const Word& w : cmd.words) {
      if (!IsLiteralWord(w)) {
        return false;
      }
    }
    const auto& words = cmd.words;
    const size_t n = words.size();
    std::vector<uint32_t> end_jumps;
    size_t i = 1;
    bool closed = false;
    // Mirror CmdIf's scan; structural errors become kFail at the exact chain
    // position where the scan would hit them at run time.
    while (i < n) {
      if (i + 1 >= n) {
        EmitFail("wrong # args: no expression after \"if\"/\"elseif\"");
        closed = true;
        break;
      }
      const std::string& cond = LiteralText(words[i]);
      size_t body_index = i + 1;
      if (LiteralText(words[body_index]) == "then") {
        ++body_index;
      }
      if (body_index >= n) {
        EmitFail("wrong # args: no script following condition");
        closed = true;
        break;
      }
      CompileCondition(cond);
      uint32_t jf = Emit(Op::kCondJumpIfFalse);
      CompileBodyEval(LiteralText(words[body_index]));
      end_jumps.push_back(Emit(Op::kJump));
      Patch(jf, Pc());
      i = body_index + 1;
      if (i >= n) {
        Emit(Op::kResultClear);
        closed = true;
        break;
      }
      if (LiteralText(words[i]) == "elseif") {
        ++i;
        continue;
      }
      if (LiteralText(words[i]) == "else") {
        if (i + 1 >= n) {
          EmitFail("wrong # args: no script following \"else\"");
        } else {
          CompileBodyEval(LiteralText(words[i + 1]));
        }
        closed = true;
        break;
      }
      CompileBodyEval(LiteralText(words[i]));  // Bare trailing script as else.
      closed = true;
      break;
    }
    if (!closed) {
      Emit(Op::kResultClear);  // `if 0 b elseif<end>`: CmdIf returns Ok().
    }
    for (uint32_t pc : end_jumps) {
      Patch(pc, Pc());
    }
    return true;
  }

  bool CompileWhile(const ParsedCommand& cmd) {
    if (cmd.words.size() != 3 || !IsLiteralWord(cmd.words[1]) ||
        !IsLiteralWord(cmd.words[2]) || script_depth_ >= kMaxInlineScriptDepth) {
      return false;
    }
    auto body = ParseScript(LiteralText(cmd.words[2]));
    if (!body.ok()) {
      return false;  // CmdWhile reports the parse error per iteration.
    }
    auto body_tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(body).value());

    LoopCtx ctx;
    ctx.stack_depth = static_cast<uint32_t>(depth_);
    ctx.foreach_depth = static_cast<uint32_t>(foreach_depth_);

    uint32_t cond_pc = Pc();
    CompileCondition(LiteralText(cmd.words[1]));
    uint32_t jf = Emit(Op::kCondJumpIfFalse);

    loop_stack_.push_back(std::move(ctx));
    uint32_t body_begin = Pc();
    ++script_depth_;
    CompileBlock(body_tree, /*clear_result=*/false);
    --script_depth_;
    uint32_t body_end = Emit(Op::kJump, static_cast<int32_t>(cond_pc));
    uint32_t exit_pc = Pc();
    Patch(jf, exit_pc);
    Emit(Op::kResultClear);

    LoopCtx done = std::move(loop_stack_.back());
    loop_stack_.pop_back();
    for (uint32_t pc : done.break_jumps) {
      Patch(pc, exit_pc);
    }
    for (uint32_t pc : done.continue_jumps) {
      Patch(pc, cond_pc);
    }
    unit_.loops.push_back({body_begin, body_end, exit_pc, cond_pc,
                           done.stack_depth, done.foreach_depth});
    return true;
  }

  bool CompileFor(const ParsedCommand& cmd) {
    if (cmd.words.size() != 5 || script_depth_ >= kMaxInlineScriptDepth) {
      return false;
    }
    for (const Word& w : cmd.words) {
      if (!IsLiteralWord(w)) {
        return false;
      }
    }
    auto start = ParseScript(LiteralText(cmd.words[1]));
    auto body = ParseScript(LiteralText(cmd.words[4]));
    auto next = ParseScript(LiteralText(cmd.words[3]));
    if (!start.ok() || !body.ok() || !next.ok()) {
      return false;
    }
    auto start_tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(start).value());
    auto body_tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(body).value());
    auto next_tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(next).value());

    LoopCtx ctx;
    ctx.stack_depth = static_cast<uint32_t>(depth_);
    ctx.foreach_depth = static_cast<uint32_t>(foreach_depth_);

    ++script_depth_;
    // Start runs outside the loop scope: a break/continue in it belongs to an
    // enclosing loop (CmdFor propagates the start outcome verbatim).
    CompileBlock(start_tree, /*clear_result=*/false);
    uint32_t cond_pc = Pc();
    CompileCondition(LiteralText(cmd.words[2]));
    uint32_t jf = Emit(Op::kCondJumpIfFalse);

    loop_stack_.push_back(std::move(ctx));
    uint32_t body_begin = Pc();
    CompileBlock(body_tree, /*clear_result=*/false);
    uint32_t body_end = Pc();
    LoopCtx done = std::move(loop_stack_.back());
    loop_stack_.pop_back();

    // Next also runs outside the loop scope (its outcome propagates out).
    uint32_t cont_pc = Pc();
    CompileBlock(next_tree, /*clear_result=*/false);
    --script_depth_;
    Emit(Op::kJump, static_cast<int32_t>(cond_pc));
    uint32_t exit_pc = Pc();
    Patch(jf, exit_pc);
    Emit(Op::kResultClear);

    for (uint32_t pc : done.break_jumps) {
      Patch(pc, exit_pc);
    }
    for (uint32_t pc : done.continue_jumps) {
      Patch(pc, cont_pc);
    }
    unit_.loops.push_back({body_begin, body_end, exit_pc, cont_pc,
                           done.stack_depth, done.foreach_depth});
    return true;
  }

  bool CompileForeach(const ParsedCommand& cmd) {
    if (cmd.words.size() != 4 || !IsLiteralWord(cmd.words[1]) ||
        !IsLiteralWord(cmd.words[3]) || script_depth_ >= kMaxInlineScriptDepth) {
      return false;
    }
    auto names = ParseList(LiteralText(cmd.words[1]));
    if (!names.ok() || names->empty()) {
      return false;  // CmdForeach reports "bad variable list in foreach".
    }
    auto body = ParseScript(LiteralText(cmd.words[3]));
    if (!body.ok()) {
      return false;
    }
    auto body_tree = std::make_shared<const std::vector<ParsedCommand>>(
        std::move(body).value());

    LoopCtx ctx;
    ctx.stack_depth = static_cast<uint32_t>(depth_);

    CompileWord(cmd.words[2]);  // Values word: any form.
    int32_t f_idx = static_cast<int32_t>(unit_.foreachs.size());
    unit_.foreachs.push_back({std::move(names).value()});
    Emit(Op::kForeachBegin, f_idx);
    ++foreach_depth_;
    ctx.foreach_depth = static_cast<uint32_t>(foreach_depth_);

    uint32_t iter_pc = Pc();
    uint32_t iter = Emit(Op::kForeachIter, f_idx);
    loop_stack_.push_back(std::move(ctx));
    uint32_t body_begin = Pc();
    ++script_depth_;
    CompileBlock(body_tree, /*clear_result=*/false);
    --script_depth_;
    uint32_t body_end = Emit(Op::kJump, static_cast<int32_t>(iter_pc));
    uint32_t break_pc = Pc();
    Emit(Op::kForeachEnd);
    uint32_t exit_pc = Pc();
    Emit(Op::kResultClear);
    unit_.code[iter].b = static_cast<int32_t>(exit_pc);
    --foreach_depth_;

    LoopCtx done = std::move(loop_stack_.back());
    loop_stack_.pop_back();
    for (uint32_t pc : done.break_jumps) {
      Patch(pc, break_pc);
    }
    for (uint32_t pc : done.continue_jumps) {
      Patch(pc, iter_pc);
    }
    unit_.loops.push_back({body_begin, body_end, break_pc, iter_pc,
                           done.stack_depth, done.foreach_depth});
    return true;
  }

  bool CompileBreakContinue(const ParsedCommand& cmd, Code code) {
    if (cmd.words.size() != 1) {
      return false;  // Generic invoke reports WrongArgs.
    }
    if (!loop_stack_.empty()) {
      LoopCtx& loop = loop_stack_.back();
      int saved_depth = depth_;
      int saved_foreach = foreach_depth_;
      int pops = depth_ - static_cast<int>(loop.stack_depth);
      if (pops > 0) {
        Emit(Op::kPopN, pops);
      }
      for (int i = foreach_depth_; i > static_cast<int>(loop.foreach_depth); --i) {
        Emit(Op::kForeachEnd);
      }
      uint32_t j = Emit(Op::kJump);
      (code == Code::kBreak ? loop.break_jumps : loop.continue_jumps).push_back(j);
      depth_ = saved_depth;  // The jump leaves; code after it is dead.
      foreach_depth_ = saved_foreach;
    } else {
      Emit(Op::kRaiseCode, static_cast<int32_t>(code));
    }
    return true;
  }

  bool CompileReturn(const ParsedCommand& cmd) {
    if (cmd.words.size() == 1) {
      Emit(Op::kReturnEmpty);
      return true;
    }
    if (cmd.words.size() == 2) {
      CompileWord(cmd.words[1]);
      Emit(Op::kReturnValue);
      return true;
    }
    return false;  // Generic invoke reports WrongArgs.
  }

  bool CompileExprCmd(const ParsedCommand& cmd) {
    if (cmd.words.size() < 2) {
      return false;
    }
    std::string text;
    for (size_t i = 1; i < cmd.words.size(); ++i) {
      if (!IsLiteralWord(cmd.words[i])) {
        return false;
      }
      if (i > 1) {
        text.push_back(' ');
      }
      text += LiteralText(cmd.words[i]);
    }
    if (!CompileExprText(text)) {
      Emit(Op::kEvalExprPush, AddConst(Value::Str(text)));
    }
    Emit(Op::kResultPop);
    return true;
  }

  // --- expression compiler --------------------------------------------------
  //
  // Mirrors ExprParser's grammar (src/tacl/expr.cc) instruction-for-check.
  // Each Expr* method emits code that pushes exactly one value, and returns
  // the folded constant when the emitted code is a single kPushConst (so a
  // parent operator over two constants can replace them with the result —
  // computed by the very same ops the VM runs, so folding can't drift).
  // Unconditional parse-time failures (syntax errors) abort compilation and
  // the whole expr falls back to the tree-walk evaluator, which reports the
  // identical message; live-gated errors (unknown function, arity) compile to
  // instructions that only fire when a live branch reaches them.

  struct ExprCtx {
    const std::string& s;
    size_t pos = 0;
    bool failed = false;
    int depth = 0;
  };

  static void SkipSpace(ExprCtx& c) {
    while (c.pos < c.s.size() &&
           std::isspace(static_cast<unsigned char>(c.s[c.pos]))) {
      ++c.pos;
    }
  }
  static char Peek(const ExprCtx& c) {
    return c.pos < c.s.size() ? c.s[c.pos] : '\0';
  }
  static char PeekAt(const ExprCtx& c, size_t ahead) {
    return c.pos + ahead < c.s.size() ? c.s[c.pos + ahead] : '\0';
  }
  static bool Consume(ExprCtx& c, std::string_view op) {
    SkipSpace(c);
    if (c.s.compare(c.pos, op.size(), op) == 0) {
      c.pos += op.size();
      return true;
    }
    return false;
  }
  static bool ConsumeExact(ExprCtx& c, std::string_view op,
                           std::string_view not_followed_by) {
    SkipSpace(c);
    if (c.s.compare(c.pos, op.size(), op) != 0) {
      return false;
    }
    char next = c.pos + op.size() < c.s.size() ? c.s[c.pos + op.size()] : '\0';
    if (not_followed_by.find(next) != std::string_view::npos && next != '\0') {
      return false;
    }
    c.pos += op.size();
    return true;
  }
  static bool ConsumeWord(ExprCtx& c, std::string_view word) {
    SkipSpace(c);
    if (c.s.compare(c.pos, word.size(), word) != 0) {
      return false;
    }
    char next = c.pos + word.size() < c.s.size() ? c.s[c.pos + word.size()] : '\0';
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
      return false;
    }
    c.pos += word.size();
    return true;
  }

  bool CompileExprText(const std::string& text) {
    Snapshot snap = Snap();
    ExprCtx c{text};
    int entry_depth = depth_;
    ExprTernary(c);
    if (!c.failed) {
      SkipSpace(c);
      if (c.pos != text.size()) {
        c.failed = true;  // "trailing characters" — runtime fallback reports it.
      }
    }
    if (c.failed || depth_ != entry_depth + 1) {
      Restore(snap);
      return false;
    }
    return true;
  }

  std::optional<Value> ExprConst(const Value& v) {
    Emit(Op::kPushConst, AddConst(v));
    return v;
  }

  // Replace the single kPushConst a folded subtree emitted with a new one.
  std::optional<Value> Refold1(const Value& v) {
    unit_.code.pop_back();
    --depth_;
    return ExprConst(v);
  }
  // Replace the two trailing kPushConst of a folded binop with the result.
  std::optional<Value> Refold2(const Value& v) {
    unit_.code.pop_back();
    unit_.code.pop_back();
    depth_ -= 2;
    return ExprConst(v);
  }

  std::optional<Value> FoldArith(std::optional<Value> l, std::optional<Value> r,
                                 char op, Op code) {
    if (l && r) {
      Value out;
      std::string err;
      if (Arith(op, *l, *r, &out, &err)) {
        return Refold2(out);
      }
    }
    Emit(code);
    return std::nullopt;
  }

  std::optional<Value> FoldIntBinop(std::optional<Value> l, std::optional<Value> r,
                                    char op, Op code) {
    if (l && r) {
      Value out;
      std::string err;
      if (IntBinop(op, *l, *r, &out, &err)) {
        return Refold2(out);
      }
    }
    Emit(code);
    return std::nullopt;
  }

  std::optional<Value> FoldCompare(std::optional<Value> l, std::optional<Value> r,
                                   const char* op, Op code) {
    if (l && r) {
      return Refold2(Value::Int(Compare(*l, *r, op)));
    }
    Emit(code);
    return std::nullopt;
  }

  std::optional<Value> FoldStrEq(std::optional<Value> l, std::optional<Value> r,
                                 bool want_equal, Op code) {
    if (l && r) {
      bool equal = l->AsString() == r->AsString();
      return Refold2(Value::Int(want_equal == equal ? 1 : 0));
    }
    Emit(code);
    return std::nullopt;
  }

  std::optional<Value> ExprTernary(ExprCtx& c) {
    if (++c.depth > kMaxExprDepth) {
      c.failed = true;
      return std::nullopt;
    }
    std::optional<Value> cond = ExprOr(c);
    SkipSpace(c);
    if (!Consume(c, "?")) {
      --c.depth;
      return cond;
    }
    if (c.failed) {
      return std::nullopt;
    }
    uint32_t jf = Emit(Op::kJumpIfFalse);
    int base = depth_;
    ExprTernary(c);
    SkipSpace(c);
    if (!Consume(c, ":")) {
      c.failed = true;  // "missing ':' in ternary expression" — unconditional.
      return std::nullopt;
    }
    uint32_t je = Emit(Op::kJump);
    Patch(jf, Pc());
    depth_ = base;  // Else path enters without the then-value.
    ExprTernary(c);
    Patch(je, Pc());
    --c.depth;
    return std::nullopt;
  }

  std::optional<Value> ExprOr(ExprCtx& c) {
    std::optional<Value> lhs = ExprAnd(c);
    while (!c.failed && Consume(c, "||")) {
      uint32_t j = Emit(Op::kJumpOnePushOne);
      ExprAnd(c);
      Emit(Op::kTruthy);
      Patch(j, Pc());
      lhs = std::nullopt;
    }
    return lhs;
  }

  std::optional<Value> ExprAnd(ExprCtx& c) {
    std::optional<Value> lhs = ExprBitOr(c);
    while (!c.failed && Consume(c, "&&")) {
      uint32_t j = Emit(Op::kJumpZeroPushZero);
      ExprBitOr(c);
      Emit(Op::kTruthy);
      Patch(j, Pc());
      lhs = std::nullopt;
    }
    return lhs;
  }

  std::optional<Value> ExprBitOr(ExprCtx& c) {
    std::optional<Value> lhs = ExprBitXor(c);
    while (!c.failed) {
      SkipSpace(c);
      if (Peek(c) == '|' && PeekAt(c, 1) != '|') {
        ++c.pos;
        std::optional<Value> rhs = ExprBitXor(c);
        if (c.failed) {
          return std::nullopt;
        }
        lhs = FoldIntBinop(lhs, rhs, '|', Op::kBitOr);
      } else {
        return lhs;
      }
    }
    return std::nullopt;
  }

  std::optional<Value> ExprBitXor(ExprCtx& c) {
    std::optional<Value> lhs = ExprBitAnd(c);
    while (!c.failed) {
      SkipSpace(c);
      if (Peek(c) == '^') {
        ++c.pos;
        std::optional<Value> rhs = ExprBitAnd(c);
        if (c.failed) {
          return std::nullopt;
        }
        lhs = FoldIntBinop(lhs, rhs, '^', Op::kBitXor);
      } else {
        return lhs;
      }
    }
    return std::nullopt;
  }

  std::optional<Value> ExprBitAnd(ExprCtx& c) {
    std::optional<Value> lhs = ExprEquality(c);
    while (!c.failed) {
      SkipSpace(c);
      if (Peek(c) == '&' && PeekAt(c, 1) != '&') {
        ++c.pos;
        std::optional<Value> rhs = ExprEquality(c);
        if (c.failed) {
          return std::nullopt;
        }
        lhs = FoldIntBinop(lhs, rhs, '&', Op::kBitAnd);
      } else {
        return lhs;
      }
    }
    return std::nullopt;
  }

  std::optional<Value> ExprEquality(ExprCtx& c) {
    std::optional<Value> lhs = ExprRelational(c);
    while (!c.failed) {
      SkipSpace(c);
      int op;
      if (Consume(c, "==")) {
        op = 0;
      } else if (Consume(c, "!=")) {
        op = 1;
      } else if (ConsumeWord(c, "eq")) {
        op = 2;
      } else if (ConsumeWord(c, "ne")) {
        op = 3;
      } else {
        return lhs;
      }
      std::optional<Value> rhs = ExprRelational(c);
      if (c.failed) {
        return std::nullopt;
      }
      if (op >= 2) {
        lhs = FoldStrEq(lhs, rhs, op == 2, op == 2 ? Op::kStrEq : Op::kStrNe);
      } else {
        lhs = FoldCompare(lhs, rhs, op == 0 ? "==" : "!=",
                          op == 0 ? Op::kCmpEq : Op::kCmpNe);
      }
    }
    return std::nullopt;
  }

  std::optional<Value> ExprRelational(ExprCtx& c) {
    std::optional<Value> lhs = ExprShift(c);
    while (!c.failed) {
      SkipSpace(c);
      const char* op = nullptr;
      Op code = Op::kCmpLt;
      if (Consume(c, "<=")) {
        op = "<=";
        code = Op::kCmpLe;
      } else if (Consume(c, ">=")) {
        op = ">=";
        code = Op::kCmpGe;
      } else if (ConsumeExact(c, "<", "<=")) {
        op = "<";
        code = Op::kCmpLt;
      } else if (ConsumeExact(c, ">", ">=")) {
        op = ">";
        code = Op::kCmpGt;
      } else {
        return lhs;
      }
      std::optional<Value> rhs = ExprShift(c);
      if (c.failed) {
        return std::nullopt;
      }
      lhs = FoldCompare(lhs, rhs, op, code);
    }
    return std::nullopt;
  }

  std::optional<Value> ExprShift(ExprCtx& c) {
    std::optional<Value> lhs = ExprAdditive(c);
    while (!c.failed) {
      SkipSpace(c);
      char op;
      Op code;
      if (Consume(c, "<<")) {
        op = 'l';
        code = Op::kShl;
      } else if (Consume(c, ">>")) {
        op = 'r';
        code = Op::kShr;
      } else {
        return lhs;
      }
      std::optional<Value> rhs = ExprAdditive(c);
      if (c.failed) {
        return std::nullopt;
      }
      lhs = FoldIntBinop(lhs, rhs, op, code);
    }
    return std::nullopt;
  }

  std::optional<Value> ExprAdditive(ExprCtx& c) {
    std::optional<Value> lhs = ExprMultiplicative(c);
    while (!c.failed) {
      SkipSpace(c);
      char op = Peek(c);
      if (op != '+' && op != '-') {
        return lhs;
      }
      ++c.pos;
      std::optional<Value> rhs = ExprMultiplicative(c);
      if (c.failed) {
        return std::nullopt;
      }
      lhs = FoldArith(lhs, rhs, op, op == '+' ? Op::kAdd : Op::kSub);
    }
    return std::nullopt;
  }

  std::optional<Value> ExprMultiplicative(ExprCtx& c) {
    std::optional<Value> lhs = ExprUnary(c);
    while (!c.failed) {
      SkipSpace(c);
      char op = Peek(c);
      if (op != '*' && op != '/' && op != '%') {
        return lhs;
      }
      ++c.pos;
      std::optional<Value> rhs = ExprUnary(c);
      if (c.failed) {
        return std::nullopt;
      }
      lhs = FoldArith(lhs, rhs, op,
                      op == '*' ? Op::kMul : op == '/' ? Op::kDiv : Op::kMod);
    }
    return std::nullopt;
  }

  std::optional<Value> ExprUnary(ExprCtx& c) {
    if (++c.depth > kMaxExprDepth) {
      c.failed = true;
      return std::nullopt;
    }
    SkipSpace(c);
    char ch = Peek(c);
    if (ch == '-' || ch == '+' || ch == '!' || ch == '~') {
      ++c.pos;
      std::optional<Value> v = ExprUnary(c);
      --c.depth;
      if (c.failed) {
        return std::nullopt;
      }
      Op code = ch == '-'   ? Op::kNeg
                : ch == '+' ? Op::kToNum
                : ch == '!' ? Op::kNot
                            : Op::kBitNot;
      if (v) {
        Value out;
        std::string err;
        if (Unary(ch, *v, &out, &err)) {
          return Refold1(out);
        }
      }
      Emit(code);
      return std::nullopt;
    }
    --c.depth;
    return ExprPrimary(c);
  }

  std::optional<Value> ExprPrimary(ExprCtx& c) {
    SkipSpace(c);
    if (c.pos >= c.s.size()) {
      c.failed = true;  // "premature end of expression"
      return std::nullopt;
    }
    char ch = Peek(c);
    if (ch == '(') {
      ++c.pos;
      std::optional<Value> v = ExprTernary(c);
      SkipSpace(c);
      if (!Consume(c, ")")) {
        c.failed = true;  // "missing close parenthesis"
        return std::nullopt;
      }
      return v;
    }
    if (ch == '$') {
      return ExprVariable(c);
    }
    if (ch == '[') {
      return ExprCommandSub(c);
    }
    if (ch == '"') {
      return ExprStringLiteral(c);
    }
    if (ch == '{') {
      return ExprBracedLiteral(c);
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(c, 1))))) {
      return ExprNumber(c);
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      return ExprWordOrFunction(c);
    }
    c.failed = true;  // "unexpected character ... in expression"
    return std::nullopt;
  }

  std::optional<Value> ExprVariable(ExprCtx& c) {
    ++c.pos;  // '$'
    std::string name;
    if (Peek(c) == '{') {
      ++c.pos;
      while (c.pos < c.s.size() && c.s[c.pos] != '}') {
        name.push_back(c.s[c.pos++]);
      }
      if (c.pos >= c.s.size()) {
        c.failed = true;  // "missing close-brace for variable name"
        return std::nullopt;
      }
      ++c.pos;
    } else {
      while (c.pos < c.s.size() &&
             (std::isalnum(static_cast<unsigned char>(c.s[c.pos])) ||
              c.s[c.pos] == '_')) {
        name.push_back(c.s[c.pos++]);
      }
    }
    if (name.empty()) {
      c.failed = true;  // "invalid '$' in expression"
      return std::nullopt;
    }
    Emit(Op::kLoadVar, AddName(name));
    return std::nullopt;
  }

  std::optional<Value> ExprCommandSub(ExprCtx& c) {
    // Never compiled inline.  The tree-walk ExprParser keeps parsing after a
    // failure and STILL EVALUATES later live command substitutions (their side
    // effects and step charges happen even though the first error wins), and
    // it converts any non-Ok nested outcome into an expression error.  An
    // expr with a [sub] therefore falls back wholesale to the tree-walk
    // evaluator, which reproduces all of that by definition.
    c.failed = true;
    return std::nullopt;
  }

  std::optional<Value> ExprStringLiteral(ExprCtx& c) {
    ++c.pos;  // '"'
    std::string value;
    while (c.pos < c.s.size() && c.s[c.pos] != '"') {
      if (c.s[c.pos] == '\\' && c.pos + 1 < c.s.size()) {
        char e = c.s[c.pos + 1];
        value.push_back(e == 'n' ? '\n' : e == 't' ? '\t' : e);
        c.pos += 2;
        continue;
      }
      value.push_back(c.s[c.pos++]);
    }
    if (c.pos >= c.s.size()) {
      c.failed = true;  // "missing close-quote in expression"
      return std::nullopt;
    }
    ++c.pos;
    return ExprConst(Value::Str(std::move(value)));
  }

  std::optional<Value> ExprBracedLiteral(ExprCtx& c) {
    ++c.pos;  // '{'
    std::string value;
    int depth = 1;
    while (c.pos < c.s.size()) {
      char ch = c.s[c.pos];
      if (ch == '{') {
        ++depth;
      } else if (ch == '}') {
        if (--depth == 0) {
          break;
        }
      }
      value.push_back(ch);
      ++c.pos;
    }
    if (depth != 0) {
      c.failed = true;  // "missing close-brace in expression"
      return std::nullopt;
    }
    ++c.pos;
    return ExprConst(Value::Str(std::move(value)));
  }

  std::optional<Value> ExprNumber(ExprCtx& c) {
    size_t start = c.pos;
    if (Peek(c) == '0' && (PeekAt(c, 1) == 'x' || PeekAt(c, 1) == 'X')) {
      c.pos += 2;
      while (c.pos < c.s.size() &&
             std::isxdigit(static_cast<unsigned char>(c.s[c.pos]))) {
        ++c.pos;
      }
      auto v = ParseInt(c.s.substr(start, c.pos - start));
      if (!v.has_value()) {
        c.failed = true;  // "malformed hex number"
        return std::nullopt;
      }
      return ExprConst(Value::Int(*v));
    }
    bool is_double = false;
    while (c.pos < c.s.size()) {
      char ch = c.s[c.pos];
      if (std::isdigit(static_cast<unsigned char>(ch))) {
        ++c.pos;
      } else if (ch == '.') {
        is_double = true;
        ++c.pos;
      } else if ((ch == 'e' || ch == 'E') && c.pos + 1 < c.s.size() &&
                 (std::isdigit(static_cast<unsigned char>(c.s[c.pos + 1])) ||
                  c.s[c.pos + 1] == '+' || c.s[c.pos + 1] == '-')) {
        is_double = true;
        c.pos += 2;
      } else {
        break;
      }
    }
    std::string text = c.s.substr(start, c.pos - start);
    if (is_double) {
      auto v = ParseDouble(text);
      if (!v.has_value()) {
        c.failed = true;  // "malformed number"
        return std::nullopt;
      }
      return ExprConst(Value::Dbl(*v));
    }
    auto v = ParseInt(text);
    if (!v.has_value()) {
      c.failed = true;
      return std::nullopt;
    }
    return ExprConst(Value::Int(*v));
  }

  std::optional<Value> ExprWordOrFunction(ExprCtx& c) {
    size_t start = c.pos;
    while (c.pos < c.s.size() &&
           (std::isalnum(static_cast<unsigned char>(c.s[c.pos])) ||
            c.s[c.pos] == '_')) {
      ++c.pos;
    }
    std::string word = c.s.substr(start, c.pos - start);
    SkipSpace(c);
    if (Peek(c) == '(') {
      ++c.pos;
      int entry_depth = depth_;
      std::vector<std::optional<Value>> args;
      SkipSpace(c);
      if (Peek(c) != ')') {
        while (true) {
          args.push_back(ExprTernary(c));
          SkipSpace(c);
          if (Consume(c, ",")) {
            continue;
          }
          break;
        }
      }
      if (!Consume(c, ")")) {
        c.failed = true;  // "missing close parenthesis in function call"
        return std::nullopt;
      }
      if (c.failed) {
        return std::nullopt;
      }
      int argc = static_cast<int>(args.size());
      MathFn fn;
      if (!LookupMathFn(word, &fn)) {
        // Live-gated in the tree-walk engine: args evaluate, then the call
        // fails — so this must be a runtime error, not a compile failure.
        EmitFail("unknown math function \"" + word + "\"");
        depth_ = entry_depth + 1;
        return std::nullopt;
      }
      bool all_const = true;
      for (const auto& a : args) {
        if (!a) {
          all_const = false;
          break;
        }
      }
      if (all_const) {
        std::vector<Value> vals;
        vals.reserve(args.size());
        for (const auto& a : args) {
          vals.push_back(*a);
        }
        Value out;
        std::string err;
        if (CallMathFn(fn, MathFnName(fn), vals, &out, &err)) {
          for (int i = 0; i < argc; ++i) {
            unit_.code.pop_back();
          }
          depth_ -= argc;
          return ExprConst(out);
        }
      }
      Emit(Op::kMathFn, static_cast<int32_t>(fn), argc);
      return std::nullopt;
    }
    if (word == "true" || word == "yes" || word == "on") {
      return ExprConst(Value::Int(1));
    }
    if (word == "false" || word == "no" || word == "off") {
      return ExprConst(Value::Int(0));
    }
    c.failed = true;  // "unknown word ... in expression (missing $?)"
    return std::nullopt;
  }

  CompileOptions opts_;
  CompiledUnit unit_;
  std::map<std::string, int32_t> const_index_;
  std::map<std::string, int32_t> name_index_;
  std::vector<LoopCtx> loop_stack_;
  int depth_ = 0;
  int script_depth_ = 0;
  int foreach_depth_ = 0;
};

}  // namespace

std::shared_ptr<const CompiledUnit> Compile(std::string_view script,
                                            const CompileOptions& options,
                                            Status* error) {
  return Compiler(options).Run(script, error);
}

}  // namespace tacoma::tacl::vm
