// TACL bytecode compiler.
//
// Compiles a script to a CompiledUnit.  The compiler is conservative by
// design: it inlines only the control/variable builtins whose semantics are
// replicated exactly by dedicated opcodes (set, incr, if, while, for,
// foreach, break, continue, return, expr) and the full expr grammar; any
// word, shape, or sub-expression it cannot prove out compiles to a generic
// invoke or a tree-walk fallback instruction, which dispatch through the very
// same code paths the tree-walk engine uses.  The only unrecoverable failure
// is a top-level parse error — exactly the case where the tree-walk engine
// fails too, with the same message.
//
// Compilation is purely static (no Interp needed), so a unit can be shared
// across interpreters and cached by script digest.  Validity of the inlined
// builtins is re-checked at run time via the interpreter's builtin epoch (see
// Op::kStmt), so a script that shadows `set` with a proc mid-flight degrades
// statement-by-statement to the tree-walk path instead of misbehaving.
#ifndef TACOMA_TACL_VM_COMPILER_H_
#define TACOMA_TACL_VM_COMPILER_H_

#include <memory>
#include <string_view>

#include "tacl/vm/bytecode.h"
#include "util/status.h"

namespace tacoma::tacl::vm {

struct CompileOptions {
  // Inline the builtin control/variable commands.  Turned off when the
  // interpreter has already shadowed one of them at compile time (nonzero
  // builtin epoch): everything becomes generic invokes, which are always
  // valid.
  bool inline_builtins = true;
};

// Returns nullptr and sets *error on a top-level parse failure.
std::shared_ptr<const CompiledUnit> Compile(std::string_view script,
                                            const CompileOptions& options,
                                            Status* error);

}  // namespace tacoma::tacl::vm

#endif  // TACOMA_TACL_VM_COMPILER_H_
