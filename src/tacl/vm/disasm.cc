#include <cstdio>
#include <string>

#include "tacl/vm/bytecode.h"

namespace tacoma::tacl::vm {

const char* OpName(Op op) {
  switch (op) {
    case Op::kStmt: return "stmt";
    case Op::kJump: return "jump";
    case Op::kDone: return "done";
    case Op::kReturnEmpty: return "return_empty";
    case Op::kReturnValue: return "return_value";
    case Op::kRaiseCode: return "raise";
    case Op::kPushConst: return "push";
    case Op::kLoadVar: return "load";
    case Op::kConcat: return "concat";
    case Op::kPopN: return "popn";
    case Op::kResultClear: return "result_clear";
    case Op::kResultPop: return "result_pop";
    case Op::kPushResult: return "push_result";
    case Op::kSetVar: return "setvar";
    case Op::kIncrVar: return "incrvar";
    case Op::kInvoke: return "invoke";
    case Op::kInvokeDyn: return "invoke_dyn";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kCondJumpIfFalse: return "cond_jump_if_false";
    case Op::kJumpZeroPushZero: return "jump_zero_push0";
    case Op::kJumpOnePushOne: return "jump_one_push1";
    case Op::kTruthy: return "truthy";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kToNum: return "tonum";
    case Op::kNot: return "not";
    case Op::kBitNot: return "bitnot";
    case Op::kBitAnd: return "bitand";
    case Op::kBitOr: return "bitor";
    case Op::kBitXor: return "bitxor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kCmpEq: return "cmp_eq";
    case Op::kCmpNe: return "cmp_ne";
    case Op::kCmpLt: return "cmp_lt";
    case Op::kCmpLe: return "cmp_le";
    case Op::kCmpGt: return "cmp_gt";
    case Op::kCmpGe: return "cmp_ge";
    case Op::kStrEq: return "str_eq";
    case Op::kStrNe: return "str_ne";
    case Op::kMathFn: return "mathfn";
    case Op::kFail: return "fail";
    case Op::kForeachBegin: return "foreach_begin";
    case Op::kForeachIter: return "foreach_iter";
    case Op::kForeachEnd: return "foreach_end";
    case Op::kEvalExprPush: return "eval_expr";
    case Op::kCondEvalPush: return "eval_cond";
    case Op::kEvalScriptPush: return "eval_script";
  }
  return "?";
}

namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string ConstRepr(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return "int " + v.AsString();
    case Value::Kind::kDouble:
      return "dbl " + v.AsString();
    case Value::Kind::kString:
      return "str " + Quote(v.AsString());
  }
  return "?";
}

}  // namespace

std::string Disassemble(const CompiledUnit& unit) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "unit: code=%zu consts=%zu names=%zu stmts=%zu foreachs=%zu "
                "loops=%zu inlined=%d\n",
                unit.code.size(), unit.consts.size(), unit.names.size(),
                unit.stmts.size(), unit.foreachs.size(), unit.loops.size(),
                unit.inlined ? 1 : 0);
  out += line;
  for (size_t i = 0; i < unit.consts.size(); ++i) {
    out += "const " + std::to_string(i) + ": " + ConstRepr(unit.consts[i]) + "\n";
  }
  for (size_t i = 0; i < unit.names.size(); ++i) {
    out += "name " + std::to_string(i) + ": " + unit.names[i] + "\n";
  }
  for (size_t i = 0; i < unit.foreachs.size(); ++i) {
    out += "foreach " + std::to_string(i) + ":";
    for (const std::string& n : unit.foreachs[i].names) {
      out += " " + n;
    }
    out += "\n";
  }
  for (size_t i = 0; i < unit.loops.size(); ++i) {
    const LoopInfo& l = unit.loops[i];
    std::snprintf(line, sizeof(line),
                  "loop %zu: body=[%u,%u) break=%u continue=%u stack=%u "
                  "fstates=%u\n",
                  i, l.body_begin, l.body_end, l.break_pc, l.continue_pc,
                  l.stack_depth, l.foreach_depth);
    out += line;
  }
  for (size_t pc = 0; pc < unit.code.size(); ++pc) {
    const Instr& in = unit.code[pc];
    std::snprintf(line, sizeof(line), "%4zu  %-18s", pc, OpName(in.op));
    out += line;
    switch (in.op) {
      case Op::kStmt:
        out += " s" + std::to_string(in.a) + " next=" +
               std::to_string(unit.stmts[in.a].next_pc);
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kCondJumpIfFalse:
      case Op::kJumpZeroPushZero:
      case Op::kJumpOnePushOne:
        out += " ->" + std::to_string(in.a);
        break;
      case Op::kPushConst:
      case Op::kFail:
      case Op::kEvalExprPush:
      case Op::kCondEvalPush:
      case Op::kEvalScriptPush:
        out += " c" + std::to_string(in.a) + " ; " +
               ConstRepr(unit.consts[in.a]);
        break;
      case Op::kLoadVar:
      case Op::kSetVar:
      case Op::kIncrVar:
        out += " " + unit.names[in.a];
        break;
      case Op::kInvoke:
        out += " " + unit.names[in.a] + " argc=" + std::to_string(in.b);
        break;
      case Op::kInvokeDyn:
        out += " argc=" + std::to_string(in.a);
        break;
      case Op::kConcat:
      case Op::kPopN:
        out += " n=" + std::to_string(in.a);
        break;
      case Op::kRaiseCode:
        out += " code=" + std::to_string(in.a);
        break;
      case Op::kMathFn:
        out += std::string(" ") + MathFnName(static_cast<MathFn>(in.a)) +
               " argc=" + std::to_string(in.b);
        break;
      case Op::kForeachBegin:
        out += " f" + std::to_string(in.a);
        break;
      case Op::kForeachIter:
        out += " f" + std::to_string(in.a) + " exit=" + std::to_string(in.b);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace tacoma::tacl::vm
