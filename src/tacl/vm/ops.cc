#include "tacl/vm/ops.h"

#include <cctype>
#include <cmath>

#include "tacl/list.h"

namespace tacoma::tacl::vm {
namespace {

double NumAsDouble(const Value& v) {
  return v.kind() == Value::Kind::kDouble ? v.dbl_value()
                                          : static_cast<double>(v.int_value());
}

bool BothInt(const Value& a, const Value& b) {
  return a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt;
}

// Non-failing numeric probe (ExprParser::TryNumber).
bool TryNumber(const Value& v, Value* out) {
  if (v.kind() != Value::Kind::kString) {
    *out = v;
    return true;
  }
  const std::string& s = v.AsString();
  if (auto i = ParseInt(s)) {
    *out = Value::Int(*i);
    return true;
  }
  if (auto d = ParseDouble(s)) {
    *out = Value::Dbl(*d);
    return true;
  }
  return false;
}

std::string Lower(const std::string& s) {
  std::string lower = s;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

}  // namespace

bool ToNumber(const Value& v, Value* out, std::string* error) {
  if (TryNumber(v, out)) {
    return true;
  }
  *error = "can't use non-numeric string \"" + v.AsString() + "\" as operand";
  return false;
}

bool Truthy(const Value& v, bool* out, std::string* error) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      *out = v.int_value() != 0;
      return true;
    case Value::Kind::kDouble:
      *out = v.dbl_value() != 0.0;
      return true;
    case Value::Kind::kString:
      break;
  }
  const std::string& s = v.AsString();
  if (auto i = ParseInt(s)) {
    *out = *i != 0;
    return true;
  }
  if (auto d = ParseDouble(s)) {
    *out = *d != 0.0;
    return true;
  }
  std::string lower = Lower(s);
  if (lower == "true" || lower == "yes" || lower == "on") {
    *out = true;
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "off") {
    *out = false;
    return true;
  }
  *error = "expected boolean value but got \"" + s + "\"";
  return false;
}

bool CondTruthy(const Value& v, bool* out, std::string* error) {
  // Ints are exact either way; everything else takes the string path the
  // tree-walk EvalCondition takes on the expr's result string (this is where
  // Inf/NaN renderings and boolean words get their defined behavior).
  if (v.kind() == Value::Kind::kInt) {
    *out = v.int_value() != 0;
    return true;
  }
  const std::string& s = v.AsString();
  if (auto i = ParseInt(s)) {
    *out = *i != 0;
    return true;
  }
  if (auto d = ParseDouble(s)) {
    *out = *d != 0.0;
    return true;
  }
  std::string lower = Lower(s);
  if (lower == "true" || lower == "yes" || lower == "on") {
    *out = true;
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "off") {
    *out = false;
    return true;
  }
  *error = "expected boolean value but got \"" + s + "\"";
  return false;
}

bool Arith(char op, const Value& lhs, const Value& rhs, Value* out,
           std::string* error) {
  Value a, b;
  if (!ToNumber(lhs, &a, error) || !ToNumber(rhs, &b, error)) {
    return false;
  }
  if (BothInt(a, b)) {
    int64_t x = a.int_value();
    int64_t y = b.int_value();
    switch (op) {
      case '+':
        *out = Value::Int(x + y);
        return true;
      case '-':
        *out = Value::Int(x - y);
        return true;
      case '*':
        *out = Value::Int(x * y);
        return true;
      case '/':
        if (y == 0) {
          *error = "divide by zero";
          return false;
        }
        *out = Value::Int(x / y);
        return true;
      case '%':
        if (y == 0) {
          *error = "divide by zero";
          return false;
        }
        *out = Value::Int(x % y);
        return true;
    }
  }
  double x = NumAsDouble(a);
  double y = NumAsDouble(b);
  switch (op) {
    case '+':
      *out = Value::Dbl(x + y);
      return true;
    case '-':
      *out = Value::Dbl(x - y);
      return true;
    case '*':
      *out = Value::Dbl(x * y);
      return true;
    case '/':
      if (y == 0.0) {
        *error = "divide by zero";
        return false;
      }
      *out = Value::Dbl(x / y);
      return true;
    case '%':
      *error = "can't apply % to floating-point values";
      return false;
  }
  *error = "internal: bad arithmetic operator";
  return false;
}

bool IntBinop(char op, const Value& lhs, const Value& rhs, Value* out,
              std::string* error) {
  Value a, b;
  if (!ToNumber(lhs, &a, error) || !ToNumber(rhs, &b, error)) {
    return false;
  }
  if (!BothInt(a, b)) {
    *error = "bitwise operators require integer operands";
    return false;
  }
  int64_t x = a.int_value();
  int64_t y = b.int_value();
  switch (op) {
    case '|':
      *out = Value::Int(x | y);
      return true;
    case '^':
      *out = Value::Int(x ^ y);
      return true;
    case '&':
      *out = Value::Int(x & y);
      return true;
    case 'l':
      *out = Value::Int(y < 0 || y > 63 ? 0 : x << y);
      return true;
    case 'r':
      *out = Value::Int(y < 0 || y > 63 ? (x < 0 ? -1 : 0) : x >> y);
      return true;
  }
  *error = "internal: bad bitwise operator";
  return false;
}

int64_t Compare(const Value& lhs, const Value& rhs, const char* op) {
  Value lnum, rnum;
  bool lok = TryNumber(lhs, &lnum);
  bool rok = TryNumber(rhs, &rnum);
  int cmp;
  if (lok && rok) {
    if (BothInt(lnum, rnum)) {
      int64_t a = lnum.int_value();
      int64_t b = rnum.int_value();
      cmp = a < b ? -1 : a > b ? 1 : 0;
    } else {
      double a = NumAsDouble(lnum);
      double b = NumAsDouble(rnum);
      cmp = a < b ? -1 : a > b ? 1 : 0;
    }
  } else {
    const std::string& a = lhs.AsString();
    const std::string& b = rhs.AsString();
    cmp = a < b ? -1 : a > b ? 1 : 0;
  }
  std::string_view o = op;
  if (o == "==") {
    return cmp == 0;
  }
  if (o == "!=") {
    return cmp != 0;
  }
  if (o == "<") {
    return cmp < 0;
  }
  if (o == "<=") {
    return cmp <= 0;
  }
  if (o == ">") {
    return cmp > 0;
  }
  return cmp >= 0;  // ">="
}

bool Unary(char op, const Value& v, Value* out, std::string* error) {
  if (op == '!') {
    bool truth = false;
    if (!Truthy(v, &truth, error)) {
      return false;
    }
    *out = Value::Int(truth ? 0 : 1);
    return true;
  }
  Value n;
  if (!ToNumber(v, &n, error)) {
    return false;
  }
  switch (op) {
    case '+':
      *out = n;
      return true;
    case '-':
      *out = n.kind() == Value::Kind::kInt ? Value::Int(-n.int_value())
                                           : Value::Dbl(-n.dbl_value());
      return true;
    case '~':
      if (n.kind() != Value::Kind::kInt) {
        *error = "can't apply ~ to a floating-point value";
        return false;
      }
      *out = Value::Int(~n.int_value());
      return true;
  }
  *error = "internal: bad unary operator";
  return false;
}

bool LookupMathFn(const std::string& name, MathFn* out) {
  if (name == "abs") {
    *out = MathFn::kAbs;
  } else if (name == "int") {
    *out = MathFn::kInt;
  } else if (name == "double") {
    *out = MathFn::kDouble;
  } else if (name == "round") {
    *out = MathFn::kRound;
  } else if (name == "sqrt") {
    *out = MathFn::kSqrt;
  } else if (name == "pow") {
    *out = MathFn::kPow;
  } else if (name == "floor") {
    *out = MathFn::kFloor;
  } else if (name == "ceil") {
    *out = MathFn::kCeil;
  } else if (name == "exp") {
    *out = MathFn::kExp;
  } else if (name == "log") {
    *out = MathFn::kLog;
  } else if (name == "fmod") {
    *out = MathFn::kFmod;
  } else if (name == "min") {
    *out = MathFn::kMin;
  } else if (name == "max") {
    *out = MathFn::kMax;
  } else {
    return false;
  }
  return true;
}

const char* MathFnName(MathFn fn) {
  switch (fn) {
    case MathFn::kAbs:
      return "abs";
    case MathFn::kInt:
      return "int";
    case MathFn::kDouble:
      return "double";
    case MathFn::kRound:
      return "round";
    case MathFn::kSqrt:
      return "sqrt";
    case MathFn::kPow:
      return "pow";
    case MathFn::kFloor:
      return "floor";
    case MathFn::kCeil:
      return "ceil";
    case MathFn::kExp:
      return "exp";
    case MathFn::kLog:
      return "log";
    case MathFn::kFmod:
      return "fmod";
    case MathFn::kMin:
      return "min";
    case MathFn::kMax:
      return "max";
  }
  return "?";
}

bool CallMathFn(MathFn fn, const char* name, const std::vector<Value>& args,
                Value* out, std::string* error) {
  auto wrong_args = [&] {
    *error = "wrong # args for math function \"" + std::string(name) + "\"";
    return false;
  };
  auto num = [&](const Value& v, Value* n) { return ToNumber(v, n, error); };

  switch (fn) {
    case MathFn::kAbs: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = v.kind() == Value::Kind::kInt
                 ? Value::Int(v.int_value() < 0 ? -v.int_value() : v.int_value())
                 : Value::Dbl(std::fabs(v.dbl_value()));
      return true;
    }
    case MathFn::kInt: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = Value::Int(v.kind() == Value::Kind::kInt
                            ? v.int_value()
                            : static_cast<int64_t>(v.dbl_value()));
      return true;
    }
    case MathFn::kDouble: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = Value::Dbl(NumAsDouble(v));
      return true;
    }
    case MathFn::kRound: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = Value::Int(static_cast<int64_t>(std::llround(NumAsDouble(v))));
      return true;
    }
    case MathFn::kSqrt: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      double x = NumAsDouble(v);
      if (x < 0) {
        *error = "domain error: sqrt of negative value";
        return false;
      }
      *out = Value::Dbl(std::sqrt(x));
      return true;
    }
    case MathFn::kPow: {
      if (args.size() != 2) {
        return wrong_args();
      }
      Value a, b;
      if (!num(args[0], &a) || !num(args[1], &b)) {
        return false;
      }
      *out = Value::Dbl(std::pow(NumAsDouble(a), NumAsDouble(b)));
      return true;
    }
    case MathFn::kFloor: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = Value::Dbl(std::floor(NumAsDouble(v)));
      return true;
    }
    case MathFn::kCeil: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = Value::Dbl(std::ceil(NumAsDouble(v)));
      return true;
    }
    case MathFn::kExp: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      *out = Value::Dbl(std::exp(NumAsDouble(v)));
      return true;
    }
    case MathFn::kLog: {
      if (args.size() != 1) {
        return wrong_args();
      }
      Value v;
      if (!num(args[0], &v)) {
        return false;
      }
      double x = NumAsDouble(v);
      if (x <= 0) {
        *error = "domain error: log of non-positive value";
        return false;
      }
      *out = Value::Dbl(std::log(x));
      return true;
    }
    case MathFn::kFmod: {
      if (args.size() != 2) {
        return wrong_args();
      }
      // The tree-walk engine converts the divisor first and reports divide by
      // zero before even looking at the dividend.
      Value b;
      if (!num(args[1], &b)) {
        return false;
      }
      double y = NumAsDouble(b);
      if (y == 0.0) {
        *error = "divide by zero";
        return false;
      }
      Value a;
      if (!num(args[0], &a)) {
        return false;
      }
      *out = Value::Dbl(std::fmod(NumAsDouble(a), y));
      return true;
    }
    case MathFn::kMin:
    case MathFn::kMax: {
      if (args.empty()) {
        return wrong_args();
      }
      Value best;
      if (!num(args[0], &best)) {
        return false;
      }
      for (size_t i = 1; i < args.size(); ++i) {
        Value v;
        if (!num(args[i], &v)) {
          return false;
        }
        bool less = BothInt(v, best) ? v.int_value() < best.int_value()
                                     : NumAsDouble(v) < NumAsDouble(best);
        if ((fn == MathFn::kMin) == less) {
          best = v;
        }
      }
      *out = best;
      return true;
    }
  }
  *error = "internal: bad math function";
  return false;
}

}  // namespace tacoma::tacl::vm
