// Runtime operator semantics for the TACL bytecode VM.
//
// Each helper replicates one ExprParser operator (src/tacl/expr.cc) exactly —
// same coercion order, same integer/double promotion, same error strings.
// The compiler's constant folder calls the same helpers, so a folded constant
// can never disagree with what the tree-walk engine would have produced; a
// helper that fails simply isn't folded and the error surfaces at run time.
//
// Failure convention: return false and set *error (callers mirror
// ExprParser::Fail's first-error-wins by not calling further helpers).
#ifndef TACOMA_TACL_VM_OPS_H_
#define TACOMA_TACL_VM_OPS_H_

#include <string>
#include <vector>

#include "tacl/vm/bytecode.h"
#include "tacl/vm/value.h"

namespace tacoma::tacl::vm {

// ExprParser::ToNumber — int/double pass through, strings parse or fail with
// "can't use non-numeric string ... as operand".
bool ToNumber(const Value& v, Value* out, std::string* error);

// ExprParser::Truthy — expr-internal truthiness (doubles compared natively).
bool Truthy(const Value& v, bool* out, std::string* error);

// Interp::EvalCondition truthiness: the tree-walk engine interprets the expr
// *result string*, so doubles here take the string path (ints are exact
// either way).  Used for `if`/`while`/`for` conditions.
bool CondTruthy(const Value& v, bool* out, std::string* error);

// ExprParser::Arith for + - * / %.
bool Arith(char op, const Value& lhs, const Value& rhs, Value* out,
           std::string* error);

// ExprParser::IntBinop for | ^ & and shifts ('l' = <<, 'r' = >>).
bool IntBinop(char op, const Value& lhs, const Value& rhs, Value* out,
              std::string* error);

// ExprParser::Compare for == != < <= > >= (never fails: non-numeric operands
// fall back to string comparison).
int64_t Compare(const Value& lhs, const Value& rhs, const char* op);

// Unary operators: '-' '+' (numeric coercion), '!' (truthy negate),
// '~' (integer complement).
bool Unary(char op, const Value& v, Value* out, std::string* error);

// ExprParser::CallFunction with a pre-resolved MathFn id.
bool CallMathFn(MathFn fn, const char* name, const std::vector<Value>& args,
                Value* out, std::string* error);

// Maps a function name to its MathFn id; false if unknown.
bool LookupMathFn(const std::string& name, MathFn* out);

}  // namespace tacoma::tacl::vm

#endif  // TACOMA_TACL_VM_OPS_H_
