// Dual-representation TACL value (feather-style "shimmer" cell).
//
// The tree-walk interpreter stores every variable as a string and re-parses it
// on each numeric use.  The VM instead keeps the native representation (int64
// or double) alongside a lazily materialized string, so `incr i` in a loop
// never round-trips through FormatInt/ParseInt.  Exactness contract with the
// tree-walk engine:
//
//   * kInt     — FormatInt/ParseInt round-trip exactly, so the native int is
//                always interchangeable with its string form.
//   * kDouble  — FormatDouble (%.12g) is NOT round-trip safe.  A double value
//                that the tree-walk engine would have observed *as a string*
//                (stored in a variable, or produced by a nested script) must
//                be normalized first: format, re-parse, and keep the reparsed
//                double plus the cached string (NormalizedForStore).  Doubles
//                that only live inside one expr evaluation stay exact, which
//                is also what the tree-walk ExprParser does with Val::Double.
//   * kString  — identical to the tree-walk representation.
//
// Materializing the string form of a numeric value is a "shimmer"; the VM
// counts them (thread-local) so metrics can expose the conversion tax.
#ifndef TACOMA_TACL_VM_VALUE_H_
#define TACOMA_TACL_VM_VALUE_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "tacl/list.h"

namespace tacoma::tacl::vm {

class Value {
 public:
  enum class Kind : uint8_t { kString, kInt, kDouble };

  Value() : kind_(Kind::kString), has_str_(true) {}

  static Value Str(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.has_str_ = true;
    v.str_ = std::move(s);
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt;
    v.has_str_ = false;
    v.int_ = i;
    return v;
  }
  static Value Dbl(double d) {
    Value v;
    v.kind_ = Kind::kDouble;
    v.has_str_ = false;
    v.dbl_ = d;
    return v;
  }
  // An int constant that remembers its source spelling (e.g. "0x10"), so a
  // later string view shows exactly what the tree-walk engine would have had.
  static Value IntWithString(int64_t i, std::string s) {
    Value v = Int(i);
    v.has_str_ = true;
    v.str_ = std::move(s);
    return v;
  }

  Kind kind() const { return kind_; }
  bool has_string() const { return has_str_; }
  int64_t int_value() const { return int_; }
  double dbl_value() const { return dbl_; }

  // String view of the value; materializes (and caches) the string form of a
  // numeric value, counting one shimmer.
  const std::string& AsString() const {
    if (!has_str_) {
      str_ = kind_ == Kind::kInt ? FormatInt(int_) : FormatDouble(dbl_);
      has_str_ = true;
      ++shimmer_count;
    }
    return str_;
  }

  // Integer view with tree-walk semantics: an int is native; anything else
  // goes through the string, exactly as ParseInt(stored string) would.
  std::optional<int64_t> AsInt() const {
    if (kind_ == Kind::kInt) {
      return int_;
    }
    return ParseInt(AsString());
  }

  // Returns the value a tree-walk engine would observe after storing this
  // value as a string: ints and strings are already exact; doubles are
  // formatted and re-parsed so later numeric reads agree bit-for-bit with
  // "parse of the stored string".
  Value NormalizedForStore() const {
    if (kind_ != Kind::kDouble) {
      return *this;
    }
    const std::string& s = AsString();
    if (std::optional<double> d = ParseDouble(s)) {
      Value v = Dbl(*d);
      v.has_str_ = true;
      v.str_ = s;
      return v;
    }
    return Str(s);  // NaN-ish renderings that do not parse back.
  }

  // Thread-local count of numeric->string materializations, sampled by the
  // VM around each unit execution.  The simulation is single-threaded;
  // thread_local keeps the sanitizer builds honest.
  static thread_local uint64_t shimmer_count;

 private:
  Kind kind_;
  mutable bool has_str_;
  int64_t int_ = 0;
  double dbl_ = 0.0;
  mutable std::string str_;
};

}  // namespace tacoma::tacl::vm

#endif  // TACOMA_TACL_VM_VALUE_H_
