#include "tacl/vm/vm.h"

#include <algorithm>
#include <utility>

#include "tacl/list.h"
#include "tacl/vm/ops.h"

namespace tacoma::tacl::vm {

thread_local uint64_t Value::shimmer_count = 0;

Runner::Runner(Interp& interp, const CompiledUnit& unit)
    : interp_(interp),
      unit_(unit),
      fn_cache_(unit.names.size(), nullptr),
      fn_epoch_(interp.command_table_epoch_) {}

Outcome Runner::Run() {
  // Shimmer attribution: each Runner claims the materializations that happened
  // while it ran, minus those already claimed by nested Runners (a kInvoke can
  // re-enter Eval on the same interp), so vm.shimmers sums without double
  // counting.
  const uint64_t s0 = Value::shimmer_count;
  const uint64_t c0 = interp_.vm_shimmers_claimed_;
  Outcome out = Exec();
  const uint64_t total = Value::shimmer_count - s0;
  const uint64_t nested = interp_.vm_shimmers_claimed_ - c0;
  interp_.vm_stats_.shimmers += total - nested;
  interp_.vm_shimmers_claimed_ = c0 + total;
  interp_.vm_stats_.dispatches += dispatched_;
  return out;
}

const Interp::CommandFn* Runner::LookupFn(int32_t name_index) {
  if (fn_epoch_ != interp_.command_table_epoch_) {
    std::fill(fn_cache_.begin(), fn_cache_.end(), nullptr);
    fn_epoch_ = interp_.command_table_epoch_;
  }
  const Interp::CommandFn*& slot = fn_cache_[name_index];
  if (slot == nullptr) {
    // Misses stay null and re-resolve next time: a proc defined mid-script
    // must become visible to later invocations.
    slot = interp_.FindCommandFn(unit_.names[name_index]);
  }
  return slot;
}

bool Runner::Unwind(Outcome o, uint32_t pc, uint32_t* resume) {
  if (o.code == Code::kBreak || o.code == Code::kContinue) {
    // Bind to the innermost compiled loop whose body contains pc; discard any
    // operand-stack entries and foreach states the abandoned statement left
    // behind (a break can fire mid-word-assembly via a [substitution]).
    const LoopInfo* loop = nullptr;
    for (const LoopInfo& l : unit_.loops) {
      if (pc >= l.body_begin && pc < l.body_end &&
          (loop == nullptr || l.body_begin > loop->body_begin)) {
        loop = &l;
      }
    }
    if (loop != nullptr) {
      stack_.resize(loop->stack_depth);
      fstates_.resize(loop->foreach_depth);
      *resume = o.code == Code::kBreak ? loop->break_pc : loop->continue_pc;
      return true;
    }
  }
  // Errors, returns, and unbound break/continue leave the unit; the caller
  // (an enclosing tree-walk construct, CallProc, or Eval) consumes the code.
  final_ = std::move(o);
  return false;
}

namespace {

char ArithChar(Op op) {
  switch (op) {
    case Op::kAdd: return '+';
    case Op::kSub: return '-';
    case Op::kMul: return '*';
    case Op::kDiv: return '/';
    default: return '%';
  }
}

char IntBinopChar(Op op) {
  switch (op) {
    case Op::kBitAnd: return '&';
    case Op::kBitOr: return '|';
    case Op::kBitXor: return '^';
    case Op::kShl: return 'l';
    default: return 'r';
  }
}

const char* CompareOp(Op op) {
  switch (op) {
    case Op::kCmpEq: return "==";
    case Op::kCmpNe: return "!=";
    case Op::kCmpLt: return "<";
    case Op::kCmpLe: return "<=";
    case Op::kCmpGt: return ">";
    default: return ">=";
  }
}

}  // namespace

// The RAISE macro routes a non-Ok outcome through Unwind: either execution
// resumes at a loop edge or the outcome is final.  A plain block, not
// do/while(0): the trailing `continue` must bind the dispatch loop.
#define TACOMA_VM_RAISE(outcome)               \
  {                                            \
    if (!Unwind((outcome), pc, &pc)) {         \
      return final_;                           \
    }                                          \
    continue;                                  \
  }

Outcome Runner::Exec() {
  const Instr* code = unit_.code.data();
  uint32_t pc = 0;
  for (;;) {
    const Instr& in = code[pc];
    ++dispatched_;
    switch (in.op) {
      case Op::kStmt: {
        ++interp_.steps_;
        if (interp_.step_limit_ != 0 && interp_.steps_ > interp_.step_limit_) {
          TACOMA_VM_RAISE(Error("step limit exceeded"));
        }
        if (unit_.inlined && interp_.builtin_epoch_ != 0) {
          // The builtin surface changed under a unit that inlined builtins
          // (e.g. a proc now shadows `set`).  Run this source statement
          // through the tree-walk dispatcher and resume after it.
          const StmtRef& ref = unit_.stmts[in.a];
          ++interp_.vm_stats_.stmt_fallbacks;
          Outcome out = interp_.ExecParsedCommand((*unit_.trees[ref.tree])[ref.index]);
          if (out.code == Code::kOk) {
            result_ = Value::Str(std::move(out.value));
            pc = ref.next_pc;
            continue;
          }
          TACOMA_VM_RAISE(std::move(out));
        }
        ++pc;
        continue;
      }
      case Op::kJump:
        pc = static_cast<uint32_t>(in.a);
        continue;
      case Op::kDone:
        return Ok(result_.AsString());
      case Op::kReturnEmpty:
        TACOMA_VM_RAISE((Outcome{Code::kReturn, ""}));
      case Op::kReturnValue: {
        std::string v = stack_.back().AsString();
        stack_.pop_back();
        TACOMA_VM_RAISE((Outcome{Code::kReturn, std::move(v)}));
      }
      case Op::kRaiseCode:
        TACOMA_VM_RAISE((Outcome{static_cast<Code>(in.a), ""}));

      case Op::kPushConst:
        stack_.push_back(unit_.consts[in.a]);
        ++pc;
        continue;
      case Op::kLoadVar: {
        const Value* v = interp_.GetVarValue(unit_.names[in.a]);
        if (v == nullptr) {
          TACOMA_VM_RAISE(Error("can't read \"" + unit_.names[in.a] +
                                "\": no such variable"));
        }
        stack_.push_back(*v);
        ++pc;
        continue;
      }
      case Op::kConcat: {
        const size_t n = static_cast<size_t>(in.a);
        const size_t base = stack_.size() - n;
        std::string s;
        for (size_t i = base; i < stack_.size(); ++i) {
          s.append(stack_[i].AsString());
        }
        stack_.resize(base);
        stack_.push_back(Value::Str(std::move(s)));
        ++pc;
        continue;
      }
      case Op::kPopN:
        stack_.resize(stack_.size() - static_cast<size_t>(in.a));
        ++pc;
        continue;

      case Op::kResultClear:
        result_ = Value();
        ++pc;
        continue;
      case Op::kResultPop:
        result_ = std::move(stack_.back());
        stack_.pop_back();
        ++pc;
        continue;
      case Op::kPushResult:
        // Nested-script results cross an Outcome-string boundary in the
        // tree-walk engine; normalize doubles so later numeric reads agree.
        stack_.push_back(result_.NormalizedForStore());
        ++pc;
        continue;

      case Op::kSetVar: {
        Value stored = stack_.back().NormalizedForStore();
        stack_.pop_back();
        interp_.SetVarValue(unit_.names[in.a], stored);
        result_ = std::move(stored);
        ++pc;
        continue;
      }
      case Op::kIncrVar: {
        Value delta_v = std::move(stack_.back());
        stack_.pop_back();
        std::optional<int64_t> delta = delta_v.AsInt();
        if (!delta.has_value()) {
          TACOMA_VM_RAISE(
              Error("expected integer but got \"" + delta_v.AsString() + "\""));
        }
        const std::string& name = unit_.names[in.a];
        int64_t base = 0;
        if (const Value* cur = interp_.GetVarValue(name)) {
          std::optional<int64_t> b = cur->AsInt();
          if (!b.has_value()) {
            TACOMA_VM_RAISE(
                Error("expected integer but got \"" + cur->AsString() + "\""));
          }
          base = *b;
        }
        Value next = Value::Int(base + *delta);
        interp_.SetVarValue(name, next);
        result_ = std::move(next);
        ++pc;
        continue;
      }
      case Op::kInvoke: {
        const size_t argc = static_cast<size_t>(in.b);
        const size_t base = stack_.size() - argc;
        std::vector<std::string> argv;
        argv.reserve(argc + 1);
        argv.push_back(unit_.names[in.a]);
        for (size_t i = base; i < stack_.size(); ++i) {
          argv.push_back(stack_[i].AsString());
        }
        stack_.resize(base);
        ++interp_.vm_stats_.invokes;
        const Interp::CommandFn* fn = LookupFn(in.a);
        Outcome out = fn != nullptr
                          ? (*fn)(interp_, argv)
                          : Error("invalid command name \"" + argv[0] + "\"");
        if (out.code == Code::kOk) {
          result_ = Value::Str(std::move(out.value));
          ++pc;
          continue;
        }
        TACOMA_VM_RAISE(std::move(out));
      }
      case Op::kInvokeDyn: {
        const size_t argc = static_cast<size_t>(in.a);
        const size_t base = stack_.size() - argc;
        std::vector<std::string> argv;
        argv.reserve(argc);
        for (size_t i = base; i < stack_.size(); ++i) {
          argv.push_back(stack_[i].AsString());
        }
        stack_.resize(base);
        ++interp_.vm_stats_.invokes;
        Outcome out = interp_.EvalCommand(argv);
        if (out.code == Code::kOk) {
          result_ = Value::Str(std::move(out.value));
          ++pc;
          continue;
        }
        TACOMA_VM_RAISE(std::move(out));
      }

      case Op::kJumpIfFalse: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        bool t;
        std::string err;
        if (!Truthy(v, &t, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        pc = t ? pc + 1 : static_cast<uint32_t>(in.a);
        continue;
      }
      case Op::kCondJumpIfFalse: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        bool t;
        std::string err;
        if (!CondTruthy(v, &t, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        pc = t ? pc + 1 : static_cast<uint32_t>(in.a);
        continue;
      }
      case Op::kJumpZeroPushZero: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        bool t;
        std::string err;
        if (!Truthy(v, &t, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        if (!t) {
          stack_.push_back(Value::Int(0));
          pc = static_cast<uint32_t>(in.a);
        } else {
          ++pc;
        }
        continue;
      }
      case Op::kJumpOnePushOne: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        bool t;
        std::string err;
        if (!Truthy(v, &t, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        if (t) {
          stack_.push_back(Value::Int(1));
          pc = static_cast<uint32_t>(in.a);
        } else {
          ++pc;
        }
        continue;
      }
      case Op::kTruthy: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        bool t;
        std::string err;
        if (!Truthy(v, &t, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        stack_.push_back(Value::Int(t ? 1 : 0));
        ++pc;
        continue;
      }

      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        Value out;
        std::string err;
        if (!Arith(ArithChar(in.op), stack_[stack_.size() - 2], stack_.back(),
                   &out, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        stack_.pop_back();
        stack_.back() = std::move(out);
        ++pc;
        continue;
      }
      case Op::kNeg:
      case Op::kToNum:
      case Op::kNot:
      case Op::kBitNot: {
        const char op = in.op == Op::kNeg     ? '-'
                        : in.op == Op::kToNum ? '+'
                        : in.op == Op::kNot   ? '!'
                                              : '~';
        Value out;
        std::string err;
        if (!Unary(op, stack_.back(), &out, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        stack_.back() = std::move(out);
        ++pc;
        continue;
      }
      case Op::kBitAnd:
      case Op::kBitOr:
      case Op::kBitXor:
      case Op::kShl:
      case Op::kShr: {
        Value out;
        std::string err;
        if (!IntBinop(IntBinopChar(in.op), stack_[stack_.size() - 2],
                      stack_.back(), &out, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        stack_.pop_back();
        stack_.back() = std::move(out);
        ++pc;
        continue;
      }
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe: {
        int64_t r = Compare(stack_[stack_.size() - 2], stack_.back(),
                            CompareOp(in.op));
        stack_.pop_back();
        stack_.back() = Value::Int(r);
        ++pc;
        continue;
      }
      case Op::kStrEq:
      case Op::kStrNe: {
        const bool equal =
            stack_[stack_.size() - 2].AsString() == stack_.back().AsString();
        stack_.pop_back();
        stack_.back() = Value::Int((in.op == Op::kStrEq) == equal ? 1 : 0);
        ++pc;
        continue;
      }
      case Op::kMathFn: {
        const size_t argc = static_cast<size_t>(in.b);
        const size_t base = stack_.size() - argc;
        std::vector<Value> args(stack_.begin() + base, stack_.end());
        stack_.resize(base);
        const MathFn fn = static_cast<MathFn>(in.a);
        Value out;
        std::string err;
        if (!CallMathFn(fn, MathFnName(fn), args, &out, &err)) {
          TACOMA_VM_RAISE(Error(std::move(err)));
        }
        stack_.push_back(std::move(out));
        ++pc;
        continue;
      }
      case Op::kFail:
        TACOMA_VM_RAISE(Error(unit_.consts[in.a].AsString()));

      case Op::kForeachBegin: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        auto values = ParseList(v.AsString());
        if (!values.ok()) {
          TACOMA_VM_RAISE(Error("bad value list in foreach"));
        }
        fstates_.push_back({std::move(values).value(), 0});
        ++pc;
        continue;
      }
      case Op::kForeachIter: {
        ForeachState& st = fstates_.back();
        if (st.pos >= st.values.size()) {
          fstates_.pop_back();
          pc = static_cast<uint32_t>(in.b);
          continue;
        }
        for (const std::string& name : unit_.foreachs[in.a].names) {
          interp_.SetVarValue(
              name, Value::Str(st.pos < st.values.size() ? st.values[st.pos] : ""));
          ++st.pos;
        }
        ++pc;
        continue;
      }
      case Op::kForeachEnd:
        fstates_.pop_back();
        ++pc;
        continue;

      case Op::kEvalExprPush: {
        Outcome out = EvalExpr(interp_, unit_.consts[in.a].AsString());
        if (out.code != Code::kOk) {
          TACOMA_VM_RAISE(std::move(out));
        }
        stack_.push_back(Value::Str(std::move(out.value)));
        ++pc;
        continue;
      }
      case Op::kCondEvalPush: {
        Result<bool> cond = interp_.EvalCondition(unit_.consts[in.a].AsString());
        if (!cond.ok()) {
          TACOMA_VM_RAISE(Error(std::string(cond.status().message())));
        }
        stack_.push_back(Value::Int(*cond ? 1 : 0));
        ++pc;
        continue;
      }
      case Op::kEvalScriptPush: {
        Outcome out = interp_.Eval(unit_.consts[in.a].AsString());
        if (out.code != Code::kOk) {
          TACOMA_VM_RAISE(std::move(out));
        }
        stack_.push_back(Value::Str(std::move(out.value)));
        ++pc;
        continue;
      }
    }
    // Unreachable: every opcode continues or returns.
    return Error("vm: invalid opcode");
  }
}

#undef TACOMA_VM_RAISE

}  // namespace tacoma::tacl::vm
