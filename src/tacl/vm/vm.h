// TACL bytecode dispatch loop.
//
// A Runner executes one CompiledUnit against an Interp.  It is constructed
// per evaluation (the operand stack and foreach states are evaluation-local);
// the unit itself is immutable and shared.  Observable behavior — Outcome
// codes and values, error strings, step counts, variable state — matches
// Interp's tree-walk evaluation of the same source exactly; the differential
// test suite (tests/vm_differential_test.cc) holds the two engines to that.
#ifndef TACOMA_TACL_VM_VM_H_
#define TACOMA_TACL_VM_VM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tacl/interp.h"
#include "tacl/vm/bytecode.h"

namespace tacoma::tacl::vm {

class Runner {
 public:
  Runner(Interp& interp, const CompiledUnit& unit);

  // Runs the unit to completion and returns its Outcome (the equivalent of
  // Interp::RunParsed over the unit's source).  Call once per Runner.
  Outcome Run();

 private:
  struct ForeachState {
    std::vector<std::string> values;
    size_t pos = 0;
  };

  Outcome Exec();

  // Handles a non-Ok outcome raised at `pc`.  Returns true when execution
  // resumes (a loop consumed a break/continue; *resume set, stacks unwound);
  // false when the outcome (possibly converted by a barrier) is final in
  // `final_`.
  bool Unwind(Outcome o, uint32_t pc, uint32_t* resume);

  // Resolved CommandFn for kInvoke, cached per name index; invalidated when
  // the interp's command table epoch moves (a command was removed).
  const Interp::CommandFn* LookupFn(int32_t name_index);

  Interp& interp_;
  const CompiledUnit& unit_;
  std::vector<Value> stack_;
  std::vector<ForeachState> fstates_;
  Value result_;  // The running "last command result" register.
  Outcome final_;
  std::vector<const Interp::CommandFn*> fn_cache_;
  uint64_t fn_epoch_;
  uint64_t dispatched_ = 0;
};

}  // namespace tacoma::tacl::vm

#endif  // TACOMA_TACL_VM_VM_H_
