#include "util/bytes.h"

namespace tacoma {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

SharedBytes SharedBytes::FromString(std::string_view s) {
  // Qualified: the member ToBytes() would shadow the free function here.
  return SharedBytes(::tacoma::ToBytes(s));
}

SharedBytes SharedBytes::Substr(size_t pos, size_t len) const {
  SharedBytes out;
  if (owner_ == nullptr || pos >= size_) {
    return out;
  }
  out.owner_ = owner_;
  out.offset_ = offset_ + pos;
  out.size_ = len < size_ - pos ? len : size_ - pos;
  return out;
}

std::string ToString(const SharedBytes& b) {
  return std::string(b.StringView());
}

std::string HexEncode(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

bool HexDecode(std::string_view hex, Bytes* out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

uint64_t Fnv1a64(const Bytes& b) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t byte : b) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace tacoma
