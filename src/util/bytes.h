// Byte-string helpers shared across the codebase.
//
// TACOMA folders hold "uninterpreted sequences of bits" (paper §2); Bytes is
// that representation.  SharedBytes is the same sequence behind a refcount:
// folders, briefcases, and network frames pass payload around constantly
// (every rexec hop, retry, and checkpoint), and the paper demands that all of
// that be cheap — so payload bytes are immutable-once-built and shared, not
// deep-copied (see docs/performance.md).
#ifndef TACOMA_UTIL_BYTES_H_
#define TACOMA_UTIL_BYTES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tacoma {

using Bytes = std::vector<uint8_t>;

// String <-> Bytes conversions (no encoding applied; byte-for-byte).
Bytes ToBytes(std::string_view s);
std::string ToString(const Bytes& b);

// Immutable, reference-counted byte buffer with cheap substring views.
//
// Copying a SharedBytes bumps a refcount; Substr() yields a view into the
// same allocation.  This is the copy-on-write half of "folders must be cheap
// to move": a folder element, a serialized frame in flight across N link
// hops, and a rear-guard checkpoint can all alias one buffer.  The buffer is
// never mutated after construction — "write" means building a new buffer.
//
// Trade-off (deliberate): a small view pins its whole backing allocation.
// Fine for agent frames, whose elements live about as long as the frame; use
// ToBytes() to detach when retaining a sliver of a large buffer long-term.
class SharedBytes {
 public:
  SharedBytes() = default;
  // Implicit on purpose: every legacy call site that built a Bytes and handed
  // it off keeps working, paying one move (no copy) to become shareable.
  SharedBytes(Bytes b) : owner_(std::make_shared<const Bytes>(std::move(b))) {
    size_ = owner_->size();
  }

  static SharedBytes FromString(std::string_view s);

  const uint8_t* data() const { return owner_ ? owner_->data() + offset_ : nullptr; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }

  // View of [pos, pos+len) sharing this buffer's allocation.  Clamped to the
  // buffer's bounds.
  SharedBytes Substr(size_t pos, size_t len) const;

  // Detached deep copies (the only way bytes leave the shared allocation).
  Bytes ToBytes() const { return Bytes(begin(), end()); }
  std::string_view StringView() const {
    return std::string_view(reinterpret_cast<const char*>(data()), size_);
  }

  // True when both views alias the same allocation at the same range (no
  // content comparison) — for tests asserting "this was shared, not copied".
  bool SharesBufferWith(const SharedBytes& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.StringView() == b.StringView();
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) { return b == a; }

 private:
  std::shared_ptr<const Bytes> owner_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

// Non-owning view over contiguous bytes, implicitly constructible from Bytes
// and SharedBytes.  Decode-style helpers (X::Deserialize, DecodeEcus, ...)
// take this so call sites holding either representation pass it without a
// copy.  The view must not outlive what it points at.
class BytesView {
 public:
  BytesView() = default;
  BytesView(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  BytesView(const SharedBytes& b) : data_(b.data()), size_(b.size()) {}
  BytesView(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

std::string ToString(const SharedBytes& b);

// Lowercase hex encoding / decoding.  Decode returns false on malformed input.
std::string HexEncode(const Bytes& b);
bool HexDecode(std::string_view hex, Bytes* out);

// FNV-1a 64-bit hash — used for cheap non-cryptographic fingerprints (the
// crypto library provides SHA-256 where unforgeability matters).
uint64_t Fnv1a64(const Bytes& b);
uint64_t Fnv1a64(std::string_view s);

}  // namespace tacoma

#endif  // TACOMA_UTIL_BYTES_H_
