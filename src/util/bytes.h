// Byte-string helpers shared across the codebase.
//
// TACOMA folders hold "uninterpreted sequences of bits" (paper §2); Bytes is
// that representation.
#ifndef TACOMA_UTIL_BYTES_H_
#define TACOMA_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tacoma {

using Bytes = std::vector<uint8_t>;

// String <-> Bytes conversions (no encoding applied; byte-for-byte).
Bytes ToBytes(std::string_view s);
std::string ToString(const Bytes& b);

// Lowercase hex encoding / decoding.  Decode returns false on malformed input.
std::string HexEncode(const Bytes& b);
bool HexDecode(std::string_view hex, Bytes* out);

// FNV-1a 64-bit hash — used for cheap non-cryptographic fingerprints (the
// crypto library provides SHA-256 where unforgeability matters).
uint64_t Fnv1a64(const Bytes& b);
uint64_t Fnv1a64(std::string_view s);

}  // namespace tacoma

#endif  // TACOMA_UTIL_BYTES_H_
