#include "util/json.h"

#include <cctype>
#include <cstdio>

namespace tacoma {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// Strict single-pass validator.  `pos` always points at the next unread byte.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool Check() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool Value() {
    if (depth_ > kMaxDepth || pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (Eat('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return false;
      }
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Eat('}')) {
        --depth_;
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool Array() {
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (Eat(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Eat(']')) {
        --depth_;
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool String() {
    if (!Eat('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return false;  // Raw control character inside a string.
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Digits() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Number() {
    Eat('-');
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // Leading zero must stand alone.
    } else if (!Digits()) {
      return false;
    }
    if (Eat('.') && !Digits()) {
      return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!Digits()) {
        return false;
      }
    }
    return true;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonParses(std::string_view text) { return Checker(text).Check(); }

}  // namespace tacoma
