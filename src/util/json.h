// Tiny JSON helpers shared by every export surface (metrics snapshots, trace
// dumps, sampler histories, flight records) and the tests/CI that gate them.
//
// This is deliberately NOT a JSON library: the repo's exports are built by
// hand (sorted keys, deterministic formatting) and only ever need two things
// from this header — escaping free-text strings on the way out, and a strict
// syntax check so tests and smoke benches can assert "this artifact parses"
// without a parser dependency in CI.
#ifndef TACOMA_UTIL_JSON_H_
#define TACOMA_UTIL_JSON_H_

#include <string>
#include <string_view>

namespace tacoma {

// Escapes `raw` for inclusion inside a JSON string literal (quotes not
// included): backslash, double quote, and control characters (\uXXXX).
std::string JsonEscape(std::string_view raw);

// Strict recursive-descent syntax check over a complete JSON document
// (object/array/string/number/true/false/null, UTF-8 passed through).
// Returns true iff `text` is one valid JSON value with nothing but
// whitespace around it.  Used by tests and smoke benches to gate exported
// artifacts.
bool JsonParses(std::string_view text);

}  // namespace tacoma

#endif  // TACOMA_UTIL_JSON_H_
