#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tacoma {
namespace {

// Reads TACOMA_LOG_LEVEL once (first logger touch).  Accepts the level names
// (off, error, warn, info, debug, case-insensitive) or the numeric values of
// the LogLevel enum.  Unset or unparsable means the compiled-in default: off.
LogLevel LevelFromEnv() {
  const char* raw = std::getenv("TACOMA_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') {
    return LogLevel::kOff;
  }
  std::string v(raw);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "off" || v == "0") return LogLevel::kOff;
  if (v == "error" || v == "1") return LogLevel::kError;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "info" || v == "3") return LogLevel::kInfo;
  if (v == "debug" || v == "4") return LogLevel::kDebug;
  std::fprintf(stderr, "[W] TACOMA_LOG_LEVEL=\"%s\" not recognized; using off\n",
               raw);
  return LogLevel::kOff;
}

std::atomic<LogLevel>& Level() {
  static std::atomic<LogLevel> level{LevelFromEnv()};
  return level;
}

bool TimestampsFromEnv() {
  const char* raw = std::getenv("TACOMA_LOG_TIMESTAMPS");
  return raw != nullptr && *raw != '\0' && std::strcmp(raw, "0") != 0;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { Level().store(level); }

LogLevel GetLogLevel() { return Level().load(); }

void LogLine(LogLevel level, const std::string& message) {
  if (GetLogLevel() < level) {
    return;
  }
  // Opt-in wall-clock prefix (TACOMA_LOG_TIMESTAMPS=1): milliseconds on a
  // monotonic clock since the first log line.  Off by default so tests and
  // scripts that compare logger output stay byte-stable.
  static const bool timestamps = TimestampsFromEnv();
  if (timestamps) {
    static const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::fprintf(stderr, "[%8lld.%03llds] [%s] %s\n",
                 static_cast<long long>(elapsed_ms / 1000),
                 static_cast<long long>(elapsed_ms % 1000), LevelTag(level),
                 message.c_str());
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace tacoma
