#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

namespace tacoma {
namespace {

struct ErrorHooks {
  std::mutex mu;
  std::map<int, std::function<void(const std::string&)>> hooks;
  int next_id = 1;
  bool running = false;  // Re-entrancy guard: hooks may TLOG_ERROR.
};

ErrorHooks& Hooks() {
  static ErrorHooks* hooks = new ErrorHooks();  // Leaked: outlives all users.
  return *hooks;
}

// Reads TACOMA_LOG_LEVEL once (first logger touch).  Accepts the level names
// (off, error, warn, info, debug, case-insensitive) or the numeric values of
// the LogLevel enum.  Unset or unparsable means the compiled-in default: off.
LogLevel LevelFromEnv() {
  const char* raw = std::getenv("TACOMA_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') {
    return LogLevel::kOff;
  }
  std::string v(raw);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "off" || v == "0") return LogLevel::kOff;
  if (v == "error" || v == "1") return LogLevel::kError;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "info" || v == "3") return LogLevel::kInfo;
  if (v == "debug" || v == "4") return LogLevel::kDebug;
  std::fprintf(stderr, "[W] TACOMA_LOG_LEVEL=\"%s\" not recognized; using off\n",
               raw);
  return LogLevel::kOff;
}

std::atomic<LogLevel>& Level() {
  static std::atomic<LogLevel> level{LevelFromEnv()};
  return level;
}

bool TimestampsFromEnv() {
  const char* raw = std::getenv("TACOMA_LOG_TIMESTAMPS");
  return raw != nullptr && *raw != '\0' && std::strcmp(raw, "0") != 0;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { Level().store(level); }

LogLevel GetLogLevel() { return Level().load(); }

int SetLogErrorHook(std::function<void(const std::string&)> hook) {
  ErrorHooks& h = Hooks();
  std::lock_guard<std::mutex> lock(h.mu);
  int id = h.next_id++;
  h.hooks[id] = std::move(hook);
  return id;
}

void ClearLogErrorHook(int id) {
  ErrorHooks& h = Hooks();
  std::lock_guard<std::mutex> lock(h.mu);
  h.hooks.erase(id);
}

void LogLine(LogLevel level, const std::string& message) {
  if (GetLogLevel() < level) {
    return;
  }
  // Opt-in wall-clock prefix (TACOMA_LOG_TIMESTAMPS=1): milliseconds on a
  // monotonic clock since the first log line.  Off by default so tests and
  // scripts that compare logger output stay byte-stable.
  static const bool timestamps = TimestampsFromEnv();
  if (timestamps) {
    static const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::fprintf(stderr, "[%8lld.%03llds] [%s] %s\n",
                 static_cast<long long>(elapsed_ms / 1000),
                 static_cast<long long>(elapsed_ms % 1000), LevelTag(level),
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
  }
  if (level != LogLevel::kError) {
    return;
  }
  // Fire error hooks after the line is on stderr, so a crashing hook still
  // leaves the message visible.  Copy the hooks out under the lock: a hook may
  // register or clear hooks (a kernel dump tearing down another kernel).
  ErrorHooks& h = Hooks();
  std::vector<std::function<void(const std::string&)>> fire;
  {
    std::lock_guard<std::mutex> lock(h.mu);
    if (h.running || h.hooks.empty()) {
      return;  // Reentrant error from inside a hook: logged, not re-hooked.
    }
    h.running = true;
    fire.reserve(h.hooks.size());
    for (const auto& [id, hook] : h.hooks) {
      fire.push_back(hook);
    }
  }
  for (const auto& hook : fire) {
    hook(message);
  }
  {
    std::lock_guard<std::mutex> lock(h.mu);
    h.running = false;
  }
}

}  // namespace tacoma
