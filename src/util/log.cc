#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace tacoma {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, const std::string& message) {
  if (GetLogLevel() < level) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace tacoma
