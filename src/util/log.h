// Minimal leveled logger.
//
// Logging is off by default (benchmarks must stay quiet); tests and examples
// raise the level explicitly.  The logger is a process-wide singleton writing
// to stderr; simulation code passes the sim timestamp for readable traces.
//
// Environment overrides (read once, on first logger use):
//   TACOMA_LOG_LEVEL       initial threshold: off|error|warn|info|debug (or
//                          0-4).  SetLogLevel still wins if called later.
//   TACOMA_LOG_TIMESTAMPS  when set (and not "0"), prefixes each line with
//                          seconds.milliseconds on a monotonic clock since
//                          the first line.  Default output is unchanged.
#ifndef TACOMA_UTIL_LOG_H_
#define TACOMA_UTIL_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace tacoma {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

// Sets / reads the global log threshold.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one log line (already filtered by the macros below).
void LogLine(LogLevel level, const std::string& message);

// Registers a callback invoked (after the line is written) for every
// error-level message that passes the threshold — with the default "off"
// level nothing fires.  Returns a registration id for ClearLogErrorHook, so
// several kernels can each hang a flight recorder off the process-wide logger
// and detach only their own on destruction.  Hooks run synchronously on the
// logging thread and must tolerate reentrant TLOG_ERROR (the logger does not
// recurse into hooks while one is already running).
int SetLogErrorHook(std::function<void(const std::string&)> hook);
void ClearLogErrorHook(int id);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TACOMA_LOG(level)                              \
  if (::tacoma::GetLogLevel() < ::tacoma::LogLevel::level) { \
  } else                                               \
    ::tacoma::internal::LogMessage(::tacoma::LogLevel::level)

#define TLOG_ERROR TACOMA_LOG(kError)
#define TLOG_WARN TACOMA_LOG(kWarn)
#define TLOG_INFO TACOMA_LOG(kInfo)
#define TLOG_DEBUG TACOMA_LOG(kDebug)

}  // namespace tacoma

#endif  // TACOMA_UTIL_LOG_H_
