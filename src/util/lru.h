// A small string-keyed LRU map.
//
// Used for the interpreter's parse and compiled-unit caches: agent code is a
// small working set of hot scripts (loop bodies, proc bodies), so a bounded
// recency list with wholesale eviction of the coldest entry keeps memory flat
// over a long-lived interpreter without the stampedes a clear-all policy
// causes (the previous parse cache dropped everything at capacity, re-parsing
// the hot set from scratch).
#ifndef TACOMA_UTIL_LRU_H_
#define TACOMA_UTIL_LRU_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

namespace tacoma {

template <typename V>
class LruMap {
 public:
  explicit LruMap(size_t capacity) : capacity_(capacity) {}

  // Returns a pointer to the cached value (touching the entry), or nullptr.
  // The pointer is valid until the next Put/Clear.
  V* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  // Inserts or replaces; evicts the least-recently-used entry when over
  // capacity.
  void Put(std::string key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(std::move(key), order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  size_t size() const { return index_.size(); }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, V>> order_;  // Front = most recent.
  std::map<std::string, typename std::list<std::pair<std::string, V>>::iterator>
      index_;
  uint64_t evictions_ = 0;
};

}  // namespace tacoma

#endif  // TACOMA_UTIL_LRU_H_
