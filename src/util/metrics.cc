#include "util/metrics.h"

#include <cstdio>

namespace tacoma {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(uint64_t v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) {
    ++i;
  }
  ++counts_[i];
  ++count_;
  sum_ += v;
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0;
  }
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::ApproxPercentile(double p) const {
  if (count_ == 0 || bounds_.empty()) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > rank) {
      return bounds_[std::min(i, bounds_.size() - 1)];
    }
  }
  return bounds_.back();
}

std::vector<uint64_t> SimTimeBucketsUs() {
  return {100,        300,        1'000,      3'000,     10'000,    30'000,
          100'000,    300'000,    1'000'000,  3'000'000, 10'000'000};
}

Counter& MetricsRegistry::AddCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::AddGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::AddHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

void MetricsRegistry::AddProbe(const std::string& name, Probe probe) {
  probes_[name] = std::move(probe);
}

bool MetricsRegistry::Has(const std::string& name) const {
  return counters_.contains(name) || gauges_.contains(name) ||
         histograms_.contains(name) || probes_.contains(name);
}

std::optional<int64_t> MetricsRegistry::Value(const std::string& name) const {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return static_cast<int64_t>(it->second->value());
  }
  if (auto it = probes_.find(name); it != probes_.end()) {
    return static_cast<int64_t>(it->second());
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second->value();
  }
  return std::nullopt;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::TextSnapshot() const {
  // Scalars (counters, probes, gauges) merge into one sorted namespace;
  // histograms render their derived statistics.
  std::map<std::string, std::string> lines;
  for (const auto& [name, counter] : counters_) {
    lines[name] = std::to_string(counter->value());
  }
  for (const auto& [name, probe] : probes_) {
    lines[name] = std::to_string(probe());
  }
  for (const auto& [name, gauge] : gauges_) {
    lines[name] = std::to_string(gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    lines[name] = "count=" + std::to_string(histogram->count()) +
                  " sum=" + std::to_string(histogram->sum()) +
                  " mean=" + FormatDouble(histogram->Mean()) +
                  " p50<=" + std::to_string(histogram->ApproxPercentile(50)) +
                  " p99<=" + std::to_string(histogram->ApproxPercentile(99));
  }
  std::string out;
  for (const auto& [name, value] : lines) {
    out += name;
    out += ' ';
    out += value;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  // Metric names follow "<subsystem>.<field>" and contain no characters that
  // need JSON escaping.
  std::string out = "{\"counters\":{";
  std::map<std::string, uint64_t> counter_values;
  for (const auto& [name, counter] : counters_) {
    counter_values[name] = counter->value();
  }
  for (const auto& [name, probe] : probes_) {
    counter_values[name] = probe();
  }
  bool first = true;
  for (const auto& [name, value] : counter_values) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + name + "\":" + std::to_string(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(histogram->count()) +
           ",\"sum\":" + std::to_string(histogram->sum()) +
           ",\"p50\":" + std::to_string(histogram->ApproxPercentile(50)) +
           ",\"p90\":" + std::to_string(histogram->ApproxPercentile(90)) +
           ",\"p99\":" + std::to_string(histogram->ApproxPercentile(99)) +
           ",\"buckets\":[";
    const auto& bounds = histogram->bounds();
    const auto& counts = histogram->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += "{\"le\":";
      out += i < bounds.size() ? std::to_string(bounds[i]) : "\"inf\"";
      out += ",\"count\":" + std::to_string(counts[i]) + '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace tacoma
