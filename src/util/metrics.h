// Unified metrics registry.
//
// Every subsystem used to keep its own ad-hoc `struct Stats` that nothing
// aggregated; the registry is the one place they all report to.  Three
// instrument kinds:
//   - Counter    monotonically increasing, owned by the registry;
//   - Gauge      a settable point-in-time value;
//   - Histogram  fixed-bucket distribution (sim-time latencies, sizes).
// Plus pull-style "probes": a named callback read at snapshot time, which is
// how the existing Stats structs join the registry without changing their
// owners — the kernel, places, and services register lambdas over their own
// fields.  A probe's target must outlive every snapshot call.
//
// Snapshots (text and JSON) iterate sorted names and contain only values
// derived from simulated time and seeded randomness, so for a fixed seed two
// runs produce byte-identical snapshots.
//
// Naming convention: "<subsystem>.<field>" with lowercase dotted prefixes —
// kernel.transfers_sent, net.bytes_on_wire, place.meets, mint.issued,
// ft.relaunches, chaos.crashes (see docs/observability.md).
#ifndef TACOMA_UTIL_METRICS_H_
#define TACOMA_UTIL_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tacoma {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Fixed-bucket histogram.  Bucket i counts observations v <= bounds[i]
// (cumulative-exclusive: the first bound that fits); one implicit overflow
// bucket counts everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  double Mean() const;
  // Upper bound of the bucket holding the p-th percentile (p in [0, 100]);
  // returns the last finite bound for observations in the overflow bucket.
  uint64_t ApproxPercentile(double p) const;

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

// Default bucket bounds for sim-time histograms, in microseconds: a 1-3-10
// ladder from 100us to 10s.
std::vector<uint64_t> SimTimeBucketsUs();

class MetricsRegistry {
 public:
  using Probe = std::function<uint64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returned references stay valid for the registry's lifetime.  Re-adding a
  // name returns the existing instrument (histogram bounds are kept from the
  // first registration).
  Counter& AddCounter(const std::string& name);
  Gauge& AddGauge(const std::string& name);
  Histogram& AddHistogram(const std::string& name, std::vector<uint64_t> bounds);
  // Registers (or replaces) a pull-style counter read at snapshot time.
  void AddProbe(const std::string& name, Probe probe);

  bool Has(const std::string& name) const;
  // Point-in-time value of a scalar metric (counter, probe, or gauge).
  std::optional<int64_t> Value(const std::string& name) const;
  // The named histogram, or nullptr.  Used by the sampler to read tracked
  // percentiles without owning the instrument.
  const Histogram* FindHistogram(const std::string& name) const;

  // "name value" per line, names sorted; histograms render count/sum/mean and
  // approximate p50/p99.
  std::string TextSnapshot() const;
  // {"counters":{...},"gauges":{...},"histograms":{...}} with sorted keys;
  // probes appear under "counters".  Each histogram carries count/sum, the
  // precomputed approximate p50/p90/p99, and its buckets with explicit "le"
  // bounds, so downstream consumers (sampler, benches, CI trajectories)
  // never recompute percentiles from raw buckets.
  std::string JsonSnapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, Probe> probes_;
};

// Exact-sample statistics shared by the bench harness and tests (the
// histogram's bucket approximations trade precision for fixed memory; these
// keep the samples).  Percentile is nearest-rank over a copy, p in [0, 100].
template <typename T>
T PercentileOf(std::vector<T> values, double p) {
  if (values.empty()) {
    return T{};
  }
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(rank + 0.5)];
}

template <typename T>
double MeanOf(const std::vector<T>& values) {
  if (values.empty()) {
    return 0;
  }
  double total = 0;
  for (const T& v : values) {
    total += static_cast<double>(v);
  }
  return total / static_cast<double>(values.size());
}

}  // namespace tacoma

#endif  // TACOMA_UTIL_METRICS_H_
