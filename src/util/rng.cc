#include "util/rng.h"

#include <cmath>

namespace tacoma {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Gaussian(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace tacoma
