// Deterministic pseudo-random number generation.
//
// Everything in TACOMA that needs randomness (workload generators, failure
// injection, electronic-cash serial numbers via the crypto DRBG) derives from
// explicitly seeded generators so experiments are bit-reproducible.
#ifndef TACOMA_UTIL_RNG_H_
#define TACOMA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tacoma {

// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256** — fast, high-quality, deterministic general-purpose PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller.
  double Gaussian(double mean, double stddev);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator (e.g. one per simulated site).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace tacoma

#endif  // TACOMA_UTIL_RNG_H_
