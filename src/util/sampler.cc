#include "util/sampler.h"

#include <algorithm>

namespace tacoma {

namespace {

// Splits "kernel.transfer_delivery_us.p99" into histogram name + percentile.
// Returns false when `name` has no ".pNN" suffix.
bool SplitPercentile(const std::string& name, std::string* base, double* pct) {
  size_t dot = name.rfind(".p");
  if (dot == std::string::npos || dot + 2 >= name.size()) {
    return false;
  }
  const std::string digits = name.substr(dot + 2);
  if (digits.empty() || digits.size() > 2 ||
      !std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    return false;
  }
  *base = name.substr(0, dot);
  *pct = std::stod(digits);
  return true;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry* registry,
                                     SamplerOptions options)
    : registry_(registry), options_(options) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
}

void TimeSeriesSampler::Track(const std::string& name) {
  series_.try_emplace(name);
}

int64_t TimeSeriesSampler::Read(const std::string& name) const {
  if (auto value = registry_->Value(name)) {
    return *value;
  }
  std::string base;
  double pct = 0;
  if (SplitPercentile(name, &base, &pct)) {
    if (const Histogram* h = registry_->FindHistogram(base)) {
      return static_cast<int64_t>(h->ApproxPercentile(pct));
    }
  }
  return 0;  // Not registered (yet): the series reads as flat zero.
}

void TimeSeriesSampler::Sample(uint64_t now_us) {
  ++samples_;
  for (auto& [name, series] : series_) {
    series.points.push_back(Point{now_us, Read(name)});
    while (series.points.size() > options_.capacity) {
      series.points.pop_front();
      ++series.dropped;
    }
  }
}

uint64_t TimeSeriesSampler::points_dropped() const {
  uint64_t total = 0;
  for (const auto& [name, series] : series_) {
    total += series.dropped;
  }
  return total;
}

std::string TimeSeriesSampler::JsonHistory(size_t tail) const {
  std::string out = "{\"capacity\":" + std::to_string(options_.capacity) +
                    ",\"samples\":" + std::to_string(samples_) + ",\"series\":[";
  bool first = true;
  for (const auto& [name, series] : series_) {
    if (!first) {
      out += ',';
    }
    first = false;
    // Metric names follow "<subsystem>.<field>" and need no escaping.
    out += "{\"name\":\"" + name +
           "\",\"dropped\":" + std::to_string(series.dropped) + ",\"points\":[";
    size_t start = 0;
    if (tail > 0 && series.points.size() > tail) {
      start = series.points.size() - tail;
    }
    for (size_t i = start; i < series.points.size(); ++i) {
      if (i > start) {
        out += ',';
      }
      out += '[' + std::to_string(series.points[i].ts_us) + ',' +
             std::to_string(series.points[i].value) + ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace tacoma
