// Time-series sampler over a MetricsRegistry.
//
// Snapshot metrics answer "what is the count now"; the ROADMAP's adaptive
// planner and shard-balance work need "how did it get there".  The sampler
// records selected scalar metrics (counters, probes, gauges) — and histogram
// percentiles via the "<histogram>.pNN" suffix form — into one bounded ring
// buffer per series.  Timestamps are simulator microseconds supplied by the
// caller, so for a fixed seed two runs produce byte-identical histories; the
// kernel drives the cadence (Kernel::ScheduleSampling pre-queues seeded
// deterministic ticks, SampleNow takes a manual reading).
#ifndef TACOMA_UTIL_SAMPLER_H_
#define TACOMA_UTIL_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace tacoma {

struct SamplerOptions {
  // Ring entries retained per series; the oldest point is evicted (and
  // counted) past this.
  size_t capacity = 240;
};

class TimeSeriesSampler {
 public:
  struct Point {
    uint64_t ts_us = 0;
    int64_t value = 0;
  };

  struct Series {
    std::deque<Point> points;
    uint64_t dropped = 0;  // Points evicted from the ring.
  };

  // The registry must outlive the sampler.
  TimeSeriesSampler(const MetricsRegistry* registry, SamplerOptions options = {});

  // Adds a series.  `name` is either a scalar metric name or
  // "<histogram>.p50" / ".p90" / ".p99" for a tracked percentile.  Unknown
  // names are tracked anyway and sample as 0 until the metric appears —
  // services register their metrics after the kernel builds the sampler.
  void Track(const std::string& name);
  bool Tracks(const std::string& name) const { return series_.contains(name); }

  // Takes one reading of every tracked series at time `now_us`.
  void Sample(uint64_t now_us);

  const std::map<std::string, Series>& series() const { return series_; }
  uint64_t samples_taken() const { return samples_; }
  uint64_t points_dropped() const;

  // Full history: {"capacity":N,"samples":N,"series":[{"name":...,
  // "dropped":N,"points":[[ts,v],...]},...]} — series sorted by name,
  // deterministic for a fixed seed.  `tail` bounds points per series
  // (0 = all retained points); the flight recorder dumps tails.
  std::string JsonHistory(size_t tail = 0) const;

 private:
  int64_t Read(const std::string& name) const;

  const MetricsRegistry* registry_;
  SamplerOptions options_;
  std::map<std::string, Series> series_;
  uint64_t samples_ = 0;
};

}  // namespace tacoma

#endif  // TACOMA_UTIL_SAMPLER_H_
