// Status / Result<T> error model used across all TACOMA libraries.
//
// The library does not throw exceptions across API boundaries; every fallible
// operation returns a Status or a Result<T>.  Codes follow the familiar
// canonical-status vocabulary so call sites read naturally.
#ifndef TACOMA_UTIL_STATUS_H_
#define TACOMA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tacoma {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kPermissionDenied,
  kResourceExhausted,
  kUnavailable,
  kAborted,
  kOutOfRange,
  kDataLoss,
  kDeadlineExceeded,
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code, e.g. "NOT_FOUND".
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional diagnostic message.  OK statuses carry
// no message and are cheap to copy.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such agent".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status PermissionDeniedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

// A Result<T> holds either a value or a non-OK status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit, so `return value;` and `return SomeError(...);`
  // both work at call sites.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors up the call stack:  TACOMA_RETURN_IF_ERROR(DoThing());
#define TACOMA_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::tacoma::Status tacoma_status__ = (expr);  \
    if (!tacoma_status__.ok()) {                \
      return tacoma_status__;                   \
    }                                           \
  } while (false)

// Assigns the value of a Result<T> or propagates its error:
//   TACOMA_ASSIGN_OR_RETURN(auto v, ComputeThing());
#define TACOMA_ASSIGN_OR_RETURN(lhs, expr)                       \
  TACOMA_ASSIGN_OR_RETURN_IMPL_(                                 \
      TACOMA_STATUS_CONCAT_(result__, __LINE__), lhs, expr)
#define TACOMA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()
#define TACOMA_STATUS_CONCAT_(a, b) TACOMA_STATUS_CONCAT_IMPL_(a, b)
#define TACOMA_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace tacoma

#endif  // TACOMA_UTIL_STATUS_H_
