// Declarative admission rules, the digest-keyed admission cache, and the
// runtime effect monitor (core/admission.h, Place::CheckAdmission).
#include "core/admission.h"

#include <gtest/gtest.h>

#include "core/kernel.h"

namespace tacoma {
namespace {

using tacl::kUnboundedEffect;

// --- Policy-table parsing ---------------------------------------------------------

TEST(AdmissionRulesTest, ParseFullTable) {
  auto rules = AdmissionRules::Parse(
      "# site policy\n"
      "mode enforce\n"
      "deny errors\n"
      "deny slug exfiltration-risk unbounded-spend\n"
      "deny dynamic-targets\n"
      "max hops 3\n"
      "max clones 0\n"
      "max spend unlimited\n"
      "allow host alpha beta\n"
      "deny host darkside\n"
      "deny cabinet ledger\n"
      "deny folder SECRET_KEYS\n");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->mode, AdmissionRules::Mode::kEnforce);
  EXPECT_TRUE(rules->deny_errors);
  EXPECT_TRUE(rules->deny_slugs.contains("exfiltration-risk"));
  EXPECT_TRUE(rules->deny_slugs.contains("unbounded-spend"));
  EXPECT_TRUE(rules->deny_dynamic_targets);
  EXPECT_EQ(rules->max_hops, 3);
  EXPECT_EQ(rules->max_clones, 0);
  EXPECT_EQ(rules->max_spend, -1);
  EXPECT_TRUE(rules->allow_hosts.contains("alpha"));
  EXPECT_TRUE(rules->deny_hosts.contains("darkside"));
  EXPECT_TRUE(rules->deny_cabinets.contains("ledger"));
  EXPECT_TRUE(rules->deny_folders.contains("SECRET_KEYS"));
}

TEST(AdmissionRulesTest, ParseErrorsNameTheLine) {
  auto rules = AdmissionRules::Parse("mode warn\nfrob everything\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_NE(rules.status().message().find("line 2"), std::string::npos)
      << rules.status().ToString();

  EXPECT_FALSE(AdmissionRules::Parse("mode sideways\n").ok());
  EXPECT_FALSE(AdmissionRules::Parse("max hops many\n").ok());
}

// --- Rule evaluation --------------------------------------------------------------

AdmissionSummary SummaryFor(const std::string& script) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  return AdmissionSummary::FromReport(kernel.place(site)->AnalyzeAgentCode(script));
}

TEST(AdmissionRulesTest, ModeOffReportsNothing) {
  AdmissionRules rules;
  rules.mode = AdmissionRules::Mode::kOff;
  AdmissionSummary bad = SummaryFor("frobnicate everything\n");
  EXPECT_GT(bad.errors, 0u);
  EXPECT_TRUE(rules.Violations(bad).empty());
}

TEST(AdmissionRulesTest, DenyErrorsCarriesFirstError) {
  AdmissionRules rules;  // Default: warn, deny errors.
  auto violations = rules.Violations(SummaryFor("frobnicate\n"));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("frobnicate"), std::string::npos);
}

TEST(AdmissionRulesTest, DenySlugMatchesNotes) {
  AdmissionRules rules;
  rules.deny_slugs.insert("exfiltration-risk");
  AdmissionSummary risky =
      SummaryFor("set d [bc_get SECRET_ROUTE]\nmove $d\n");
  EXPECT_TRUE(risky.slugs.contains("exfiltration-risk"));
  auto violations = rules.Violations(risky);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("exfiltration-risk"), std::string::npos);
  EXPECT_TRUE(rules.Violations(SummaryFor("bc_put RESULT ok\n")).empty());
}

TEST(AdmissionRulesTest, CeilingsCompareManifestBounds) {
  AdmissionRules rules;
  rules.max_hops = 1;
  AdmissionSummary two_hops =
      SummaryFor("if {1} { move a }\nif {1} { jump b }\n");
  EXPECT_FALSE(rules.Violations(two_hops).empty());

  // ⊤ violates any finite ceiling.
  AdmissionSummary unbounded = SummaryFor("while {1} { if {1} { move a } }\n");
  EXPECT_EQ(unbounded.manifest.hop_bound, kUnboundedEffect);
  EXPECT_FALSE(rules.Violations(unbounded).empty());

  // No ceiling admits ⊤.
  rules.max_hops = -1;
  EXPECT_TRUE(rules.Violations(unbounded).empty());
}

TEST(AdmissionRulesTest, HostListsAreChecked) {
  AdmissionRules rules;
  rules.allow_hosts = {"alpha", "beta"};
  EXPECT_TRUE(rules.Violations(SummaryFor("move alpha\n")).empty());
  EXPECT_FALSE(rules.Violations(SummaryFor("move gamma\n")).empty());

  AdmissionRules deny;
  deny.deny_hosts = {"darkside"};
  EXPECT_FALSE(deny.Violations(SummaryFor("jump darkside\n")).empty());
  EXPECT_TRUE(deny.Violations(SummaryFor("jump alpha\n")).empty());
}

TEST(AdmissionRulesTest, CabinetAndFolderDenies) {
  AdmissionRules rules;
  rules.deny_cabinets = {"ledger"};
  rules.deny_folders = {"SECRET_KEYS"};
  EXPECT_FALSE(
      rules.Violations(SummaryFor("cab_append ledger AUDITS x\n")).empty());
  EXPECT_FALSE(rules.Violations(SummaryFor("bc_get SECRET_KEYS\n")).empty());
  EXPECT_TRUE(rules.Violations(SummaryFor("bc_get QUERY\n")).empty());
}

TEST(AdmissionRulesTest, DenyDynamicTargets) {
  AdmissionRules rules;
  rules.deny_dynamic_targets = true;
  EXPECT_FALSE(
      rules.Violations(SummaryFor("set n [bc_pop I]\njump $n\n")).empty());
  EXPECT_TRUE(rules.Violations(SummaryFor("jump alpha\n")).empty());
}

// --- Digest-keyed admission cache -------------------------------------------------

TEST(AdmissionCacheTest, SharedAcrossPlaces) {
  Kernel kernel;
  SiteId a = kernel.AddSite("a");
  SiteId b = kernel.AddSite("b");
  const std::string code = "cab_set out RESULT ok\n";
  ASSERT_TRUE(kernel.LaunchAgent(a, code).ok());
  EXPECT_EQ(kernel.admission_cache_stats().misses, 1u);
  // Same digest, same command surface: the analysis is reused at site b.
  ASSERT_TRUE(kernel.LaunchAgent(b, code).ok());
  EXPECT_EQ(kernel.admission_cache_stats().misses, 1u);
  EXPECT_GE(kernel.admission_cache_stats().hits, 1u);
}

TEST(AdmissionCacheTest, SurvivesRestartSite) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  const std::string code = "cab_set out RESULT ok\n";
  ASSERT_TRUE(kernel.LaunchAgent(site, code).ok());
  uint64_t misses = kernel.admission_cache_stats().misses;
  kernel.RestartSite(site);
  ASSERT_TRUE(kernel.LaunchAgent(site, code).ok());
  // The new incarnation has the same command surface; no re-analysis.
  EXPECT_EQ(kernel.admission_cache_stats().misses, misses);
  EXPECT_GE(kernel.admission_cache_stats().hits, 1u);
}

TEST(AdmissionCacheTest, BinderInvalidatesFingerprint) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  const std::string code = "cab_set out RESULT ok\n";
  ASSERT_TRUE(kernel.LaunchAgent(site, code).ok());
  EXPECT_EQ(kernel.admission_cache_stats().misses, 1u);
  // A new binder changes the command surface, so the old summary no longer
  // describes this place's analysis environment: fresh key, fresh analysis.
  kernel.place(site)->AddBinder([](tacl::Interp* interp, Activation*) {
    interp->Register("wx_scan",
                     [](tacl::Interp&, const std::vector<std::string>&) {
                       return tacl::Ok("");
                     });
  });
  ASSERT_TRUE(kernel.LaunchAgent(site, code).ok());
  EXPECT_EQ(kernel.admission_cache_stats().misses, 2u);
}

TEST(AdmissionCacheTest, CapacityBoundsEntries) {
  KernelOptions options;
  options.admission_cache_capacity = 1;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");
  ASSERT_TRUE(kernel.LaunchAgent(site, "cab_set out A 1\n").ok());
  ASSERT_TRUE(kernel.LaunchAgent(site, "cab_set out B 2\n").ok());
  ASSERT_TRUE(kernel.LaunchAgent(site, "cab_set out A 1\n").ok());
  EXPECT_EQ(kernel.admission_cache_stats().misses, 3u);
  EXPECT_GE(kernel.admission_cache_stats().evictions, 2u);
}

TEST(AdmissionCacheTest, CheckAdmissionReturnsSharedSummary) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  auto first = kernel.place(site)->CheckAdmission("bc_put RESULT ok\n");
  auto second = kernel.place(site)->CheckAdmission("bc_put RESULT ok\n");
  ASSERT_NE(first.summary, nullptr);
  EXPECT_EQ(first.summary.get(), second.summary.get());
  EXPECT_TRUE(first.violations.empty());
}

// --- Enforcement through the rules table ------------------------------------------

TEST(AdmissionEnforceTest, CeilingRejectsAtActivation) {
  KernelOptions options;
  auto rules = AdmissionRules::Parse("mode enforce\nmax hops 0\n");
  ASSERT_TRUE(rules.ok());
  options.admission_rules = *rules;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");
  Status s = kernel.LaunchAgent(site, "jump elsewhere\n");
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("admission"), std::string::npos);
  EXPECT_EQ(kernel.place(site)->stats().rejected_agents, 1u);

  // Hop-free agents still run.
  EXPECT_TRUE(kernel.LaunchAgent(site, "cab_set out RESULT ok\n").ok());
}

TEST(AdmissionEnforceTest, WarnModeCountsButAdmits) {
  Kernel kernel;  // Default rules: warn, deny errors.
  SiteId site = kernel.AddSite("s");
  ASSERT_TRUE(
      kernel.LaunchAgent(site, "if {0} { frobnicate }\ncab_set out R ran\n").ok());
  const auto& stats = kernel.place(site)->stats();
  EXPECT_GE(stats.admission_checks, 1u);
  EXPECT_GE(stats.admission_policy_violations, 1u);
  EXPECT_EQ(stats.rejected_agents, 0u);
  EXPECT_EQ(*kernel.place(site)->Cabinet("out").GetSingleString("R"), "ran");
}

// --- Runtime effect monitor -------------------------------------------------------

TEST(EffectMonitorTest, StaticScriptStaysInsideManifest) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  ASSERT_TRUE(kernel
                  .LaunchAgent(site,
                               "bc_put RESULT 1\n"
                               "bc_get RESULT\n"
                               "cab_append ledger AUDITS x\n")
                  .ok());
  const auto& stats = kernel.place(site)->stats();
  EXPECT_GE(stats.admission_checks, 1u);
  EXPECT_EQ(stats.manifest_violations, 0u);
  EXPECT_EQ(stats.manifest_violations_static, 0u);
}

TEST(EffectMonitorTest, ComputedTargetDriftIsCountedButNotStatic) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  kernel.place(site)->RegisterAgent(
      "echo", [](Place&, Briefcase&) { return OkStatus(); });
  // The script's static manifest cannot name "echo": the meet target is
  // computed (dynamic_targets=true), so the runtime record drifts from the
  // manifest — counted, but not an analyzer soundness bug.
  Briefcase bc;
  bc.SetString("WHO", "echo");
  ASSERT_TRUE(
      kernel.LaunchAgent(site, "set who [bc_get WHO]\nmeet $who\n", bc).ok());
  const auto& stats = kernel.place(site)->stats();
  EXPECT_GE(stats.manifest_violations, 1u);
  EXPECT_EQ(stats.manifest_violations_static, 0u);
}

TEST(EffectMonitorTest, MonitorOffRecordsNothing) {
  KernelOptions options;
  options.effect_monitor = false;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");
  kernel.place(site)->RegisterAgent(
      "echo", [](Place&, Briefcase&) { return OkStatus(); });
  Briefcase bc;
  bc.SetString("WHO", "echo");
  ASSERT_TRUE(
      kernel.LaunchAgent(site, "set who [bc_get WHO]\nmeet $who\n", bc).ok());
  EXPECT_EQ(kernel.place(site)->stats().manifest_violations, 0u);
}

// --- pay / withdraw ---------------------------------------------------------------

TEST(ElectronicCurrencyTest, PayDebitsWalletAndLogsSpend) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  Briefcase bc;
  bc.SetString("WALLET", "10");
  ASSERT_TRUE(kernel.place(site)
                  ->RunAgentCode("pay 4 vendor\n", bc, "buyer")
                  .ok());
  EXPECT_EQ(bc.GetString("WALLET").value_or(""), "6");
  auto spent = bc.folder("SPENT").AsStrings();
  ASSERT_EQ(spent.size(), 1u);
  EXPECT_EQ(spent[0], "vendor 4");
}

TEST(ElectronicCurrencyTest, InsufficientFundsFailTheActivation) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  Briefcase bc;
  bc.SetString("WALLET", "3");
  EXPECT_FALSE(kernel.place(site)
                   ->RunAgentCode("pay 5 vendor\n", bc, "buyer")
                   .ok());
  EXPECT_EQ(bc.GetString("WALLET").value_or(""), "3");  // Nothing debited.
}

TEST(ElectronicCurrencyTest, WithdrawReturnsTheAmount) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  Briefcase bc;
  bc.SetString("WALLET", "10");
  ASSERT_TRUE(kernel.place(site)
                  ->RunAgentCode("bc_put GOT [withdraw 2]\n", bc, "buyer")
                  .ok());
  EXPECT_EQ(bc.GetString("WALLET").value_or(""), "8");
  EXPECT_EQ(bc.GetString("GOT").value_or(""), "2");
}

}  // namespace
}  // namespace tacoma
