#include "crypto/authority.h"

#include <gtest/gtest.h>

namespace tacoma {
namespace {

TEST(AuthorityTest, SignVerifyRoundTrip) {
  SignatureAuthority auth(1);
  Bytes msg = ToBytes("pay alice 100");
  Signature sig = auth.Sign("bob", msg);
  EXPECT_EQ(sig.principal, "bob");
  EXPECT_TRUE(auth.Verify(sig, msg));
}

TEST(AuthorityTest, TamperedMessageFails) {
  SignatureAuthority auth(1);
  Bytes msg = ToBytes("pay alice 100");
  Signature sig = auth.Sign("bob", msg);
  EXPECT_FALSE(auth.Verify(sig, ToBytes("pay alice 999")));
}

TEST(AuthorityTest, TamperedTagFails) {
  SignatureAuthority auth(1);
  Bytes msg = ToBytes("payload");
  Signature sig = auth.Sign("bob", msg);
  sig.tag[0] ^= 0x01;
  EXPECT_FALSE(auth.Verify(sig, msg));
}

TEST(AuthorityTest, WrongPrincipalFails) {
  SignatureAuthority auth(1);
  Bytes msg = ToBytes("payload");
  Signature sig = auth.Sign("bob", msg);
  sig.principal = "mallory";
  auth.Enroll("mallory");
  EXPECT_FALSE(auth.Verify(sig, msg));
}

TEST(AuthorityTest, UnknownPrincipalFailsVerification) {
  SignatureAuthority auth(1);
  Signature sig;
  sig.principal = "ghost";
  EXPECT_FALSE(auth.Verify(sig, ToBytes("x")));
}

TEST(AuthorityTest, EnrollIsIdempotent) {
  SignatureAuthority auth(1);
  Bytes msg = ToBytes("m");
  auth.Enroll("carol");
  Signature before = auth.Sign("carol", msg);
  auth.Enroll("carol");  // Must not rotate the key.
  EXPECT_TRUE(auth.Verify(before, msg));
  EXPECT_EQ(auth.principal_count(), 1u);
}

TEST(AuthorityTest, SignAutoEnrolls) {
  SignatureAuthority auth(1);
  EXPECT_FALSE(auth.IsEnrolled("dave"));
  (void)auth.Sign("dave", ToBytes("m"));
  EXPECT_TRUE(auth.IsEnrolled("dave"));
}

TEST(AuthorityTest, DistinctPrincipalsDistinctTags) {
  SignatureAuthority auth(1);
  Bytes msg = ToBytes("same message");
  Signature a = auth.Sign("alice", msg);
  Signature b = auth.Sign("bob", msg);
  EXPECT_NE(DigestToHex(a.tag), DigestToHex(b.tag));
}

TEST(AuthorityTest, SeparateAuthoritiesAreSeparateTrustDomains) {
  SignatureAuthority auth1(1);
  SignatureAuthority auth2(2);
  Bytes msg = ToBytes("m");
  Signature sig = auth1.Sign("alice", msg);
  auth2.Enroll("alice");
  EXPECT_FALSE(auth2.Verify(sig, msg));
}

TEST(SignatureTest, SerializeRoundTrip) {
  SignatureAuthority auth(7);
  Signature sig = auth.Sign("eve", ToBytes("msg"));
  auto restored = Signature::Deserialize(sig.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->principal, "eve");
  EXPECT_EQ(restored->tag, sig.tag);
  EXPECT_TRUE(auth.Verify(*restored, ToBytes("msg")));
}

TEST(SignatureTest, DeserializeRejectsTruncation) {
  SignatureAuthority auth(7);
  Signature sig = auth.Sign("eve", ToBytes("msg"));
  Bytes wire = sig.Serialize();
  wire.pop_back();
  EXPECT_FALSE(Signature::Deserialize(wire).ok());
}

}  // namespace
}  // namespace tacoma
