// Tests for the TACL agent primitives (bc_*, cab_*, meet, move/jump/clone/send).
#include <gtest/gtest.h>

#include "core/kernel.h"

namespace tacoma {
namespace {

class BindingsTest : public ::testing::Test {
 protected:
  BindingsTest() {
    a_ = kernel_.AddSite("alpha");
    b_ = kernel_.AddSite("beta");
    kernel_.net().AddLink(a_, b_);
  }

  // Launches code at alpha with an optional pre-seeded briefcase and returns
  // the launch status.
  Status Launch(const std::string& code, Briefcase bc = Briefcase()) {
    return kernel_.LaunchAgent(a_, code, std::move(bc));
  }

  Kernel kernel_;
  SiteId a_ = 0, b_ = 0;
};

TEST_F(BindingsTest, BriefcaseQueueOps) {
  ASSERT_TRUE(Launch("bc_put Q 1; bc_put Q 2; bc_push Q 0;"
                     "cab_set t LIST [bc_list Q];"
                     "cab_set t LEN [bc_len Q];"
                     "cab_set t POP [bc_pop Q];"
                     "cab_set t POPB [bc_pop_back Q]")
                  .ok());
  FileCabinet& cab = kernel_.place(a_)->Cabinet("t");
  EXPECT_EQ(*cab.GetSingleString("LIST"), "0 1 2");
  EXPECT_EQ(*cab.GetSingleString("LEN"), "3");
  EXPECT_EQ(*cab.GetSingleString("POP"), "0");
  EXPECT_EQ(*cab.GetSingleString("POPB"), "2");
}

TEST_F(BindingsTest, BriefcaseScalarOps) {
  ASSERT_TRUE(Launch("bc_set K v1; bc_set K v2;"
                     "cab_set t GET [bc_get K];"
                     "cab_set t PEEK [bc_peek K];"
                     "cab_set t HAS [bc_has K];"
                     "bc_clear K;"
                     "cab_set t HAS2 [bc_has K]")
                  .ok());
  FileCabinet& cab = kernel_.place(a_)->Cabinet("t");
  EXPECT_EQ(*cab.GetSingleString("GET"), "v2");
  EXPECT_EQ(*cab.GetSingleString("PEEK"), "v2");
  EXPECT_EQ(*cab.GetSingleString("HAS"), "1");
  EXPECT_EQ(*cab.GetSingleString("HAS2"), "0");
}

TEST_F(BindingsTest, BcFoldersLists) {
  Briefcase bc;
  bc.SetString("B", "1");
  bc.SetString("A", "1");
  ASSERT_TRUE(Launch("cab_set t F [bc_folders]", bc).ok());
  // CODE is consumed before the agent runs; A and B remain, plus the
  // kernel-stamped TRACE folder carrying the journey's trace context.
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("F"), "A B TRACE");
}

TEST_F(BindingsTest, PopEmptyFolderErrors) {
  EXPECT_FALSE(Launch("bc_pop NOPE").ok());
  EXPECT_FALSE(Launch("bc_get NOPE").ok());
  EXPECT_FALSE(Launch("bc_peek NOPE").ok());
}

TEST_F(BindingsTest, CabinetOps) {
  ASSERT_TRUE(Launch("cab_append c F one; cab_append c F two;"
                     "cab_set t LEN [cab_len c F];"
                     "cab_set t LIST [cab_list c F];"
                     "cab_set t GET [cab_get c F 1];"
                     "cab_set t HAS [cab_contains c F one];"
                     "cab_set t MISS [cab_contains c F three];"
                     "cab_erase c F;"
                     "cab_set t AFTER [cab_len c F]")
                  .ok());
  FileCabinet& cab = kernel_.place(a_)->Cabinet("t");
  EXPECT_EQ(*cab.GetSingleString("LEN"), "2");
  EXPECT_EQ(*cab.GetSingleString("LIST"), "one two");
  EXPECT_EQ(*cab.GetSingleString("GET"), "two");
  EXPECT_EQ(*cab.GetSingleString("HAS"), "1");
  EXPECT_EQ(*cab.GetSingleString("MISS"), "0");
  EXPECT_EQ(*cab.GetSingleString("AFTER"), "0");
}

TEST_F(BindingsTest, CabFlushPersists) {
  ASSERT_TRUE(Launch("cab_append d F keep; cab_flush d").ok());
  kernel_.CrashSite(a_);
  kernel_.RestartSite(a_);
  EXPECT_EQ(kernel_.place(a_)->Cabinet("d").ListStrings("F"),
            (std::vector<std::string>{"keep"}));
}

TEST_F(BindingsTest, IntrospectionCommands) {
  Briefcase bc;
  bc.SetString("AGENT", "tester");
  ASSERT_TRUE(Launch("cab_set t SITE [site];"
                     "cab_set t ID [agent_id];"
                     "cab_set t NOW [now_us];"
                     "cab_set t HASREXEC [expr {[lsearch [agents] rexec] >= 0}]",
                     bc)
                  .ok());
  FileCabinet& cab = kernel_.place(a_)->Cabinet("t");
  EXPECT_EQ(*cab.GetSingleString("SITE"), "alpha");
  EXPECT_EQ(*cab.GetSingleString("ID"), "tester");
  EXPECT_EQ(*cab.GetSingleString("NOW"), "0");
  EXPECT_EQ(*cab.GetSingleString("HASREXEC"), "1");
}

TEST_F(BindingsTest, SelfCodeReturnsProgramText) {
  const std::string code = "cab_set t CODE [self_code]";
  ASSERT_TRUE(Launch(code).ok());
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("CODE"), code);
}

TEST_F(BindingsTest, MeetInvokesResident) {
  kernel_.place(a_)->RegisterAgent("service", [](Place&, Briefcase& bc) {
    bc.SetString("OUT", "served");
    return OkStatus();
  });
  ASSERT_TRUE(Launch("meet service; cab_set t OUT [bc_get OUT]").ok());
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("OUT"), "served");
}

TEST_F(BindingsTest, MeetWithFolderListPassesOnlyThose) {
  // "meet B with bc": the folder list is the argument list (§2).
  std::vector<std::string> seen;
  kernel_.place(a_)->RegisterAgent("picky", [&seen](Place&, Briefcase& bc) {
    seen = bc.FolderNames();
    bc.SetString("REPLY", "done");
    return OkStatus();
  });
  ASSERT_TRUE(Launch("bc_set ARG1 x; bc_set ARG2 y; bc_set PRIVATE z;"
                     "meet picky {ARG1 ARG2};"
                     "cab_set t REPLY [bc_get REPLY];"
                     "cab_set t PRIVATE [bc_get PRIVATE];"
                     "cab_set t ARG1 [bc_get ARG1]")
                  .ok());
  // The met agent saw only the argument folders.
  EXPECT_EQ(seen, (std::vector<std::string>{"ARG1", "ARG2"}));
  FileCabinet& cab = kernel_.place(a_)->Cabinet("t");
  // Results (REPLY) merged back; arguments returned; PRIVATE never left.
  EXPECT_EQ(*cab.GetSingleString("REPLY"), "done");
  EXPECT_EQ(*cab.GetSingleString("PRIVATE"), "z");
  EXPECT_EQ(*cab.GetSingleString("ARG1"), "x");
}

TEST_F(BindingsTest, MeetWithFolderListSurvivesFailedMeet) {
  kernel_.place(a_)->RegisterAgent("grump", [](Place&, Briefcase&) {
    return InternalError("no");
  });
  ASSERT_TRUE(Launch("bc_set ARG keep;"
                     "catch {meet grump {ARG}} e;"
                     "cab_set t ARG [bc_get ARG]")
                  .ok());
  // The argument folder came back even though the meet failed.
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("ARG"), "keep");
}

TEST_F(BindingsTest, MeetFailurePropagatesAsError) {
  EXPECT_FALSE(Launch("meet nobody").ok());
  // But catchable from TACL.
  ASSERT_TRUE(Launch("if {[catch {meet nobody} e]} {cab_set t ERR $e}").ok());
  EXPECT_NE(kernel_.place(a_)->Cabinet("t").GetSingleString("ERR")->find("nobody"),
            std::string::npos);
}

TEST_F(BindingsTest, MoveTransfersBriefcase) {
  Briefcase bc;
  bc.SetString("CARGO", "goods");
  bc.folder(kCodeFolder).PushBackString("cab_set t CARGO [bc_get CARGO]");
  // First CODE element runs at alpha (it moves); the pushed element would be
  // consumed at beta... instead: the mover pushes the receiver code itself.
  ASSERT_TRUE(Launch("bc_put CODE {cab_set t CARGO [bc_get CARGO]}; move beta",
                     [] {
                       Briefcase inner;
                       inner.SetString("CARGO", "goods");
                       return inner;
                     }())
                  .ok());
  kernel_.sim().Run();
  EXPECT_EQ(*kernel_.place(b_)->Cabinet("t").GetSingleString("CARGO"), "goods");
}

TEST_F(BindingsTest, MoveStopsLocalScriptAndBlocksFurtherBriefcaseUse) {
  ASSERT_TRUE(Launch("bc_put CODE {}; move beta; cab_set t AFTER ran").ok());
  kernel_.sim().Run();
  // The command after `move` must not have run (script returned).
  EXPECT_FALSE(kernel_.place(a_)->Cabinet("t").HasFolder("AFTER"));
}

TEST_F(BindingsTest, DepartedAgentCannotTouchBriefcase) {
  // After move, bc_* from a proc continuation errors out.
  Status s = Launch(
      "proc go {} { bc_put CODE {}; move beta }\n"
      "go\n"
      "bc_put X leak");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("departed"), std::string::npos);
}

TEST_F(BindingsTest, MoveToUnknownSiteFailsAndStateIntact) {
  ASSERT_TRUE(Launch("if {[catch {move nowhere} e]} {cab_set t E $e};"
                     "bc_put OK still-usable")
                  .ok());
  EXPECT_TRUE(kernel_.place(a_)->Cabinet("t").HasFolder("E"));
}

TEST_F(BindingsTest, JumpRestartsSameProgramRemotely) {
  // Classic itinerary: phase decided by briefcase state.
  ASSERT_TRUE(Launch("if {[bc_has BEEN]} {"
                     "  cab_set t DONE [site]"
                     "} else {"
                     "  bc_set BEEN 1; jump beta"
                     "}")
                  .ok());
  kernel_.sim().Run();
  EXPECT_EQ(*kernel_.place(b_)->Cabinet("t").GetSingleString("DONE"), "beta");
}

TEST_F(BindingsTest, CloneRunsRemotelyAndLocallyContinues) {
  ASSERT_TRUE(Launch("if {[bc_has CLONED]} {"
                     "  cab_set t WHO clone-at-[site]"
                     "} else {"
                     "  bc_set CLONED 1; clone beta; cab_set t WHO parent-at-[site]"
                     "}")
                  .ok());
  kernel_.sim().Run();
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("WHO"), "parent-at-alpha");
  EXPECT_EQ(*kernel_.place(b_)->Cabinet("t").GetSingleString("WHO"), "clone-at-beta");
}

TEST_F(BindingsTest, SendDeliversFolderViaCourier) {
  Briefcase got;
  kernel_.place(b_)->RegisterAgent("inbox", [&got](Place&, Briefcase& bc) {
    got = bc;
    return OkStatus();
  });
  ASSERT_TRUE(Launch("bc_put NEWS headline; send beta inbox NEWS;"
                     "cab_set t LOCAL [bc_get NEWS]")
                  .ok());
  kernel_.sim().Run();
  EXPECT_EQ(*got.GetString("NEWS"), "headline");
  // Local copy retained; control folders cleaned up.
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("LOCAL"), "headline");
}

TEST_F(BindingsTest, RngUniformDeterministicPerPlace) {
  ASSERT_TRUE(Launch("cab_append t R [rng_uniform 100];"
                     "cab_append t R [rng_uniform 100]")
                  .ok());
  auto values = kernel_.place(a_)->Cabinet("t").ListStrings("R");
  ASSERT_EQ(values.size(), 2u);
  for (const std::string& v : values) {
    int n = std::stoi(v);
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 100);
  }

  // Same seed, fresh kernel: identical draws.
  Kernel other;
  SiteId oa = other.AddSite("alpha");
  ASSERT_TRUE(other
                  .LaunchAgent(oa,
                               "cab_append t R [rng_uniform 100];"
                               "cab_append t R [rng_uniform 100]")
                  .ok());
  EXPECT_EQ(other.place(oa)->Cabinet("t").ListStrings("R"), values);
}

TEST_F(BindingsTest, DetachRunsContinuationAfterMeetReturns) {
  // §2: "after the meet terminates, B may continue executing concurrently
  // with A."  The resident finishes its meet immediately but schedules a
  // continuation; A observes the meet return before the continuation runs.
  kernel_.place(a_)->RegisterTaclAgent(
      "background_worker",
      "bc_set ACK now\n"
      "detach 5000 {cab_set t LATER [now_us]}");
  ASSERT_TRUE(Launch("meet background_worker;"
                     "cab_set t ACK [bc_get ACK];"
                     "cab_set t AT_MEET_RETURN [now_us]")
                  .ok());
  // Before running the simulator, only the synchronous part has happened.
  FileCabinet& cab = kernel_.place(a_)->Cabinet("t");
  EXPECT_EQ(*cab.GetSingleString("ACK"), "now");
  EXPECT_FALSE(cab.HasFolder("LATER"));
  kernel_.sim().Run();
  ASSERT_TRUE(cab.HasFolder("LATER"));
  EXPECT_EQ(*cab.GetSingleString("LATER"), "5000");
}

TEST_F(BindingsTest, DetachedContinuationSeesBriefcaseSnapshot) {
  ASSERT_TRUE(Launch("bc_set DATA before\n"
                     "detach 1000 {cab_set t SAW [bc_get DATA]}\n"
                     "bc_set DATA after")
                  .ok());
  kernel_.sim().Run();
  // The continuation got the snapshot taken at detach time.
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("SAW"), "before");
}

TEST_F(BindingsTest, DetachedContinuationDiesWithPlace) {
  ASSERT_TRUE(Launch("detach 50000 {cab_set t ZOMBIE yes}").ok());
  kernel_.CrashSite(a_);
  kernel_.RestartSite(a_);
  kernel_.sim().Run();
  EXPECT_FALSE(kernel_.place(a_)->Cabinet("t").HasFolder("ZOMBIE"));
}

TEST_F(BindingsTest, DetachCanChain) {
  ASSERT_TRUE(Launch("detach 1000 {cab_append t TICKS 1; "
                     "detach 1000 {cab_append t TICKS 2}}")
                  .ok());
  kernel_.sim().Run();
  EXPECT_EQ(kernel_.place(a_)->Cabinet("t").ListStrings("TICKS"),
            (std::vector<std::string>{"1", "2"}));
}

TEST_F(BindingsTest, WrongArityErrors) {
  EXPECT_FALSE(Launch("bc_put onlyfolder").ok());
  EXPECT_FALSE(Launch("bc_pop").ok());
  EXPECT_FALSE(Launch("cab_append c onlyfolder").ok());
  EXPECT_FALSE(Launch("meet a b").ok());
  EXPECT_FALSE(Launch("move").ok());
  EXPECT_FALSE(Launch("send beta inbox").ok());
  EXPECT_FALSE(Launch("rng_uniform 0").ok());
  EXPECT_FALSE(Launch("rng_uniform abc").ok());
}

}  // namespace
}  // namespace tacoma
