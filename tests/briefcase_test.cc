#include "core/briefcase.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma {
namespace {

TEST(BriefcaseTest, FolderGetOrCreate) {
  Briefcase bc;
  EXPECT_FALSE(bc.Has("X"));
  bc.folder("X").PushBackString("v");
  EXPECT_TRUE(bc.Has("X"));
  EXPECT_EQ(bc.folder_count(), 1u);
}

TEST(BriefcaseTest, FindConstReturnsNullWhenAbsent) {
  Briefcase bc;
  EXPECT_EQ(bc.Find("nope"), nullptr);
  bc.folder("yes");
  EXPECT_NE(bc.Find("yes"), nullptr);
}

TEST(BriefcaseTest, RemoveAndClear) {
  Briefcase bc;
  bc.folder("A");
  bc.folder("B");
  EXPECT_TRUE(bc.Remove("A"));
  EXPECT_FALSE(bc.Remove("A"));
  bc.Clear();
  EXPECT_EQ(bc.folder_count(), 0u);
}

TEST(BriefcaseTest, FolderNamesSorted) {
  Briefcase bc;
  bc.folder("zeta");
  bc.folder("alpha");
  EXPECT_EQ(bc.FolderNames(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(BriefcaseTest, SetGetStringIdiom) {
  Briefcase bc;
  bc.SetString(kHostFolder, "tromso");
  EXPECT_EQ(*bc.GetString(kHostFolder), "tromso");
  // SetString replaces rather than appends.
  bc.SetString(kHostFolder, "cornell");
  EXPECT_EQ(*bc.GetString(kHostFolder), "cornell");
  EXPECT_EQ(bc.folder(kHostFolder).size(), 1u);
  EXPECT_FALSE(bc.GetString("MISSING").has_value());
}

TEST(BriefcaseTest, AdoptMovesFolder) {
  Briefcase from;
  Briefcase to;
  from.folder("DATA").PushBackString("payload");
  EXPECT_TRUE(to.Adopt(from, "DATA"));
  EXPECT_FALSE(from.Has("DATA"));
  EXPECT_EQ(*to.GetString("DATA"), "payload");
  EXPECT_FALSE(to.Adopt(from, "DATA"));
}

TEST(BriefcaseTest, SerializeRoundTrip) {
  Briefcase bc;
  bc.SetString(kContactFolder, "ag_tacl");
  bc.folder(kCodeFolder).PushBackString("set a 5");
  bc.folder("DATA").PushBack(Bytes{0, 1, 255});
  bc.folder("EMPTY");

  auto restored = Briefcase::Deserialize(bc.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, bc);
  EXPECT_TRUE(restored->Has("EMPTY"));
}

TEST(BriefcaseTest, DeserializeRejectsTrailingGarbage) {
  Briefcase bc;
  bc.SetString("A", "x");
  Bytes wire = bc.Serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(Briefcase::Deserialize(wire).ok());
}

TEST(BriefcaseTest, DeserializeRejectsTruncation) {
  Briefcase bc;
  bc.SetString("A", "somewhat longer value");
  Bytes wire = bc.Serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(Briefcase::Deserialize(wire).ok());
}

TEST(BriefcaseTest, ByteSizeMatchesSerialization) {
  Briefcase bc;
  bc.SetString("HOST", "there");
  bc.folder("PAYLOAD").PushBack(Bytes(1000));
  bc.folder("PAYLOAD").PushBackString("extra");
  EXPECT_EQ(bc.ByteSize(), bc.Serialize().size());
}

TEST(BriefcaseTest, EmptyBriefcaseRoundTrips) {
  Briefcase bc;
  auto restored = Briefcase::Deserialize(bc.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->folder_count(), 0u);
}

class BriefcasePropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BriefcasePropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST_P(BriefcasePropertyTest, RandomBriefcasesRoundTrip) {
  Rng rng(GetParam());
  Briefcase bc;
  size_t folders = rng.Uniform(8);
  for (size_t i = 0; i < folders; ++i) {
    Folder& f = bc.folder("folder" + std::to_string(rng.Uniform(12)));
    size_t elements = rng.Uniform(6);
    for (size_t k = 0; k < elements; ++k) {
      Bytes b(rng.Uniform(64));
      for (auto& byte : b) {
        byte = static_cast<uint8_t>(rng.Next());
      }
      f.PushBack(std::move(b));
    }
  }
  auto restored = Briefcase::Deserialize(bc.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, bc);
  EXPECT_EQ(bc.ByteSize(), bc.Serialize().size());
}

}  // namespace
}  // namespace tacoma
