// Broker agents (§4): matchmaking, policies, gossip, protected agents.
#include "sched/broker.h"

#include <gtest/gtest.h>

namespace tacoma::sched {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() {
    hub_ = kernel_.AddSite("hub");
    east_ = kernel_.AddSite("east");
    west_ = kernel_.AddSite("west");
    kernel_.net().AddLink(hub_, east_);
    kernel_.net().AddLink(hub_, west_);
    broker_ = std::make_unique<BrokerService>(&kernel_, hub_);
    broker_->Install();
  }

  ProviderInfo MakeProvider(const std::string& site, double capacity = 1.0,
                            uint64_t load = 0) {
    ProviderInfo p;
    p.service = "compute";
    p.site = site;
    p.agent = "worker";
    p.capacity = capacity;
    p.load = load;
    return p;
  }

  Kernel kernel_;
  SiteId hub_ = 0, east_ = 0, west_ = 0;
  std::unique_ptr<BrokerService> broker_;
};

TEST_F(BrokerTest, PolicyParsing) {
  EXPECT_EQ(*ParsePolicy("random"), Policy::kRandom);
  EXPECT_EQ(*ParsePolicy("round_robin"), Policy::kRoundRobin);
  EXPECT_EQ(*ParsePolicy("least_loaded"), Policy::kLeastLoaded);
  EXPECT_EQ(*ParsePolicy("weighted"), Policy::kWeightedCapacity);
  EXPECT_EQ(*ParsePolicy(""), Policy::kLeastLoaded);  // Default.
  EXPECT_FALSE(ParsePolicy("bogus").ok());
  EXPECT_EQ(PolicyName(Policy::kRoundRobin), "round_robin");
}

TEST_F(BrokerTest, RegisterAndFind) {
  broker_->Register(MakeProvider("east"));
  auto found = broker_->Find("compute", Policy::kLeastLoaded);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->site, "east");
  EXPECT_FALSE(broker_->Find("storage", Policy::kLeastLoaded).ok());
}

TEST_F(BrokerTest, ReRegisterUpdatesInPlace) {
  broker_->Register(MakeProvider("east", 1.0));
  broker_->Register(MakeProvider("east", 4.0));
  EXPECT_EQ(broker_->provider_count(), 1u);
  EXPECT_DOUBLE_EQ(broker_->providers("compute")->front().capacity, 4.0);
}

TEST_F(BrokerTest, LeastLoadedPrefersIdle) {
  broker_->Register(MakeProvider("east", 1.0, 5));
  broker_->Register(MakeProvider("west", 1.0, 1));
  auto found = broker_->Find("compute", Policy::kLeastLoaded);
  EXPECT_EQ(found->site, "west");
}

TEST_F(BrokerTest, LeastLoadedTieBreaksOnCapacity) {
  broker_->Register(MakeProvider("east", 1.0, 2));
  broker_->Register(MakeProvider("west", 8.0, 2));
  EXPECT_EQ(broker_->Find("compute", Policy::kLeastLoaded)->site, "west");
}

TEST_F(BrokerTest, RoundRobinCycles) {
  broker_->Register(MakeProvider("east"));
  broker_->Register(MakeProvider("west"));
  std::string first = broker_->Find("compute", Policy::kRoundRobin)->site;
  std::string second = broker_->Find("compute", Policy::kRoundRobin)->site;
  std::string third = broker_->Find("compute", Policy::kRoundRobin)->site;
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST_F(BrokerTest, RandomAndWeightedStayInPool) {
  broker_->Register(MakeProvider("east", 1.0, 0));
  broker_->Register(MakeProvider("west", 10.0, 0));
  int west_hits = 0;
  for (int i = 0; i < 200; ++i) {
    auto found = broker_->Find("compute", Policy::kWeightedCapacity);
    ASSERT_TRUE(found.ok());
    if (found->site == "west") {
      ++west_hits;
    }
  }
  // Capacity 10 vs 1: west should dominate.
  EXPECT_GT(west_hits, 140);
}

TEST_F(BrokerTest, ReportUpdatesLoad) {
  broker_->Register(MakeProvider("east", 1.0, 0));
  broker_->Register(MakeProvider("west", 1.0, 0));
  broker_->Report("east", 9);
  EXPECT_EQ(broker_->Find("compute", Policy::kLeastLoaded)->site, "west");
  broker_->Report("east", 0);
  broker_->Report("west", 3);
  EXPECT_EQ(broker_->Find("compute", Policy::kLeastLoaded)->site, "east");
}

TEST_F(BrokerTest, MeetProtocolRegisterReportFind) {
  Place* place = kernel_.place(hub_);
  Briefcase reg;
  reg.SetString("OP", "register");
  reg.SetString("SERVICE", "compute");
  reg.SetString("PROVIDER_SITE", "east");
  reg.SetString("PROVIDER_AGENT", "worker");
  reg.SetString("CAPACITY", "2.0");
  ASSERT_TRUE(place->Meet("broker", reg).ok());

  Briefcase report;
  report.SetString("OP", "report");
  report.SetString("SITE", "east");
  report.SetString("LOAD", "3");
  ASSERT_TRUE(place->Meet("broker", report).ok());

  Briefcase find;
  find.SetString("OP", "find");
  find.SetString("SERVICE", "compute");
  find.SetString("POLICY", "least_loaded");
  ASSERT_TRUE(place->Meet("broker", find).ok());
  EXPECT_EQ(*find.GetString("PROVIDER_SITE"), "east");
  EXPECT_EQ(*find.GetString("PROVIDER_AGENT"), "worker");
  EXPECT_EQ(*find.GetString("STATUS"), "ok");
}

TEST_F(BrokerTest, FindUnknownServiceViaMeetFails) {
  Briefcase find;
  find.SetString("OP", "find");
  find.SetString("SERVICE", "nonexistent");
  EXPECT_FALSE(kernel_.place(hub_)->Meet("broker", find).ok());
  EXPECT_NE(find.GetString("STATUS")->find("no provider"), std::string::npos);
}

TEST_F(BrokerTest, GossipSpreadsProviderDb) {
  // Second broker at east; only the hub broker knows the provider.
  BrokerService east_broker(&kernel_, east_);
  east_broker.Install();
  broker_->AddPeer(east_);
  broker_->Register(MakeProvider("west", 2.0, 1));

  broker_->StartGossip(100 * kMillisecond);
  kernel_.sim().RunUntil(150 * kMillisecond);

  auto found = east_broker.Find("compute", Policy::kLeastLoaded);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->site, "west");
  EXPECT_GE(east_broker.stats().gossip_merges, 1u);
}

TEST_F(BrokerTest, GossipPrefersNewerEntries) {
  BrokerService east_broker(&kernel_, east_);
  east_broker.Install();
  broker_->AddPeer(east_);

  // East already knows the provider with a NEWER load report.
  kernel_.sim().RunUntil(10 * kMillisecond);
  east_broker.Register(MakeProvider("west", 2.0, 7));

  // Hub has a stale view (registered at t=10ms but we force older timestamp
  // by registering before east's and gossiping after).
  broker_->Register(MakeProvider("west", 2.0, 0));
  auto* entry = &const_cast<std::vector<ProviderInfo>&>(
      *broker_->providers("compute"))[0];
  entry->updated = 0;  // Make hub's entry explicitly older.

  broker_->StartGossip(50 * kMillisecond);
  kernel_.sim().RunUntil(80 * kMillisecond);

  // East keeps its newer load value.
  EXPECT_EQ(east_broker.providers("compute")->front().load, 7u);
}

TEST_F(BrokerTest, GossipSkipsRoundsWhileBrokerSiteDown) {
  BrokerService east_broker(&kernel_, east_);
  east_broker.Install();
  broker_->AddPeer(east_);
  broker_->Register(MakeProvider("west"));

  // Crash the broker's site FIRST: StartGossip fires its opening round
  // immediately, and that round (plus every later one while down) must be
  // skipped rather than sent.
  kernel_.CrashSite(hub_);
  broker_->StartGossip(50 * kMillisecond);
  kernel_.sim().RunUntil(200 * kMillisecond);
  EXPECT_EQ(east_broker.provider_count(), 0u);  // Nothing arrived while down.

  kernel_.RestartSite(hub_);
  kernel_.sim().RunUntil(500 * kMillisecond);
  // The gossip chain survived the outage (the service object outlives the
  // place) and resumed once the site came back.
  EXPECT_EQ(east_broker.provider_count(), 1u);
}

TEST_F(BrokerTest, ProtectedAgentMeetingQueue) {
  // §4: the protected agent's real name is secret; the broker queues meeting
  // requests (briefcases stored inside folders, byte-for-byte).
  broker_->Protect("oracle", "secret-name-1234");

  Briefcase payload;
  payload.SetString("QUESTION", "will it storm?");
  Bytes serialized = payload.Serialize();

  Briefcase request;
  request.SetString("OP", "request_meeting");
  request.SetString("PUBLIC", "oracle");
  request.folder("PAYLOAD").PushBack(serialized);
  ASSERT_TRUE(kernel_.place(hub_)->Meet("broker", request).ok());

  // Wrong secret: denied.
  Briefcase bad;
  bad.SetString("OP", "collect");
  bad.SetString("SECRET", "wrong");
  EXPECT_FALSE(kernel_.place(hub_)->Meet("broker", bad).ok());

  // Right secret: the queued briefcase comes back intact.
  Briefcase collect;
  collect.SetString("OP", "collect");
  collect.SetString("SECRET", "secret-name-1234");
  ASSERT_TRUE(kernel_.place(hub_)->Meet("broker", collect).ok());
  const Folder* retrieved = collect.Find("RETRIEVED");
  ASSERT_NE(retrieved, nullptr);
  ASSERT_EQ(retrieved->size(), 1u);
  auto restored = Briefcase::Deserialize(*retrieved->Front());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored->GetString("QUESTION"), "will it storm?");

  // Queue drained.
  Briefcase again;
  again.SetString("OP", "collect");
  again.SetString("SECRET", "secret-name-1234");
  ASSERT_TRUE(kernel_.place(hub_)->Meet("broker", again).ok());
  EXPECT_EQ(again.Find("RETRIEVED")->size(), 0u);
}

TEST_F(BrokerTest, MeetingRequestForUnknownProtectedAgentFails) {
  Briefcase request;
  request.SetString("OP", "request_meeting");
  request.SetString("PUBLIC", "nobody");
  request.folder("PAYLOAD").PushBack(Bytes{1});
  EXPECT_FALSE(kernel_.place(hub_)->Meet("broker", request).ok());
}

}  // namespace
}  // namespace tacoma::sched
