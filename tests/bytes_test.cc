#include "util/bytes.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma {
namespace {

TEST(BytesTest, StringRoundTrip) {
  std::string s = "hello \0 world";
  Bytes b = ToBytes(s);
  EXPECT_EQ(ToString(b), s);
}

TEST(BytesTest, EmptyConversions) {
  EXPECT_TRUE(ToBytes("").empty());
  EXPECT_EQ(ToString(Bytes{}), "");
}

TEST(HexTest, EncodeKnownValues) {
  EXPECT_EQ(HexEncode(Bytes{}), "");
  EXPECT_EQ(HexEncode(Bytes{0x00}), "00");
  EXPECT_EQ(HexEncode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(HexEncode(Bytes{0x0f, 0xf0}), "0ff0");
}

TEST(HexTest, DecodeKnownValues) {
  Bytes out;
  ASSERT_TRUE(HexDecode("deadbeef", &out));
  EXPECT_EQ(out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  ASSERT_TRUE(HexDecode("DEADBEEF", &out));
  EXPECT_EQ(out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  ASSERT_TRUE(HexDecode("", &out));
  EXPECT_TRUE(out.empty());
}

TEST(HexTest, DecodeRejectsMalformed) {
  Bytes out;
  EXPECT_FALSE(HexDecode("abc", &out));   // Odd length.
  EXPECT_FALSE(HexDecode("zz", &out));    // Not hex.
  EXPECT_FALSE(HexDecode("a ", &out));    // Space.
}

class HexRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HexRoundTripTest, ::testing::Range<uint64_t>(0, 10));

TEST_P(HexRoundTripTest, RandomBuffersRoundTrip) {
  Rng rng(GetParam());
  Bytes original(rng.Uniform(200));
  for (auto& b : original) {
    b = static_cast<uint8_t>(rng.Next());
  }
  Bytes decoded;
  ASSERT_TRUE(HexDecode(HexEncode(original), &decoded));
  EXPECT_EQ(decoded, original);
}

TEST(Fnv1a64Test, KnownValues) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64Test, BytesAndStringAgree) {
  std::string s = "the quick brown fox";
  EXPECT_EQ(Fnv1a64(s), Fnv1a64(ToBytes(s)));
}

TEST(Fnv1a64Test, SensitiveToEveryByte) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abcd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("bbc"));
}


// --- SharedBytes / BytesView (copy-on-write buffers) -----------------------

TEST(SharedBytesTest, WrapsBufferWithoutCopyOnSubstr) {
  SharedBytes whole = SharedBytes::FromString("hello, world");
  SharedBytes hello = whole.Substr(0, 5);
  SharedBytes world = whole.Substr(7, 5);
  EXPECT_EQ(ToString(hello), "hello");
  EXPECT_EQ(ToString(world), "world");
  // Views alias the original allocation rather than copying it.
  EXPECT_TRUE(hello.SharesBufferWith(whole));
  EXPECT_TRUE(world.SharesBufferWith(hello));
}

TEST(SharedBytesTest, SubstrClampsAndEmptyOnOutOfRange) {
  SharedBytes b = SharedBytes::FromString("abc");
  EXPECT_EQ(ToString(b.Substr(1, 100)), "bc");
  EXPECT_TRUE(b.Substr(3, 1).empty());
  EXPECT_TRUE(SharedBytes().Substr(0, 1).empty());
}

TEST(SharedBytesTest, EqualityComparesContentNotIdentity) {
  SharedBytes a = SharedBytes::FromString("same");
  SharedBytes b = SharedBytes::FromString("same");
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, ToBytes("same"));
  EXPECT_NE(a, SharedBytes::FromString("other"));
}

TEST(SharedBytesTest, ImplicitFromBytesAndBackOut) {
  Bytes plain = ToBytes("payload");
  SharedBytes shared = plain;  // Implicit: Bytes is movable into a frame.
  EXPECT_EQ(shared.ToBytes(), ToBytes("payload"));
  EXPECT_EQ(shared.StringView(), "payload");
}

TEST(SharedBytesTest, CopiesShareTheAllocation) {
  SharedBytes a = SharedBytes::FromString("frame");
  SharedBytes b = a;
  SharedBytes c;
  c = b;
  EXPECT_TRUE(b.SharesBufferWith(a));
  EXPECT_TRUE(c.SharesBufferWith(a));
  EXPECT_EQ(c, a);
}

TEST(BytesViewTest, ViewsBytesAndSharedBytesAlike) {
  Bytes plain = ToBytes("view me");
  SharedBytes shared = SharedBytes::FromString("view me");
  BytesView from_plain = plain;
  BytesView from_shared = shared;
  ASSERT_EQ(from_plain.size(), from_shared.size());
  EXPECT_EQ(from_plain.size(), 7u);
  EXPECT_TRUE(std::equal(from_plain.begin(), from_plain.end(), from_shared.begin()));
}

}  // namespace
}  // namespace tacoma
