#include "util/bytes.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma {
namespace {

TEST(BytesTest, StringRoundTrip) {
  std::string s = "hello \0 world";
  Bytes b = ToBytes(s);
  EXPECT_EQ(ToString(b), s);
}

TEST(BytesTest, EmptyConversions) {
  EXPECT_TRUE(ToBytes("").empty());
  EXPECT_EQ(ToString(Bytes{}), "");
}

TEST(HexTest, EncodeKnownValues) {
  EXPECT_EQ(HexEncode(Bytes{}), "");
  EXPECT_EQ(HexEncode(Bytes{0x00}), "00");
  EXPECT_EQ(HexEncode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(HexEncode(Bytes{0x0f, 0xf0}), "0ff0");
}

TEST(HexTest, DecodeKnownValues) {
  Bytes out;
  ASSERT_TRUE(HexDecode("deadbeef", &out));
  EXPECT_EQ(out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  ASSERT_TRUE(HexDecode("DEADBEEF", &out));
  EXPECT_EQ(out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  ASSERT_TRUE(HexDecode("", &out));
  EXPECT_TRUE(out.empty());
}

TEST(HexTest, DecodeRejectsMalformed) {
  Bytes out;
  EXPECT_FALSE(HexDecode("abc", &out));   // Odd length.
  EXPECT_FALSE(HexDecode("zz", &out));    // Not hex.
  EXPECT_FALSE(HexDecode("a ", &out));    // Space.
}

class HexRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HexRoundTripTest, ::testing::Range<uint64_t>(0, 10));

TEST_P(HexRoundTripTest, RandomBuffersRoundTrip) {
  Rng rng(GetParam());
  Bytes original(rng.Uniform(200));
  for (auto& b : original) {
    b = static_cast<uint8_t>(rng.Next());
  }
  Bytes decoded;
  ASSERT_TRUE(HexDecode(HexEncode(original), &decoded));
  EXPECT_EQ(decoded, original);
}

TEST(Fnv1a64Test, KnownValues) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64Test, BytesAndStringAgree) {
  std::string s = "the quick brown fox";
  EXPECT_EQ(Fnv1a64(s), Fnv1a64(ToBytes(s)));
}

TEST(Fnv1a64Test, SensitiveToEveryByte) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abcd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("bbc"));
}

}  // namespace
}  // namespace tacoma
