#include "core/cabinet.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma {
namespace {

TEST(CabinetTest, AppendAndList) {
  FileCabinet cab("test");
  cab.AppendString("F", "one");
  cab.AppendString("F", "two");
  EXPECT_EQ(cab.Size("F"), 2u);
  EXPECT_EQ(cab.ListStrings("F"), (std::vector<std::string>{"one", "two"}));
}

TEST(CabinetTest, SetReplaces) {
  FileCabinet cab("test");
  cab.AppendString("F", "a");
  cab.AppendString("F", "b");
  cab.SetString("F", "only");
  EXPECT_EQ(cab.Size("F"), 1u);
  EXPECT_EQ(*cab.GetSingleString("F"), "only");
}

TEST(CabinetTest, ContainsIsExact) {
  FileCabinet cab("test");
  cab.AppendString("VISITED", "siteA");
  cab.AppendString("VISITED", "siteB");
  EXPECT_TRUE(cab.ContainsString("VISITED", "siteA"));
  EXPECT_FALSE(cab.ContainsString("VISITED", "siteC"));
  EXPECT_FALSE(cab.ContainsString("OTHER", "siteA"));
}

TEST(CabinetTest, GetByIndex) {
  FileCabinet cab("test");
  cab.AppendString("F", "x");
  cab.AppendString("F", "y");
  EXPECT_EQ(ToString(*cab.Get("F", 1)), "y");
  EXPECT_FALSE(cab.Get("F", 2).has_value());
  EXPECT_FALSE(cab.Get("G", 0).has_value());
}

TEST(CabinetTest, EraseFolder) {
  FileCabinet cab("test");
  cab.AppendString("F", "x");
  EXPECT_TRUE(cab.EraseFolder("F"));
  EXPECT_FALSE(cab.HasFolder("F"));
  EXPECT_FALSE(cab.EraseFolder("F"));
}

TEST(CabinetTest, EraseElementRemovesFirstMatch) {
  FileCabinet cab("test");
  cab.AppendString("F", "dup");
  cab.AppendString("F", "keep");
  cab.AppendString("F", "dup");
  EXPECT_TRUE(cab.EraseElement("F", ToBytes("dup")));
  EXPECT_EQ(cab.ListStrings("F"), (std::vector<std::string>{"keep", "dup"}));
  EXPECT_TRUE(cab.ContainsString("F", "dup"));  // One copy remains.
  EXPECT_TRUE(cab.EraseElement("F", ToBytes("dup")));
  EXPECT_FALSE(cab.ContainsString("F", "dup"));
  EXPECT_FALSE(cab.EraseElement("F", ToBytes("dup")));
}

TEST(CabinetTest, FolderNames) {
  FileCabinet cab("test");
  cab.AppendString("B", "1");
  cab.AppendString("A", "2");
  auto names = cab.FolderNames();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"A", "B"}));
}

TEST(CabinetTest, SerializeRestoreRoundTrip) {
  FileCabinet cab("test");
  cab.AppendString("F", "a");
  cab.AppendString("F", "b");
  cab.Append("BIN", Bytes{0, 1, 2});

  FileCabinet other("other");
  ASSERT_TRUE(other.RestoreFrom(cab.Serialize()).ok());
  EXPECT_EQ(other.ListStrings("F"), cab.ListStrings("F"));
  EXPECT_TRUE(other.Contains("BIN", Bytes{0, 1, 2}));
  // The index must be rebuilt on restore.
  EXPECT_TRUE(other.ContainsString("F", "b"));
}

TEST(CabinetTest, FlushWithoutStorageFails) {
  FileCabinet cab("test");
  EXPECT_EQ(cab.Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cab.HasStorage());
}

TEST(CabinetTest, FlushAndRecover) {
  MemDisk disk;
  FileCabinet cab("wx");
  cab.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.wx"));
  cab.AppendString("SAMPLES", "s1");
  cab.AppendString("SAMPLES", "s2");
  ASSERT_TRUE(cab.Flush().ok());
  cab.AppendString("SAMPLES", "unflushed");

  // A new incarnation recovers only what was flushed.
  FileCabinet recovered("wx");
  recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.wx"));
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.ListStrings("SAMPLES"),
            (std::vector<std::string>{"s1", "s2"}));
}

TEST(CabinetTest, WriteAheadSurvivesWithoutFlush) {
  MemDisk disk;
  FileCabinet cab("guard");
  cab.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.guard"),
                    /*write_ahead=*/true);
  cab.AppendString("STATE", "a");
  cab.SetString("KV", "v1");
  cab.AppendString("STATE", "b");
  cab.EraseElement("STATE", ToBytes("a"));

  FileCabinet recovered("guard");
  recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.guard"), true);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.ListStrings("STATE"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(*recovered.GetSingleString("KV"), "v1");
}

TEST(CabinetTest, WriteAheadPlusFlushCompacts) {
  MemDisk disk;
  FileCabinet cab("c");
  cab.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.c"), true);
  for (int i = 0; i < 100; ++i) {
    cab.AppendString("F", std::to_string(i));
  }
  size_t before_flush = disk.TotalBytes();
  ASSERT_TRUE(cab.Flush().ok());
  // Compaction replaced 100 log records with one snapshot.
  EXPECT_LT(disk.TotalBytes(), before_flush);

  FileCabinet recovered("c");
  recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.c"), true);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.Size("F"), 100u);
}

TEST(CabinetTest, MutationCounter) {
  FileCabinet cab("test");
  EXPECT_EQ(cab.mutations(), 0u);
  cab.AppendString("F", "x");
  cab.SetString("F", "y");
  cab.EraseFolder("F");
  EXPECT_EQ(cab.mutations(), 3u);
}

class CabinetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CabinetPropertyTest, ::testing::Range<uint64_t>(0, 8));

// The hash index must agree with a linear scan under any op sequence.
TEST_P(CabinetPropertyTest, ContainsMatchesLinearScan) {
  Rng rng(GetParam());
  FileCabinet cab("prop");
  std::vector<std::string> universe;
  for (int i = 0; i < 20; ++i) {
    universe.push_back("item" + std::to_string(i));
  }
  for (int op = 0; op < 400; ++op) {
    const std::string& item = universe[rng.Uniform(universe.size())];
    switch (rng.Uniform(3)) {
      case 0:
        cab.AppendString("F", item);
        break;
      case 1:
        cab.EraseElement("F", ToBytes(item));
        break;
      case 2: {
        bool linear = false;
        for (const std::string& e : cab.ListStrings("F")) {
          if (e == item) {
            linear = true;
            break;
          }
        }
        ASSERT_EQ(cab.ContainsString("F", item), linear) << item;
        break;
      }
    }
  }
}

// Write-ahead recovery must reproduce the exact final state for any op mix.
TEST_P(CabinetPropertyTest, WriteAheadRecoveryIsExact) {
  Rng rng(GetParam());
  MemDisk disk;
  FileCabinet cab("prop");
  cab.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.prop"), true);
  for (int op = 0; op < 200; ++op) {
    std::string folder = "f" + std::to_string(rng.Uniform(4));
    std::string value = "v" + std::to_string(rng.Uniform(30));
    switch (rng.Uniform(4)) {
      case 0:
        cab.AppendString(folder, value);
        break;
      case 1:
        cab.SetString(folder, value);
        break;
      case 2:
        cab.EraseElement(folder, ToBytes(value));
        break;
      case 3:
        cab.EraseFolder(folder);
        break;
    }
  }
  FileCabinet recovered("prop");
  recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.prop"), true);
  ASSERT_TRUE(recovered.Recover().ok());
  auto names = cab.FolderNames();
  auto recovered_names = recovered.FolderNames();
  std::sort(names.begin(), names.end());
  std::sort(recovered_names.begin(), recovered_names.end());
  ASSERT_EQ(names, recovered_names);
  for (const std::string& folder : names) {
    EXPECT_EQ(recovered.ListStrings(folder), cab.ListStrings(folder)) << folder;
  }
}

}  // namespace
}  // namespace tacoma
