// Electronic cash (§3): ECUs, the mint/validation agent, wallets.
#include <gtest/gtest.h>

#include "cash/mint.h"
#include "cash/wallet.h"
#include "core/kernel.h"

namespace tacoma::cash {
namespace {

TEST(EcuTest, SerializeRoundTrip) {
  Ecu ecu;
  ecu.amount = 1234;
  ecu.serial = Bytes(32, 0x5a);
  auto restored = Ecu::Deserialize(ecu.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, ecu);
}

TEST(EcuTest, BatchEncodeDecode) {
  Mint mint(1);
  std::vector<Ecu> ecus{mint.Issue(10), mint.Issue(20), mint.Issue(30)};
  auto decoded = DecodeEcus(EncodeEcus(ecus));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[1], ecus[1]);
  EXPECT_EQ(TotalAmount(*decoded), 60u);
}

TEST(EcuTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeEcus(Bytes{0xff, 0xff}).ok());
  EXPECT_FALSE(Ecu::Deserialize(Bytes{1, 2}).ok());
}

TEST(MintTest, IssueCreatesValidEcus) {
  Mint mint(42);
  Ecu ecu = mint.Issue(100);
  EXPECT_EQ(ecu.amount, 100u);
  EXPECT_EQ(ecu.serial.size(), 32u);
  EXPECT_TRUE(mint.IsValid(ecu));
  EXPECT_EQ(mint.Outstanding(), 100u);
}

TEST(MintTest, SerialsAreUnique) {
  Mint mint(42);
  std::set<std::string> serials;
  for (int i = 0; i < 1000; ++i) {
    serials.insert(mint.Issue(1).SerialHex());
  }
  EXPECT_EQ(serials.size(), 1000u);
}

TEST(MintTest, ValidateRetiresAndReissues) {
  Mint mint(42);
  Ecu old_note = mint.Issue(50);
  auto fresh = mint.Validate(old_note);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->amount, 50u);
  EXPECT_NE(fresh->serial, old_note.serial);
  EXPECT_FALSE(mint.IsValid(old_note));  // Retired.
  EXPECT_TRUE(mint.IsValid(*fresh));
  EXPECT_EQ(mint.Outstanding(), 50u);  // Conservation.
}

TEST(MintTest, DoubleSpendFoiled) {
  // "An attempt by an agent to spend retired or copied ECUs will be foiled."
  Mint mint(42);
  Ecu note = mint.Issue(50);
  Ecu copy = note;  // "copy is a cheap operation"
  ASSERT_TRUE(mint.Validate(note).ok());
  auto second = mint.Validate(copy);
  EXPECT_EQ(second.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(mint.stats().rejected, 1u);
}

TEST(MintTest, ForgedSerialRejected) {
  Mint mint(42);
  Ecu forged;
  forged.amount = 1000000;
  forged.serial = Bytes(32, 0x99);
  EXPECT_FALSE(mint.Validate(forged).ok());
}

TEST(MintTest, TamperedAmountRejected) {
  Mint mint(42);
  Ecu note = mint.Issue(10);
  note.amount = 10000;  // Inflate the note.
  EXPECT_FALSE(mint.Validate(note).ok());
  EXPECT_EQ(mint.Outstanding(), 10u);
}

TEST(MintTest, ExchangeMakesChange) {
  Mint mint(42);
  Ecu note = mint.Issue(100);
  auto change = mint.Exchange({note}, {60, 30, 10});
  ASSERT_TRUE(change.ok());
  ASSERT_EQ(change->size(), 3u);
  EXPECT_EQ(TotalAmount(*change), 100u);
  EXPECT_FALSE(mint.IsValid(note));
  EXPECT_EQ(mint.Outstanding(), 100u);
}

TEST(MintTest, ExchangeRejectsImbalance) {
  Mint mint(42);
  Ecu note = mint.Issue(100);
  EXPECT_FALSE(mint.Exchange({note}, {60, 30}).ok());
  EXPECT_TRUE(mint.IsValid(note));  // Untouched on failure.
}

TEST(MintTest, ExchangeIsAllOrNothing) {
  Mint mint(42);
  Ecu good = mint.Issue(50);
  Ecu spent = mint.Issue(50);
  ASSERT_TRUE(mint.Validate(spent).ok());  // Retire it.
  EXPECT_FALSE(mint.Exchange({good, spent}, {100}).ok());
  EXPECT_TRUE(mint.IsValid(good));  // The good note survived the failed batch.
}

TEST(MintTest, UntraceabilityIsStructural) {
  // The mint never learns principals: its Validate signature takes only the
  // record.  This test documents the payee-blind shape by exercising a
  // transfer chain the mint cannot correlate: issue -> holder A -> B -> C.
  Mint mint(42);
  Ecu note = mint.Issue(10);
  // A "transfer" is just handing over bytes.
  Bytes wire = note.Serialize();
  auto at_b = Ecu::Deserialize(wire);
  ASSERT_TRUE(at_b.ok());
  auto validated = mint.Validate(*at_b);
  ASSERT_TRUE(validated.ok());
  EXPECT_TRUE(mint.IsValid(*validated));
}

TEST(WalletTest, BalanceAndCount) {
  Mint mint(1);
  Wallet w;
  w.Add(mint.Issue(10));
  w.Add({mint.Issue(20), mint.Issue(5)});
  EXPECT_EQ(w.Balance(), 35u);
  EXPECT_EQ(w.count(), 3u);
}

TEST(WalletTest, WithdrawExactSubset) {
  Mint mint(1);
  Wallet w;
  w.Add({mint.Issue(50), mint.Issue(20), mint.Issue(10), mint.Issue(5)});
  auto notes = w.Withdraw(30);
  ASSERT_TRUE(notes.ok());
  EXPECT_EQ(TotalAmount(*notes), 30u);
  EXPECT_EQ(w.Balance(), 55u);
}

TEST(WalletTest, WithdrawInsufficientFails) {
  Mint mint(1);
  Wallet w;
  w.Add(mint.Issue(10));
  EXPECT_FALSE(w.Withdraw(11).ok());
  EXPECT_EQ(w.Balance(), 10u);
}

TEST(WalletTest, WithdrawNoExactSubsetFails) {
  Mint mint(1);
  Wallet w;
  w.Add({mint.Issue(7), mint.Issue(7)});
  EXPECT_FALSE(w.Withdraw(10).ok());
  EXPECT_EQ(w.Balance(), 14u);  // Nothing lost.
}

TEST(WalletTest, WithdrawZeroIsEmpty) {
  Wallet w;
  auto notes = w.Withdraw(0);
  ASSERT_TRUE(notes.ok());
  EXPECT_TRUE(notes->empty());
}

TEST(WalletTest, PayIntoAndCollectFromBriefcase) {
  // "An agent transfers funds by placing these records in a briefcase that
  // is then passed to the intended recipient."
  Mint mint(1);
  Wallet payer;
  Wallet payee;
  payer.Add({mint.Issue(25), mint.Issue(25)});

  Briefcase bc;
  ASSERT_TRUE(payer.PayInto(&bc, 50).ok());
  EXPECT_EQ(payer.Balance(), 0u);
  EXPECT_TRUE(bc.Has(kCashFolder));

  auto received = payee.CollectFrom(&bc);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, 50u);
  EXPECT_EQ(payee.Balance(), 50u);
  EXPECT_FALSE(bc.Has(kCashFolder));
}

TEST(WalletTest, CollectFromEmptyBriefcaseFails) {
  Wallet w;
  Briefcase bc;
  EXPECT_FALSE(w.CollectFrom(&bc).ok());
}

// --- The mint as a resident agent -----------------------------------------------

class MintAgentTest : public ::testing::Test {
 protected:
  MintAgentTest() : mint_(7) {
    bank_ = kernel_.AddSite("bank");
    client_ = kernel_.AddSite("client");
    kernel_.net().AddLink(bank_, client_);
    InstallMintAgent(&kernel_, bank_, &mint_);
  }

  Kernel kernel_;
  Mint mint_;
  SiteId bank_ = 0, client_ = 0;
};

TEST_F(MintAgentTest, IssueViaMeet) {
  Briefcase bc;
  bc.SetString("OP", "issue");
  bc.SetString("AMOUNT", "75");
  ASSERT_TRUE(kernel_.place(bank_)->Meet("mint", bc).ok());
  EXPECT_EQ(*bc.GetString("STATUS"), "ok");
  auto ecus = DecodeEcus(*bc.Find("ECUS")->Front());
  ASSERT_TRUE(ecus.ok());
  EXPECT_EQ(TotalAmount(*ecus), 75u);
}

TEST_F(MintAgentTest, ValidateViaMeet) {
  Ecu note = mint_.Issue(40);
  Briefcase bc;
  bc.SetString("OP", "validate");
  bc.folder("ECUS").PushBack(EncodeEcus({note}));
  ASSERT_TRUE(kernel_.place(bank_)->Meet("mint", bc).ok());
  EXPECT_EQ(*bc.GetString("STATUS"), "ok");
  EXPECT_FALSE(mint_.IsValid(note));
}

TEST_F(MintAgentTest, DoubleSpendViaMeetReportsStatus) {
  Ecu note = mint_.Issue(40);
  ASSERT_TRUE(mint_.Validate(note).ok());
  Briefcase bc;
  bc.SetString("OP", "validate");
  bc.folder("ECUS").PushBack(EncodeEcus({note}));
  EXPECT_FALSE(kernel_.place(bank_)->Meet("mint", bc).ok());
  EXPECT_NE(bc.GetString("STATUS")->find("spent"), std::string::npos);
}

TEST_F(MintAgentTest, ExchangeViaMeet) {
  Ecu note = mint_.Issue(100);
  Briefcase bc;
  bc.SetString("OP", "exchange");
  bc.folder("ECUS").PushBack(EncodeEcus({note}));
  bc.folder("AMOUNT").PushBackString("70");
  bc.folder("AMOUNT").PushBackString("30");
  ASSERT_TRUE(kernel_.place(bank_)->Meet("mint", bc).ok());
  auto change = DecodeEcus(*bc.Find("ECUS")->Front());
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(change->size(), 2u);
}

TEST_F(MintAgentTest, RemoteValidationViaRelay) {
  // A remote agent consults the mint through the relay — the paper's model
  // of meeting service agents without sharing a site.
  Ecu note = mint_.Issue(10);
  std::optional<std::string> status;
  kernel_.place(client_)->RegisterAgent("reply", [&status](Place&, Briefcase& bc) {
    status = bc.GetString("STATUS");
    return OkStatus();
  });
  Briefcase request;
  request.SetString("TARGET", "mint");
  request.SetString("REPLY_HOST", "client");
  request.SetString("REPLY_CONTACT", "reply");
  request.SetString("OP", "validate");
  request.folder("ECUS").PushBack(EncodeEcus({note}));
  ASSERT_TRUE(kernel_.TransferAgent(client_, bank_, "relay", request).ok());
  kernel_.sim().Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, "ok");
}

TEST_F(MintAgentTest, SurvivesSiteRestart) {
  Ecu note = mint_.Issue(5);
  kernel_.CrashSite(bank_);
  kernel_.RestartSite(bank_);
  // The mint service object survived (like a vault); agent reinstalled.
  Briefcase bc;
  bc.SetString("OP", "validate");
  bc.folder("ECUS").PushBack(EncodeEcus({note}));
  ASSERT_TRUE(kernel_.place(bank_)->Meet("mint", bc).ok());
}

}  // namespace
}  // namespace tacoma::cash
