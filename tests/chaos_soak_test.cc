// Chaos soak: the ChaosHarness drives seeded site-crash, link-cut, and
// loss-flap storms against a reliable-transport workload while invariants
// are checked throughout.  Registered in ctest with a fixed seed and an
// explicit timeout (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "core/kernel.h"
#include "sim/chaos.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

struct SoakOutcome {
  std::map<std::string, int> activations;  // Per token.
  Kernel::Stats stats;
  size_t pending = 0;
  ChaosHarness::Report report;
  int sent_tokens = 0;
  std::string metrics_text;  // Unified snapshot (kernel + chaos) at quiesce.
};

SoakOutcome RunSoak(Reliability mode, uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = mode;
  Kernel kernel(options);
  auto sites = BuildGrid(&kernel.net(), 3, 3);
  kernel.AdoptNetworkSites();

  SoakOutcome outcome;
  kernel.AddPlaceInitializer([&outcome](Place& place) {
    place.RegisterAgent("sink", [&outcome](Place&, Briefcase& bc) {
      ++outcome.activations[bc.GetString("TOKEN").value_or("?")];
      return OkStatus();
    });
    place.RegisterAgent("morgue", [](Place&, Briefcase&) { return OkStatus(); });
  });

  ChaosOptions chaos_options;
  chaos_options.seed = seed * 2654435761 + 1;
  chaos_options.horizon = 2 * kSecond;
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.SetSiteHooks([&kernel](SiteId s) { kernel.CrashSite(s); },
                     [&kernel](SiteId s) { kernel.RestartSite(s); });
  // Storm activity joins the kernel's unified registry, so one snapshot holds
  // both the faults injected and the transport's response to them.
  chaos.RegisterMetrics(&kernel.metrics());

  chaos.AddInvariant("at-most-once activation", [&outcome] {
    for (const auto& [token, count] : outcome.activations) {
      if (count > 1) {
        return InternalError("token " + token + " activated " +
                             std::to_string(count) + " times");
      }
    }
    return OkStatus();
  });
  chaos.AddInvariant("reliable transfer conservation", [&kernel] {
    const auto& s = kernel.stats();
    uint64_t settled = s.transfers_acked + s.transfers_nacked +
                       s.transfers_expired + s.transfers_abandoned;
    if (settled + kernel.pending_transfers() != s.transfers_reliable) {
      return InternalError("conservation broken: " + std::to_string(settled) +
                           " settled + " +
                           std::to_string(kernel.pending_transfers()) +
                           " pending != " +
                           std::to_string(s.transfers_reliable) + " accepted");
    }
    return OkStatus();
  });
  chaos.AddInvariant("network stats sane", [&kernel] {
    const auto& n = kernel.net().stats();
    if (n.messages_delivered > n.messages_sent) {
      return InternalError("delivered > sent");
    }
    if (n.messages_lost > n.messages_dropped) {
      return InternalError("lost > dropped");
    }
    return OkStatus();
  });

  // Workload: a steady drizzle of uniquely-tokened transfers between random
  // up sites, all of it racing the storm.
  Rng workload_rng(seed * 7919 + 3);
  for (SimTime t = 5 * kMillisecond; t < chaos_options.horizon;
       t += 10 * kMillisecond) {
    kernel.sim().At(t, [&kernel, &workload_rng, &outcome, &sites] {
      SiteId from = sites[workload_rng.Uniform(sites.size())];
      SiteId to = sites[workload_rng.Uniform(sites.size())];
      if (from == to || kernel.place(from) == nullptr) {
        return;
      }
      Briefcase bc;
      bc.SetString("TOKEN", "t" + std::to_string(outcome.sent_tokens));
      TransferOptions transfer_options;
      transfer_options.dead_letter = "morgue";
      if (kernel.TransferAgent(from, to, "sink", bc, transfer_options).ok()) {
        ++outcome.sent_tokens;
      }
    });
  }

  chaos.Start();
  kernel.sim().Run();  // Storm + workload + post-horizon quiesce.
  EXPECT_TRUE(chaos.CheckNow().ok());

  outcome.stats = kernel.stats();
  outcome.pending = kernel.pending_transfers();
  outcome.report = chaos.report();
  outcome.metrics_text = kernel.metrics().TextSnapshot();

  // One-line soak summary so a green run still shows how much work happened.
  const ChaosHarness::Report& r = outcome.report;
  std::printf(
      "[soak] chaos seed=%llu events=%llu (crashes=%llu cuts=%llu flaps=%llu) "
      "transfers=%d acked=%llu retries=%llu invariant_checks=%llu "
      "violations=%zu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(r.crashes + r.cuts + r.loss_flaps),
      static_cast<unsigned long long>(r.crashes),
      static_cast<unsigned long long>(r.cuts),
      static_cast<unsigned long long>(r.loss_flaps), outcome.sent_tokens,
      static_cast<unsigned long long>(outcome.stats.transfers_acked),
      static_cast<unsigned long long>(outcome.stats.retries_sent),
      static_cast<unsigned long long>(r.checks), r.violations.size());
  return outcome;
}

class ChaosSoakTest : public ::testing::TestWithParam<Reliability> {};

INSTANTIATE_TEST_SUITE_P(Modes, ChaosSoakTest,
                         ::testing::Values(Reliability::kOff,
                                           Reliability::kAtMostOnce,
                                           Reliability::kReliable),
                         [](const auto& info) {
                           switch (info.param) {
                             case Reliability::kOff:
                               return "Off";
                             case Reliability::kAtMostOnce:
                               return "AtMostOnce";
                             default:
                               return "Reliable";
                           }
                         });

TEST_P(ChaosSoakTest, StormKeepsInvariants) {
  SoakOutcome outcome = RunSoak(GetParam(), /*seed=*/1995);

  // The storm actually stormed.
  EXPECT_GT(outcome.report.crashes, 0u);
  EXPECT_GT(outcome.report.cuts, 0u);
  EXPECT_GT(outcome.report.loss_flaps, 0u);
  EXPECT_GT(outcome.report.checks, 0u);
  EXPECT_GT(outcome.sent_tokens, 50);

  // Every periodic and end-of-run invariant held.
  EXPECT_TRUE(outcome.report.violations.empty())
      << outcome.report.violations.front();

  // Everything quiesced: no transfer left in limbo.
  EXPECT_EQ(outcome.pending, 0u);

  if (GetParam() != Reliability::kOff) {
    // Dedup modes: at-most-once activation, even across ack loss and crashes.
    for (const auto& [token, count] : outcome.activations) {
      EXPECT_LE(count, 1) << "token " << token;
    }
  }
  if (GetParam() == Reliability::kReliable) {
    // Every accepted transfer settled exactly one way.
    const auto& s = outcome.stats;
    EXPECT_EQ(s.transfers_reliable, s.transfers_acked + s.transfers_nacked +
                                        s.transfers_expired +
                                        s.transfers_abandoned);
    // The storm forced the retry machinery to do real work.
    EXPECT_GT(s.retries_sent, 0u);
    // Most transfers still made it (the storm outages are shorter than the
    // retry budget).
    EXPECT_GT(s.transfers_acked, static_cast<uint64_t>(outcome.sent_tokens) / 2);
  }
}

TEST(ChaosSoakTest, DeterministicForFixedSeed) {
  SoakOutcome first = RunSoak(Reliability::kReliable, /*seed=*/4242);
  SoakOutcome second = RunSoak(Reliability::kReliable, /*seed=*/4242);
  EXPECT_EQ(first.sent_tokens, second.sent_tokens);
  EXPECT_EQ(first.stats.transfers_acked, second.stats.transfers_acked);
  EXPECT_EQ(first.stats.retries_sent, second.stats.retries_sent);
  EXPECT_EQ(first.stats.duplicates_suppressed,
            second.stats.duplicates_suppressed);
  EXPECT_EQ(first.report.crashes, second.report.crashes);
  EXPECT_EQ(first.activations, second.activations);
  // The entire unified snapshot — kernel, network, place, chaos, and trace
  // metrics — is byte-identical for a fixed seed.
  EXPECT_EQ(first.metrics_text, second.metrics_text);
}

}  // namespace
}  // namespace tacoma
