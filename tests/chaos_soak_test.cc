// Chaos soak: the ChaosHarness drives seeded site-crash, link-cut, and
// loss-flap storms against a reliable-transport workload while invariants
// are checked throughout.  Registered in ctest with a fixed seed and an
// explicit timeout (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "sim/chaos.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

struct SoakOutcome {
  std::map<std::string, int> activations;  // Per token.
  Kernel::Stats stats;
  size_t pending = 0;
  ChaosHarness::Report report;
  int sent_tokens = 0;
  std::string metrics_text;  // Unified snapshot (kernel + chaos) at quiesce.
  // Admission + effect-monitor counters at quiesce (summed over up places).
  int64_t admission_checks = 0;
  int64_t manifest_violations_static = 0;
};

SoakOutcome RunSoak(Reliability mode, uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = mode;
  Kernel kernel(options);
  auto sites = BuildGrid(&kernel.net(), 3, 3);
  kernel.AdoptNetworkSites();

  SoakOutcome outcome;
  kernel.AddPlaceInitializer([&outcome](Place& place) {
    place.RegisterAgent("sink", [&outcome](Place&, Briefcase& bc) {
      ++outcome.activations[bc.GetString("TOKEN").value_or("?")];
      return OkStatus();
    });
    place.RegisterAgent("morgue", [](Place&, Briefcase&) { return OkStatus(); });
  });

  ChaosOptions chaos_options;
  chaos_options.seed = seed * 2654435761 + 1;
  chaos_options.horizon = 2 * kSecond;
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.SetSiteHooks([&kernel](SiteId s) { kernel.CrashSite(s); },
                     [&kernel](SiteId s) { kernel.RestartSite(s); });
  // Storm activity joins the kernel's unified registry, so one snapshot holds
  // both the faults injected and the transport's response to them.
  chaos.RegisterMetrics(&kernel.metrics());

  chaos.AddInvariant("at-most-once activation", [&outcome] {
    for (const auto& [token, count] : outcome.activations) {
      if (count > 1) {
        return InternalError("token " + token + " activated " +
                             std::to_string(count) + " times");
      }
    }
    return OkStatus();
  });
  chaos.AddInvariant("reliable transfer conservation", [&kernel] {
    const auto& s = kernel.stats();
    uint64_t settled = s.transfers_acked + s.transfers_nacked +
                       s.transfers_expired + s.transfers_abandoned;
    if (settled + kernel.pending_transfers() != s.transfers_reliable) {
      return InternalError("conservation broken: " + std::to_string(settled) +
                           " settled + " +
                           std::to_string(kernel.pending_transfers()) +
                           " pending != " +
                           std::to_string(s.transfers_reliable) + " accepted");
    }
    return OkStatus();
  });
  // Analyzer soundness under fire: an activation whose manifest had
  // dynamic_targets=false must never perform an effect outside it — any such
  // drift is an analyzer bug, not agent behaviour.
  chaos.AddInvariant("effect manifests sound", [&kernel] {
    int64_t drift =
        kernel.metrics().Value("tacl.manifest_violations_static").value_or(0);
    if (drift != 0) {
      return InternalError("statically-bounded activations drifted from their "
                           "manifests " +
                           std::to_string(drift) + " times");
    }
    return OkStatus();
  });
  chaos.AddInvariant("network stats sane", [&kernel] {
    const auto& n = kernel.net().stats();
    if (n.messages_delivered > n.messages_sent) {
      return InternalError("delivered > sent");
    }
    if (n.messages_lost > n.messages_dropped) {
      return InternalError("lost > dropped");
    }
    return OkStatus();
  });

  // Workload: a steady drizzle of uniquely-tokened transfers between random
  // up sites, all of it racing the storm.
  Rng workload_rng(seed * 7919 + 3);
  for (SimTime t = 5 * kMillisecond; t < chaos_options.horizon;
       t += 10 * kMillisecond) {
    kernel.sim().At(t, [&kernel, &workload_rng, &outcome, &sites] {
      SiteId from = sites[workload_rng.Uniform(sites.size())];
      SiteId to = sites[workload_rng.Uniform(sites.size())];
      if (from == to || kernel.place(from) == nullptr) {
        return;
      }
      Briefcase bc;
      bc.SetString("TOKEN", "t" + std::to_string(outcome.sent_tokens));
      TransferOptions transfer_options;
      transfer_options.dead_letter = "morgue";
      // Every third transfer is a TACL agent, so the admission path and the
      // runtime effect monitor run under the storm too.  The script is fully
      // static (dynamic_targets=false): any drift from its manifest would be
      // an analyzer soundness bug.
      const char* contact = "sink";
      if (outcome.sent_tokens % 3 == 0) {
        bc.folder(kCodeFolder).PushBackString(
            "cab_append soak TOKENS [bc_get TOKEN]\n");
        contact = "ag_tacl";
      }
      if (kernel.TransferAgent(from, to, contact, bc, transfer_options).ok()) {
        ++outcome.sent_tokens;
      }
    });
  }

  chaos.Start();
  kernel.sim().Run();  // Storm + workload + post-horizon quiesce.
  EXPECT_TRUE(chaos.CheckNow().ok());

  outcome.stats = kernel.stats();
  outcome.pending = kernel.pending_transfers();
  outcome.report = chaos.report();
  outcome.metrics_text = kernel.metrics().TextSnapshot();
  outcome.admission_checks =
      kernel.metrics().Value("place.admission_checks").value_or(0);
  outcome.manifest_violations_static =
      kernel.metrics().Value("tacl.manifest_violations_static").value_or(0);

  // One-line soak summary so a green run still shows how much work happened.
  const ChaosHarness::Report& r = outcome.report;
  std::printf(
      "[soak] chaos seed=%llu events=%llu (crashes=%llu cuts=%llu flaps=%llu) "
      "transfers=%d acked=%llu retries=%llu invariant_checks=%llu "
      "violations=%zu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(r.crashes + r.cuts + r.loss_flaps),
      static_cast<unsigned long long>(r.crashes),
      static_cast<unsigned long long>(r.cuts),
      static_cast<unsigned long long>(r.loss_flaps), outcome.sent_tokens,
      static_cast<unsigned long long>(outcome.stats.transfers_acked),
      static_cast<unsigned long long>(outcome.stats.retries_sent),
      static_cast<unsigned long long>(r.checks), r.violations.size());
  return outcome;
}

class ChaosSoakTest : public ::testing::TestWithParam<Reliability> {};

INSTANTIATE_TEST_SUITE_P(Modes, ChaosSoakTest,
                         ::testing::Values(Reliability::kOff,
                                           Reliability::kAtMostOnce,
                                           Reliability::kReliable),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Reliability::kOff:
                               return "Off";
                             case Reliability::kAtMostOnce:
                               return "AtMostOnce";
                             default:
                               return "Reliable";
                           }
                         });

TEST_P(ChaosSoakTest, StormKeepsInvariants) {
  SoakOutcome outcome = RunSoak(GetParam(), /*seed=*/1995);

  // The storm actually stormed.
  EXPECT_GT(outcome.report.crashes, 0u);
  EXPECT_GT(outcome.report.cuts, 0u);
  EXPECT_GT(outcome.report.loss_flaps, 0u);
  EXPECT_GT(outcome.report.checks, 0u);
  EXPECT_GT(outcome.sent_tokens, 50);

  // Every periodic and end-of-run invariant held.
  EXPECT_TRUE(outcome.report.violations.empty())
      << outcome.report.violations.front();

  // Everything quiesced: no transfer left in limbo.
  EXPECT_EQ(outcome.pending, 0u);

  // The TACL slice of the workload went through admission, and no
  // statically-bounded activation ever drifted from its effect manifest.
  EXPECT_GT(outcome.admission_checks, 0);
  EXPECT_EQ(outcome.manifest_violations_static, 0);

  if (GetParam() != Reliability::kOff) {
    // Dedup modes: at-most-once activation, even across ack loss and crashes.
    for (const auto& [token, count] : outcome.activations) {
      EXPECT_LE(count, 1) << "token " << token;
    }
  }
  if (GetParam() == Reliability::kReliable) {
    // Every accepted transfer settled exactly one way.
    const auto& s = outcome.stats;
    EXPECT_EQ(s.transfers_reliable, s.transfers_acked + s.transfers_nacked +
                                        s.transfers_expired +
                                        s.transfers_abandoned);
    // The storm forced the retry machinery to do real work.
    EXPECT_GT(s.retries_sent, 0u);
    // Most transfers still made it (the storm outages are shorter than the
    // retry budget).
    EXPECT_GT(s.transfers_acked, static_cast<uint64_t>(outcome.sent_tokens) / 2);
  }
}

// Disk-fault storm: site crashes preceded by armed disks, so flushes and
// write-ahead appends die mid-operation (torn writes, failed renames).  The
// invariant is cabinet integrity, not completeness: a recovered cabinet holds
// a subset of the tokens issued to it, each at most once — a crashed Compact
// must never double-apply, and a torn append tail must never invent records.
TEST(ChaosSoakTest, DiskFaultStormKeepsCabinetsClean) {
  KernelOptions options;
  options.seed = 77;
  options.cabinet_write_ahead = true;
  Kernel kernel(options);
  auto sites = BuildGrid(&kernel.net(), 2, 2);
  kernel.AdoptNetworkSites();

  ChaosOptions chaos_options;
  chaos_options.seed = 777;
  chaos_options.horizon = 2 * kSecond;
  chaos_options.mean_cut_interval = 0;   // Storage story only: no link faults,
  chaos_options.mean_flap_interval = 0;  // the storm is crashes + dying disks.
  chaos_options.disk_fault_prob = 0.8;
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.SetSiteHooks([&kernel](SiteId s) { kernel.CrashSite(s); },
                     [&kernel](SiteId s) { kernel.RestartSite(s); });
  chaos.SetDiskArmHook([&kernel](SiteId s, uint64_t ops, double tear) {
    kernel.ArmDiskCrash(s, ops, tear);
  });
  chaos.RegisterMetrics(&kernel.metrics());

  // Every token ever issued, per site; tokens are globally unique.
  std::vector<std::set<std::string>> issued(sites.size());
  auto check_cabinets = [&] {
    for (size_t i = 0; i < sites.size(); ++i) {
      Place* place = kernel.place(sites[i]);
      if (place == nullptr) {
        continue;  // Down right now; checked again after restart.
      }
      std::set<std::string> seen;
      for (const std::string& token :
           place->Cabinet("tokens").ListStrings("SEEN")) {
        if (!seen.insert(token).second) {
          return InternalError("duplicate token " + token);
        }
        if (!issued[i].contains(token)) {
          return InternalError("token " + token + " never issued to site " +
                               std::to_string(i));
        }
      }
    }
    return OkStatus();
  };
  chaos.AddInvariant("cabinet holds a deduplicated subset", check_cabinets);

  // Workload: unique tokens appended at every up site, with periodic flushes
  // racing the armed disks.  Failed flushes are expected mid-storm (the disk
  // is dying); the sticky WAL-error machinery owns surfacing that.
  int next_token = 0;
  for (SimTime t = 2 * kMillisecond; t < chaos_options.horizon;
       t += 5 * kMillisecond) {
    kernel.sim().At(t, [&kernel, &sites, &issued, &next_token] {
      for (size_t i = 0; i < sites.size(); ++i) {
        Place* place = kernel.place(sites[i]);
        if (place == nullptr) {
          continue;
        }
        std::string token = "t" + std::to_string(next_token++);
        place->Cabinet("tokens").AppendString("SEEN", token);
        issued[i].insert(token);
      }
    });
  }
  for (SimTime t = 25 * kMillisecond; t < chaos_options.horizon;
       t += 25 * kMillisecond) {
    kernel.sim().At(t, [&kernel, &sites] {
      for (SiteId site : sites) {
        if (kernel.place(site) != nullptr) {
          (void)kernel.place(site)->Cabinet("tokens").Flush();
        }
      }
    });
  }

  chaos.Start();
  kernel.sim().Run();
  EXPECT_TRUE(chaos.CheckNow().ok());
  EXPECT_TRUE(chaos.report().violations.empty())
      << chaos.report().violations.front();

  // The storm exercised the machinery it was aimed at.
  EXPECT_GT(chaos.report().crashes, 0u);
  EXPECT_GT(chaos.report().disk_faults, 0u);
  EXPECT_GT(kernel.metrics().Value("storage.recoveries").value_or(0), 0);
  EXPECT_GT(kernel.metrics().Value("storage.records_replayed").value_or(0), 0);

  // After the horizon every site is back up with a recovered cabinet; each
  // one kept at least the tokens of its last successful flush... which the
  // subset invariant already bounds from above.  Spot-check it is non-trivial.
  uint64_t recovered_tokens = 0;
  for (SiteId site : sites) {
    ASSERT_NE(kernel.place(site), nullptr);
    recovered_tokens += kernel.place(site)->Cabinet("tokens").Size("SEEN");
  }
  EXPECT_GT(recovered_tokens, 0u);
  std::printf(
      "[soak] disk storm: crashes=%llu disk_faults=%llu recoveries=%lld "
      "replayed=%lld torn_tails=%lld stale_dropped=%lld wal_errors=%lld "
      "tokens_recovered=%llu/%d\n",
      static_cast<unsigned long long>(chaos.report().crashes),
      static_cast<unsigned long long>(chaos.report().disk_faults),
      static_cast<long long>(
          kernel.metrics().Value("storage.recoveries").value_or(0)),
      static_cast<long long>(
          kernel.metrics().Value("storage.records_replayed").value_or(0)),
      static_cast<long long>(
          kernel.metrics().Value("storage.torn_tails").value_or(0)),
      static_cast<long long>(
          kernel.metrics().Value("storage.stale_records_dropped").value_or(0)),
      static_cast<long long>(
          kernel.metrics().Value("storage.wal_append_errors").value_or(0)),
      static_cast<unsigned long long>(recovered_tokens), next_token);
}

TEST(ChaosSoakTest, DeterministicForFixedSeed) {
  SoakOutcome first = RunSoak(Reliability::kReliable, /*seed=*/4242);
  SoakOutcome second = RunSoak(Reliability::kReliable, /*seed=*/4242);
  EXPECT_EQ(first.sent_tokens, second.sent_tokens);
  EXPECT_EQ(first.stats.transfers_acked, second.stats.transfers_acked);
  EXPECT_EQ(first.stats.retries_sent, second.stats.retries_sent);
  EXPECT_EQ(first.stats.duplicates_suppressed,
            second.stats.duplicates_suppressed);
  EXPECT_EQ(first.report.crashes, second.report.crashes);
  EXPECT_EQ(first.activations, second.activations);
  // The entire unified snapshot — kernel, network, place, chaos, and trace
  // metrics — is byte-identical for a fixed seed.
  EXPECT_EQ(first.metrics_text, second.metrics_text);
}

}  // namespace
}  // namespace tacoma
