// Content-addressed CODE cache: the CodeCache store itself, the kernel's
// stub/NeedCode transfer protocol around it, and the cache-off determinism
// guarantee (bit-identical traces and metrics for a seeded run).
#include "core/codecache.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/kernel.h"
#include "crypto/sha256.h"
#include "serial/encoder.h"
#include "util/bytes.h"

namespace tacoma {
namespace {

Folder MakeCode(const std::string& body) {
  Folder f;
  f.PushBackString(body);
  return f;
}

SharedBytes EncodeFolder(const Folder& f) {
  Encoder enc;
  f.Encode(&enc);
  return enc.TakeShared();
}

TEST(CodeCacheTest, PutGetRoundTrip) {
  CodeCache cache(4);
  Folder code = MakeCode("proc f {} { return 1 }");
  std::string digest = CodeCache::DigestOf(code);
  cache.Put(digest, code, EncodeFolder(code));
  const Folder* got = cache.Get(digest);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, code);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CodeCacheTest, MissOnUnknownDigest) {
  CodeCache cache(4);
  EXPECT_EQ(cache.Get(std::string(64, 'a')), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CodeCacheTest, LruEvictsOldestAndGetRefreshes) {
  CodeCache cache(2);
  Folder a = MakeCode("agent a");
  Folder b = MakeCode("agent b");
  Folder c = MakeCode("agent c");
  std::string da = CodeCache::DigestOf(a);
  std::string db = CodeCache::DigestOf(b);
  std::string dc = CodeCache::DigestOf(c);
  cache.Put(da, a, EncodeFolder(a));
  cache.Put(db, b, EncodeFolder(b));
  // Touch `a` so `b` becomes the LRU entry; inserting `c` must evict `b`.
  ASSERT_NE(cache.Get(da), nullptr);
  cache.Put(dc, c, EncodeFolder(c));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(da));
  EXPECT_FALSE(cache.Contains(db));
  EXPECT_TRUE(cache.Contains(dc));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CodeCacheTest, ShrinkingCapacityEvicts) {
  CodeCache cache(4);
  Folder a = MakeCode("agent a");
  Folder b = MakeCode("agent b");
  cache.Put(CodeCache::DigestOf(a), a, EncodeFolder(a));
  cache.Put(CodeCache::DigestOf(b), b, EncodeFolder(b));
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  // The later insert is the more recently used entry and survives.
  EXPECT_TRUE(cache.Contains(CodeCache::DigestOf(b)));
}

TEST(CodeCacheTest, DigestMismatchEvictsAndMisses) {
  CodeCache cache(4);
  Folder real = MakeCode("the real agent");
  Folder corrupt = MakeCode("not that agent at all");
  std::string digest = CodeCache::DigestOf(real);
  // Plant an entry whose content does not hash to its key (Put trusts the
  // caller; Get must not).
  cache.Put(digest, corrupt, EncodeFolder(corrupt));
  EXPECT_EQ(cache.Get(digest), nullptr);
  EXPECT_EQ(cache.stats().digest_mismatches, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_FALSE(cache.Contains(digest));
}

// --- Kernel protocol -------------------------------------------------------

// A two-site kernel with the cache on; `hopper` jumps once per launch so
// every journey is launch-at-a, transfer a->b.
class CodeCacheKernelTest : public ::testing::Test {
 protected:
  static KernelOptions Options() {
    KernelOptions options;
    options.seed = 7;
    options.reliability.mode = Reliability::kReliable;
    options.code_cache.enabled = true;
    return options;
  }

  explicit CodeCacheKernelTest(KernelOptions options = Options()) : kernel_(options) {
    a_ = kernel_.AddSite("a");
    b_ = kernel_.AddSite("b");
    kernel_.net().AddLink(a_, b_, LinkParams{kMillisecond, 1'000'000});
  }

  // Launches an agent at `a` that jumps to `b` and bumps an arrival counter.
  void RunJourney(const std::string& marker) {
    Briefcase bc;
    bc.SetString("AGENT", marker);
    bc.folder("HOPS").PushBackString("b");
    Status launched = kernel_.LaunchAgent(
        a_, "if {[bc_len HOPS] > 0} { jump [bc_pop HOPS] } else { cab_append arrivals N 1 }",
        bc);
    ASSERT_TRUE(launched.ok()) << launched.ToString();
    kernel_.sim().Run();
  }

  uint64_t Arrivals() {
    Place* place = kernel_.place(b_);
    if (place == nullptr || !place->HasCabinet("arrivals")) {
      return 0;
    }
    return place->Cabinet("arrivals").List("N").size();
  }

  Kernel kernel_;
  SiteId a_ = 0;
  SiteId b_ = 0;
};

TEST_F(CodeCacheKernelTest, SecondJourneyWithSameCodeShipsStub) {
  RunJourney("one");
  EXPECT_EQ(kernel_.code_cache_stats().full_sends, 1u);
  EXPECT_EQ(kernel_.code_cache_stats().stub_sends, 0u);
  uint64_t full_bytes = kernel_.net().stats().bytes_on_wire;

  kernel_.net().ResetStats();
  RunJourney("two");
  EXPECT_EQ(kernel_.code_cache_stats().stub_sends, 1u);
  EXPECT_EQ(kernel_.code_cache_stats().need_code_sent, 0u);
  EXPECT_GT(kernel_.code_cache_stats().bytes_saved, 0u);
  EXPECT_LT(kernel_.net().stats().bytes_on_wire, full_bytes);
  EXPECT_EQ(Arrivals(), 2u);

  // The receiver resolved the stub from its cache.
  EXPECT_GE(kernel_.place(b_)->code_cache().stats().hits, 1u);
}

TEST_F(CodeCacheKernelTest, EvictedDigestFallsBackViaNeedCode) {
  // Warm the belief, then evict everything at the receiver: the sender still
  // stubs, the receiver misses and answers NeedCode, and the full-source
  // resend completes the delivery.  No journey is lost to the optimisation.
  RunJourney("one");
  kernel_.place(b_)->set_code_cache_capacity(1);
  Folder unrelated = MakeCode("something else entirely");
  kernel_.place(b_)->code_cache().Put(CodeCache::DigestOf(unrelated), unrelated,
                                      EncodeFolder(unrelated));

  RunJourney("two");
  const auto& cs = kernel_.code_cache_stats();
  EXPECT_EQ(cs.stub_sends, 1u);
  EXPECT_GE(cs.need_code_sent, 1u);
  EXPECT_GE(cs.full_resends, 1u);
  EXPECT_EQ(Arrivals(), 2u);
}

TEST_F(CodeCacheKernelTest, CorruptCacheEntryIsRejectedAndRecovered) {
  RunJourney("one");
  // Corrupt the receiver's entry in place: replace the journey code's digest
  // with different content.  The stub must NOT activate the wrong agent.
  Place* b_place = kernel_.place(b_);
  ASSERT_EQ(b_place->code_cache().size(), 1u);
  // Recover the digest the sender will stub with: re-derive it from a fresh
  // launch briefcase's CODE folder.
  Briefcase probe;
  probe.folder(kCodeFolder).PushBackString(
      "if {[bc_len HOPS] > 0} { jump [bc_pop HOPS] } else { cab_append arrivals N 1 }");
  std::string digest = CodeCache::DigestOf(probe.folder(kCodeFolder));
  Folder corrupt = MakeCode("cab_set arrivals HIJACKED 1");
  b_place->code_cache().Put(digest, corrupt, EncodeFolder(corrupt));

  RunJourney("two");
  const auto& cs = kernel_.code_cache_stats();
  EXPECT_GE(cs.need_code_sent, 1u);
  EXPECT_GE(cs.full_resends, 1u);
  EXPECT_GE(b_place->code_cache().stats().digest_mismatches, 1u);
  EXPECT_EQ(Arrivals(), 2u);
  EXPECT_FALSE(kernel_.place(b_)->Cabinet("arrivals").HasFolder("HIJACKED"));
}

TEST_F(CodeCacheKernelTest, RestartInvalidatesSenderBeliefs) {
  RunJourney("one");
  EXPECT_EQ(kernel_.code_cache_stats().full_sends, 1u);

  // The crash empties b's cache; the restart hook must drop a's beliefs
  // about b, so the next journey ships full source again (no stub, no
  // NeedCode round trip).
  kernel_.CrashSite(b_);
  kernel_.RestartSite(b_);
  EXPECT_GE(kernel_.code_cache_stats().invalidations, 1u);

  RunJourney("two");
  const auto& cs = kernel_.code_cache_stats();
  EXPECT_EQ(cs.stub_sends, 0u);
  EXPECT_EQ(cs.full_sends, 2u);
  EXPECT_EQ(cs.need_code_sent, 0u);
  EXPECT_EQ(Arrivals(), 1u);  // Pre-crash arrivals were volatile and died with b.
}

// Fire-and-forget stubs have no pending entry; NeedCode recovery must come
// from the bounded stub-send records.
TEST(CodeCacheFireAndForgetTest, NeedCodeRecoveryWithoutPendingEntry) {
  KernelOptions options;
  options.seed = 11;
  options.reliability.mode = Reliability::kOff;
  options.code_cache.enabled = true;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("a");
  SiteId b = kernel.AddSite("b");
  kernel.net().AddLink(a, b, LinkParams{kMillisecond, 1'000'000});

  auto journey = [&](const char* marker) {
    Briefcase bc;
    bc.SetString("AGENT", marker);
    bc.folder("HOPS").PushBackString("b");
    (void)kernel.LaunchAgent(
        a, "if {[bc_len HOPS] > 0} { jump [bc_pop HOPS] } else { cab_append arrivals N 1 }",
        bc);
    kernel.sim().Run();
  };
  journey("one");
  // Empty b's cache under a's feet: the next stub must miss and recover.
  kernel.place(b)->set_code_cache_capacity(1);
  Folder unrelated = MakeCode("other agent");
  kernel.place(b)->code_cache().Put(CodeCache::DigestOf(unrelated), unrelated,
                                    EncodeFolder(unrelated));
  journey("two");

  const auto& cs = kernel.code_cache_stats();
  EXPECT_EQ(cs.stub_sends, 1u);
  EXPECT_GE(cs.need_code_sent, 1u);
  EXPECT_GE(cs.full_resends, 1u);
  EXPECT_EQ(kernel.place(b)->Cabinet("arrivals").List("N").size(), 2u);
}

// --- Cache-off determinism -------------------------------------------------
//
// The optimisation must be invisible when disabled: for a fixed seed the
// trace JSON is bit-identical to the pre-cache kernel's, and the metrics
// snapshot is bit-identical once the (unconditionally registered, all-zero)
// code_cache.* keys are stripped.  The golden hashes below were captured
// from the tree immediately before the code cache landed; a change here
// means the default-off wire or trace behaviour drifted.
TEST(CodeCacheDeterminismTest, CacheOffMatchesPreCacheGolden) {
  KernelOptions options;
  options.seed = 1995;
  options.reliability.mode = Reliability::kReliable;
  options.code_cache.enabled = false;  // Explicit: env must not leak in.
  Kernel k(options);
  SiteId s0 = k.AddSite("s0");
  SiteId s1 = k.AddSite("s1");
  SiteId s2 = k.AddSite("s2");
  SiteId s3 = k.AddSite("s3");
  k.net().AddLink(s0, s1, LinkParams{2 * kMillisecond, 1'000'000});
  k.net().AddLink(s1, s2, LinkParams{2 * kMillisecond, 1'000'000});
  k.net().AddLink(s2, s3, LinkParams{2 * kMillisecond, 1'000'000});
  k.net().SetLinkLoss(s1, s2, 0.10);

  const char* walker = R"(
    cab_append visits SEEN [site]
    if {[bc_len ITINERARY] > 0} {
      jump [bc_pop ITINERARY]
    } else {
      cab_set visits DONE 1
    }
  )";
  Briefcase bc;
  bc.SetString("AGENT", "walker");
  for (const char* hop : {"s1", "s2", "s3", "s1", "s0"}) {
    bc.folder("ITINERARY").PushBackString(hop);
  }
  ASSERT_TRUE(k.LaunchAgent(s0, walker, bc).ok());
  k.sim().Run();

  EXPECT_EQ(DigestToHex(Sha256::Hash(k.trace().ChromeTraceJson())),
            "51d7aec700eb754789ce2f86b71042d6a403435200b8ed7afe97141b3938a56f");

  // Keys added after the golden was captured (all unconditionally registered)
  // are stripped alongside the code_cache.* ones: storage.* landed with the
  // crash-atomic persistence work, place.admission_*/tacl.manifest_* with the
  // effect-manifest admission work, account.*/sampler.*/flight.* with the
  // continuous-telemetry work, vm.*/tacl.parse_cache_evictions with the
  // bytecode VM (whose step accounting this hash still covers: the place.*
  // and kernel.* lines must match the pre-VM golden byte-for-byte), and
  // net.transport.* with the TCP transport seam (all-zero here: this run
  // never leaves the sim backend).
  std::istringstream lines(k.metrics().TextSnapshot());
  std::string stripped;
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("code_cache.", 0) != 0 && line.rfind("storage.", 0) != 0 &&
        line.rfind("place.admission_", 0) != 0 &&
        line.rfind("tacl.manifest_", 0) != 0 &&
        line.rfind("account.", 0) != 0 && line.rfind("sampler.", 0) != 0 &&
        line.rfind("flight.", 0) != 0 && line.rfind("vm.", 0) != 0 &&
        line.rfind("tacl.parse_cache_evictions", 0) != 0 &&
        line.rfind("net.transport.", 0) != 0) {
      stripped += line;
      stripped += '\n';
    }
  }
  EXPECT_EQ(DigestToHex(Sha256::Hash(stripped)),
            "fadf3710f6c3f60039a616ca462a8d35fc080b5f187c6bd0fa82989507c8e715");

  EXPECT_EQ(k.net().stats().bytes_on_wire, 1898u);
  EXPECT_EQ(k.net().stats().messages_sent, 11u);
  EXPECT_TRUE(k.place(s0)->Cabinet("visits").HasFolder("DONE"));
  // And the cache counters really were inert.
  EXPECT_EQ(k.code_cache_stats().stub_sends, 0u);
  EXPECT_EQ(k.code_cache_stats().full_sends, 0u);
}

}  // namespace
}  // namespace tacoma
