// Crash-point-injected recovery testing (see docs/persistence.md).
//
// The property under test: whatever single disk operation a crash lands on —
// a torn write, a partial append, a failed rename, mid-Compact or mid-append
// — recovering the cabinet afterwards yields a clean PREFIX of the mutation
// history.  Never a duplicated mutation (the pre-fix Compact/replay
// double-apply), never a reordered one, and never less than what a
// successful Flush() promised was durable.
//
// The sweep is exhaustive: a dry run counts the workload's mutating disk
// operations N, then the workload is re-run N times with the CrashDisk armed
// at every operation index k in [0, N).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cabinet.h"
#include "core/kernel.h"
#include "sim/chaos.h"
#include "storage/crash_disk.h"
#include "storage/disk.h"
#include "storage/disk_log.h"

namespace tacoma {
namespace {

// --- CrashDisk unit behaviour ----------------------------------------------------

TEST(CrashDiskTest, TransparentWhileUnarmed) {
  MemDisk mem;
  CrashDisk disk(&mem);
  ASSERT_TRUE(disk.Write("f", ToBytes("abc")).ok());
  ASSERT_TRUE(disk.Append("f", ToBytes("def")).ok());
  EXPECT_EQ(ToString(*disk.Read("f")), "abcdef");
  ASSERT_TRUE(disk.Rename("f", "g").ok());
  ASSERT_TRUE(disk.Remove("g").ok());
  EXPECT_EQ(disk.mutating_ops(), 4u);
  EXPECT_FALSE(disk.crashed());
}

TEST(CrashDiskTest, ArmedWriteTearsPayloadThenEverythingFails) {
  MemDisk mem;
  CrashDisk disk(&mem);
  disk.Arm(/*ops_from_now=*/1, /*tear_fraction=*/0.5);
  ASSERT_TRUE(disk.Write("a", ToBytes("survives")).ok());
  Status torn = disk.Write("b", ToBytes("123456"));
  EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(disk.crashed());
  // Half the payload landed before the fault: the torn-write model.
  EXPECT_EQ(ToString(*mem.Read("b")), "123");
  // The process is dead until the restart remounts the disk.
  EXPECT_FALSE(disk.Write("c", ToBytes("x")).ok());
  EXPECT_FALSE(disk.Read("a").ok());
  EXPECT_FALSE(disk.Exists("a"));
  disk.Reset();
  EXPECT_FALSE(disk.crashed());
  EXPECT_EQ(ToString(*disk.Read("a")), "survives");
}

TEST(CrashDiskTest, FailedRenameHasNoEffect) {
  MemDisk mem;
  CrashDisk disk(&mem);
  ASSERT_TRUE(disk.Write("src", ToBytes("s")).ok());
  ASSERT_TRUE(disk.Write("dst", ToBytes("d")).ok());
  disk.Arm(0);
  EXPECT_FALSE(disk.Rename("src", "dst").ok());
  disk.Reset();
  // Atomic op: both names exactly as they were.
  EXPECT_EQ(ToString(*disk.Read("src")), "s");
  EXPECT_EQ(ToString(*disk.Read("dst")), "d");
}

// --- The crash-point sweep -------------------------------------------------------

// One scripted cabinet workload, shared by the dry run, the crash runs, and
// the prefix-state oracle.
struct Step {
  enum Kind { kAppend, kSet, kEraseElement, kEraseFolder, kFlush } kind;
  std::string folder;
  std::string value;
};

std::vector<Step> Workload() {
  return {
      {Step::kAppend, "LOG", "a0"},
      {Step::kAppend, "LOG", "a1"},
      {Step::kSet, "STATE", "s0"},
      {Step::kFlush, "", ""},
      {Step::kAppend, "LOG", "a2"},
      {Step::kEraseElement, "LOG", "a1"},
      {Step::kSet, "STATE", "s1"},
      {Step::kFlush, "", ""},
      {Step::kAppend, "LOG", "a3"},
      {Step::kAppend, "SCRATCH", "tmp"},
      {Step::kEraseFolder, "SCRATCH", ""},
      {Step::kAppend, "LOG", "a4"},
  };
}

// Applies one step to a cabinet; Flush status is returned (mutations return
// OK — their durability is what the sweep probes).
Status ApplyStep(FileCabinet* cab, const Step& step) {
  switch (step.kind) {
    case Step::kAppend:
      cab->AppendString(step.folder, step.value);
      return OkStatus();
    case Step::kSet:
      cab->SetString(step.folder, step.value);
      return OkStatus();
    case Step::kEraseElement:
      cab->EraseElement(step.folder, ToBytes(step.value));
      return OkStatus();
    case Step::kEraseFolder:
      cab->EraseFolder(step.folder);
      return OkStatus();
    case Step::kFlush:
      return cab->Flush();
  }
  return OkStatus();
}

// The oracle: serialized cabinet state after every mutation-count prefix of
// the workload (flushes don't mutate, so prefixes are counted in mutations).
// prefix_states[i] = state after the first i mutations.
std::vector<Bytes> PrefixStates() {
  std::vector<Bytes> states;
  FileCabinet cab("oracle");
  states.push_back(cab.Serialize());
  for (const Step& step : Workload()) {
    if (step.kind == Step::kFlush) {
      continue;
    }
    (void)ApplyStep(&cab, step);
    states.push_back(cab.Serialize());
  }
  return states;
}

// Runs the workload against a write-ahead cabinet on `disk`, stopping early
// if the disk dies.  Returns the durability floor: the number of leading
// mutations guaranteed recoverable (every mutation whose write-ahead append
// succeeded, which subsumes everything a successful Flush covered).
size_t RunWorkload(CrashDisk* disk, StorageStats* stats) {
  FileCabinet cab("swept");
  cab.AttachStorage(std::make_unique<DiskLog>(disk, "cab.swept"),
                    /*write_ahead=*/true);
  cab.set_storage_stats(stats);
  size_t durable_floor = 0;
  size_t applied = 0;
  for (const Step& step : Workload()) {
    if (disk->crashed()) {
      break;  // The site is dead; no more work reaches the disk.
    }
    (void)ApplyStep(&cab, step);
    if (step.kind != Step::kFlush) {
      ++applied;
      if (cab.wal_error().ok()) {
        durable_floor = applied;
      }
    }
  }
  return durable_floor;
}

TEST(CrashPointSweepTest, EveryCrashPointRecoversToAPrefix) {
  // Dry run: count the workload's mutating disk operations.
  uint64_t total_ops = 0;
  {
    MemDisk mem;
    CrashDisk disk(&mem);
    StorageStats stats;
    size_t floor = RunWorkload(&disk, &stats);
    total_ops = disk.mutating_ops();
    EXPECT_EQ(floor, 10u);  // All mutations durable when nothing fails.
  }
  // 12 steps: 10 mutating appends + 2 flushes at 3 ops each (tmp, rename,
  // clear).  If the workload or the flush write pattern changes, the sweep
  // below still covers it — this just pins that it exercises what we think.
  ASSERT_EQ(total_ops, 16u);

  const std::vector<Bytes> prefixes = PrefixStates();

  for (uint64_t k = 0; k < total_ops; ++k) {
    for (double tear : {0.0, 0.5, 1.0}) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + " tear " +
                   std::to_string(tear));
      MemDisk mem;
      CrashDisk disk(&mem);
      StorageStats stats;
      disk.Arm(k, tear);
      size_t durable_floor = RunWorkload(&disk, &stats);
      ASSERT_TRUE(disk.crashed());

      // Restart: remount the disk and recover a fresh cabinet from it.
      disk.Reset();
      FileCabinet recovered("swept");
      recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.swept"),
                              /*write_ahead=*/true);
      recovered.set_storage_stats(&stats);
      ASSERT_TRUE(recovered.Recover().ok());

      // The recovered state must be exactly some prefix of history.  Distinct
      // prefixes can serialize identically (append-then-erase-folder returns
      // to an earlier state), so take the longest match.
      Bytes state = recovered.Serialize();
      size_t match = prefixes.size();
      for (size_t i = prefixes.size(); i-- > 0;) {
        if (prefixes[i] == state) {
          match = i;
          break;
        }
      }
      ASSERT_LT(match, prefixes.size())
          << "recovered state matches no prefix of the mutation history";
      // ...and no shorter than what the write-ahead log acknowledged.
      EXPECT_GE(match, durable_floor);

      // Recovery is a working state: the cabinet accepts new durable work.
      recovered.AppendString("LOG", "post-crash");
      EXPECT_TRUE(recovered.Flush().ok());
    }
  }
}

TEST(CrashPointSweepTest, CompactLogClearCrashDoesNotDoubleApply) {
  // The regression the tentpole fixes.  Ops: two appends (0, 1), then Flush's
  // Compact = tmp write (2), rename (3), log clear (4).  Crashing at op 4
  // leaves the new snapshot AND the old records on disk — the pre-fix
  // recovery replayed those records on top of the snapshot, doubling every
  // element ("a0 a1 a0 a1"); epoch filtering must drop them instead.
  MemDisk mem;
  CrashDisk disk(&mem);
  disk.Arm(4, /*tear_fraction=*/0.0);  // The clear never reaches the disk.
  FileCabinet cab("dbl");
  cab.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.dbl"),
                    /*write_ahead=*/true);
  cab.AppendString("LOG", "a0");
  cab.AppendString("LOG", "a1");
  EXPECT_TRUE(cab.Flush().ok());  // Snapshot is durable; only the clear died.
  EXPECT_TRUE(disk.crashed());
  // The double-apply precondition really holds: snapshot present AND the old
  // records still in the log.
  EXPECT_TRUE(mem.Exists("cab.dbl.snap"));
  EXPECT_FALSE(mem.Read("cab.dbl.log")->empty());

  disk.Reset();
  StorageStats stats;
  FileCabinet recovered("dbl");
  recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.dbl"),
                          /*write_ahead=*/true);
  recovered.set_storage_stats(&stats);
  ASSERT_TRUE(recovered.Recover().ok());

  auto log = recovered.ListStrings("LOG");
  ASSERT_EQ(log.size(), 2u) << "mutations were double-applied on recovery";
  EXPECT_EQ(log[0], "a0");
  EXPECT_EQ(log[1], "a1");
  EXPECT_EQ(stats.stale_records_dropped, 2u);
  EXPECT_EQ(stats.records_replayed, 0u);
}

TEST(CrashPointSweepTest, WalAppendErrorIsStickyAndSurfacedOnNextFlush) {
  MemDisk mem;
  CrashDisk disk(&mem);
  StorageStats stats;
  FileCabinet cab("wal");
  cab.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.wal"),
                    /*write_ahead=*/true);
  cab.set_storage_stats(&stats);

  cab.AppendString("LOG", "durable");
  disk.Arm(0, /*tear_fraction=*/0.0);
  cab.AppendString("LOG", "lost");  // Append fails silently at the call site...
  EXPECT_FALSE(cab.wal_error().ok());
  EXPECT_EQ(stats.wal_append_errors, 1u);
  EXPECT_EQ(cab.Size("LOG"), 2u);  // ...but still applies in memory.

  // While the disk is down, Flush reports the compaction failure.
  EXPECT_FALSE(cab.Flush().ok());
  EXPECT_FALSE(cab.wal_error().ok());

  // Disk back: the flush compacts successfully, then surfaces the durability
  // window exactly once.
  disk.Reset();
  Status surfaced = cab.Flush();
  EXPECT_EQ(surfaced.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(cab.wal_error().ok());
  EXPECT_TRUE(cab.Flush().ok());

  // And the post-reset snapshot covers everything, lost append included.
  FileCabinet recovered("wal");
  recovered.AttachStorage(std::make_unique<DiskLog>(&disk, "cab.wal"), true);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.Size("LOG"), 2u);
}

TEST(CrashPointSweepTest, AutoCompactionBoundsReplayLength) {
  MemDisk mem;
  StorageStats stats;
  FileCabinet cab("auto");
  cab.AttachStorage(std::make_unique<DiskLog>(&mem, "cab.auto"),
                    /*write_ahead=*/true);
  cab.set_storage_stats(&stats);
  cab.set_compaction_threshold(8);
  for (int i = 0; i < 30; ++i) {
    cab.AppendString("LOG", "e" + std::to_string(i));
  }
  EXPECT_EQ(stats.autocompactions, 3u);  // At mutations 8, 16, 24.

  FileCabinet recovered("auto");
  recovered.AttachStorage(std::make_unique<DiskLog>(&mem, "cab.auto"), true);
  recovered.set_storage_stats(&stats);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.Size("LOG"), 30u);
  // Only the post-compaction tail was replayed, not all 30 mutations.
  EXPECT_EQ(stats.records_replayed, 6u);
}

// --- Kernel restart path ---------------------------------------------------------

TEST(KernelRecoveryTest, RestartRecoversCabinetsAndCountsStorageMetrics) {
  KernelOptions options;
  options.cabinet_write_ahead = true;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("a");
  SiteId b = kernel.AddSite("b");
  kernel.net().AddLink(a, b, LinkParams{kMillisecond, 1'000'000});

  kernel.place(a)->Cabinet("visits").AppendString("SEEN", "x");
  kernel.place(a)->Cabinet("visits").AppendString("SEEN", "y");
  ASSERT_TRUE(kernel.place(a)->Cabinet("visits").Flush().ok());
  kernel.place(a)->Cabinet("visits").AppendString("SEEN", "z");

  // Crash mid-flush: the disk dies on the rename, then the site goes down.
  kernel.ArmDiskCrash(a, /*ops_from_now=*/1, /*tear_fraction=*/0.3);
  Status flush = kernel.place(a)->Cabinet("visits").Flush();
  EXPECT_FALSE(flush.ok());
  kernel.CrashSite(a);
  EXPECT_EQ(kernel.place(a), nullptr);

  kernel.RestartSite(a);
  ASSERT_NE(kernel.place(a), nullptr);
  FileCabinet& visits = kernel.place(a)->Cabinet("visits");
  // The flushed prefix plus the write-ahead tail both survived.
  EXPECT_TRUE(visits.ContainsString("SEEN", "x"));
  EXPECT_TRUE(visits.ContainsString("SEEN", "y"));
  EXPECT_TRUE(visits.ContainsString("SEEN", "z"));
  EXPECT_EQ(visits.Size("SEEN"), 3u);

  // Recovery surfaced in the metrics registry.
  EXPECT_GE(kernel.metrics().Value("storage.recoveries").value_or(0), 1);
  EXPECT_GE(kernel.metrics().Value("storage.records_replayed").value_or(0), 1);
  EXPECT_TRUE(kernel.metrics().Has("storage.torn_tails"));
  EXPECT_TRUE(kernel.metrics().Has("storage.wal_append_errors"));
}

}  // namespace
}  // namespace tacoma
