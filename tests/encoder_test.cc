#include "serial/encoder.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma {
namespace {

TEST(EncoderTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU32(0x12345678);
  enc.PutU64(0xdeadbeefcafebabeull);
  Decoder dec(enc.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(dec.GetU8(&u8));
  ASSERT_TRUE(dec.GetU32(&u32));
  ASSERT_TRUE(dec.GetU64(&u64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0x12345678u);
  EXPECT_EQ(u64, 0xdeadbeefcafebabeull);
  EXPECT_TRUE(dec.Done());
}

TEST(EncoderTest, VarintBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xffffffffull, 0xffffffffffffffffull}) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.buffer());
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint(&out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.Done());
  }
}

TEST(EncoderTest, VarintSizes) {
  Encoder enc;
  enc.PutVarint(127);
  EXPECT_EQ(enc.size(), 1u);
  Encoder enc2;
  enc2.PutVarint(128);
  EXPECT_EQ(enc2.size(), 2u);
  Encoder enc3;
  enc3.PutVarint(0xffffffffffffffffull);
  EXPECT_EQ(enc3.size(), 10u);
}

TEST(EncoderTest, SignedVarintRoundTrip) {
  const std::vector<int64_t> values = {0,        1,        -1,       63, -64, 1000000,
                                       -1000000, INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    Encoder enc;
    enc.PutSignedVarint(v);
    Decoder dec(enc.buffer());
    int64_t out;
    ASSERT_TRUE(dec.GetSignedVarint(&out)) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(EncoderTest, StringAndBytesRoundTrip) {
  Encoder enc;
  enc.PutString("hello");
  enc.PutBytes(Bytes{1, 2, 3});
  enc.PutString("");
  Decoder dec(enc.buffer());
  std::string s1, s2;
  Bytes b;
  ASSERT_TRUE(dec.GetString(&s1));
  ASSERT_TRUE(dec.GetBytes(&b));
  ASSERT_TRUE(dec.GetString(&s2));
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(b, (Bytes{1, 2, 3}));
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(dec.Done());
}

TEST(DecoderTest, TruncationFailsCleanly) {
  Encoder enc;
  enc.PutU64(42);
  Bytes truncated(enc.buffer().begin(), enc.buffer().begin() + 4);
  Decoder dec(truncated);
  uint64_t v;
  EXPECT_FALSE(dec.GetU64(&v));
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderTest, TruncatedStringLengthFails) {
  Encoder enc;
  enc.PutVarint(100);  // Claims 100 bytes follow; none do.
  Decoder dec(enc.buffer());
  std::string s;
  EXPECT_FALSE(dec.GetString(&s));
}

TEST(DecoderTest, PoisonedDecoderKeepsFailing) {
  Encoder enc;
  enc.PutU8(1);
  Decoder dec(enc.buffer());
  uint8_t v;
  uint64_t big;
  ASSERT_TRUE(dec.GetU8(&v));
  EXPECT_FALSE(dec.GetU64(&big));  // Nothing left: poisons.
  // Even though data is exhausted legitimately, further reads keep failing
  // and Done() reflects the poisoned state.
  EXPECT_FALSE(dec.GetU8(&v));
  EXPECT_FALSE(dec.Done());
}

TEST(DecoderTest, OverlongVarintRejected) {
  // 11 continuation bytes exceeds the 64-bit range.
  Bytes bad(11, 0x80);
  bad.push_back(0x01);
  Decoder dec(bad);
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint(&v));
}

TEST(EncoderTest, TakeMovesBuffer) {
  Encoder enc;
  enc.PutString("data");
  Bytes taken = enc.Take();
  EXPECT_FALSE(taken.empty());
  EXPECT_EQ(enc.size(), 0u);
}

class EncoderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderPropertyTest, ::testing::Range<uint64_t>(0, 20));

TEST_P(EncoderPropertyTest, RandomMixedSequenceRoundTrips) {
  Rng rng(GetParam());
  // Build a random sequence of typed values, encode, decode, compare.
  struct Item {
    int kind;
    uint64_t u;
    int64_t i;
    std::string s;
  };
  std::vector<Item> items;
  Encoder enc;
  size_t count = 5 + rng.Uniform(30);
  for (size_t k = 0; k < count; ++k) {
    Item item;
    item.kind = static_cast<int>(rng.Uniform(4));
    switch (item.kind) {
      case 0:
        item.u = rng.Next();
        enc.PutU64(item.u);
        break;
      case 1:
        item.u = rng.Next() >> rng.Uniform(64);
        enc.PutVarint(item.u);
        break;
      case 2:
        item.i = static_cast<int64_t>(rng.Next());
        enc.PutSignedVarint(item.i);
        break;
      case 3: {
        size_t len = rng.Uniform(50);
        item.s.resize(len);
        for (auto& c : item.s) {
          c = static_cast<char>(rng.Uniform(256));
        }
        enc.PutString(item.s);
        break;
      }
    }
    items.push_back(item);
  }
  Decoder dec(enc.buffer());
  for (const Item& item : items) {
    switch (item.kind) {
      case 0: {
        uint64_t v;
        ASSERT_TRUE(dec.GetU64(&v));
        EXPECT_EQ(v, item.u);
        break;
      }
      case 1: {
        uint64_t v;
        ASSERT_TRUE(dec.GetVarint(&v));
        EXPECT_EQ(v, item.u);
        break;
      }
      case 2: {
        int64_t v;
        ASSERT_TRUE(dec.GetSignedVarint(&v));
        EXPECT_EQ(v, item.i);
        break;
      }
      case 3: {
        std::string v;
        ASSERT_TRUE(dec.GetString(&v));
        EXPECT_EQ(v, item.s);
        break;
      }
    }
  }
  EXPECT_TRUE(dec.Done());
}

}  // namespace
}  // namespace tacoma
