// End-to-end audited exchanges (§3) with honest and cheating parties.
#include <gtest/gtest.h>

#include "cash/exchange.h"

namespace tacoma::cash {
namespace {

class ExchangeTest : public ::testing::Test {
 protected:
  ExchangeTest() : auth_(5), mint_(5), notary_(&auth_) {
    customer_ = kernel_.AddSite("customer");
    provider_ = kernel_.AddSite("provider");
    bank_ = kernel_.AddSite("bank");
    court_ = kernel_.AddSite("court");
    // Everyone reachable through the bank (a small hub-and-spoke world).
    kernel_.net().AddLink(customer_, bank_);
    kernel_.net().AddLink(provider_, bank_);
    kernel_.net().AddLink(court_, bank_);
    kernel_.net().AddLink(customer_, provider_);

    InstallMintAgent(&kernel_, bank_, &mint_, &auth_);
    InstallNotaryAgent(&kernel_, court_, &notary_);
  }

  Marketplace MakeMarket(ProviderPolicy policy = ProviderPolicy::kValidateFirst) {
    MarketConfig config;
    config.customer_site = customer_;
    config.provider_site = provider_;
    config.mint_site = bank_;
    config.notary_site = court_;
    config.policy = policy;
    return Marketplace(&kernel_, &auth_, &mint_, &notary_, config);
  }

  Kernel kernel_;
  SignatureAuthority auth_;
  Mint mint_;
  Notary notary_;
  SiteId customer_ = 0, provider_ = 0, bank_ = 0, court_ = 0;
};

TEST_F(ExchangeTest, HonestExchangeCompletesClean) {
  Marketplace market = MakeMarket();
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 40, CheatMode::kHonest).ok());
  kernel_.sim().Run();

  const ExchangeRecord* rec = market.record("x1");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->payment_collected);
  EXPECT_TRUE(rec->goods_delivered);
  EXPECT_TRUE(rec->goods_received);
  EXPECT_FALSE(rec->aborted);
  EXPECT_EQ(market.customer_wallet().Balance(), 60u);
  EXPECT_EQ(market.provider_wallet().Balance(), 40u);

  AuditReport report = market.AuditExchange("x1");
  EXPECT_EQ(report.verdict, Verdict::kClean) << report.explanation;
  EXPECT_TRUE(report.acked);
}

TEST_F(ExchangeTest, MoneyConservedAcrossExchanges) {
  Marketplace market = MakeMarket();
  market.FundCustomer(10, 10);
  ASSERT_TRUE(market.StartExchange("a", 30, CheatMode::kHonest).ok());
  ASSERT_TRUE(market.StartExchange("b", 20, CheatMode::kHonest).ok());
  kernel_.sim().Run();
  EXPECT_EQ(market.customer_wallet().Balance() + market.provider_wallet().Balance(),
            100u);
  EXPECT_EQ(mint_.Outstanding(), 100u);
}

TEST_F(ExchangeTest, NonPayingCustomerAgainstValidateFirstProvider) {
  Marketplace market = MakeMarket(ProviderPolicy::kValidateFirst);
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 40, CheatMode::kCustomerSkipsPayment).ok());
  kernel_.sim().Run();

  const ExchangeRecord* rec = market.record("x1");
  EXPECT_TRUE(rec->aborted);
  EXPECT_FALSE(rec->goods_delivered);
  EXPECT_EQ(market.provider_wallet().Balance(), 0u);
  // Nobody performed: clean abort on the books.
  EXPECT_EQ(market.AuditExchange("x1").verdict, Verdict::kAborted);
}

TEST_F(ExchangeTest, NonPayingCustomerAgainstTrustingProviderConvicted) {
  Marketplace market = MakeMarket(ProviderPolicy::kTrusting);
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 40, CheatMode::kCustomerSkipsPayment).ok());
  kernel_.sim().Run();

  const ExchangeRecord* rec = market.record("x1");
  EXPECT_TRUE(rec->goods_delivered);  // Trusted and lost the goods...
  AuditReport report = market.AuditExchange("x1");
  EXPECT_EQ(report.verdict, Verdict::kCustomerViolated)  // ...but wins in court.
      << report.explanation;
}

TEST_F(ExchangeTest, ProviderKeepingMoneyConvicted) {
  Marketplace market = MakeMarket();
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 40, CheatMode::kProviderSkipsDelivery).ok());
  kernel_.sim().Run();

  const ExchangeRecord* rec = market.record("x1");
  EXPECT_TRUE(rec->payment_collected);
  EXPECT_FALSE(rec->goods_received);
  AuditReport report = market.AuditExchange("x1");
  EXPECT_EQ(report.verdict, Verdict::kProviderViolated) << report.explanation;
  EXPECT_TRUE(report.paid);
  EXPECT_FALSE(report.delivered);
}

TEST_F(ExchangeTest, DoubleSpendFoiledBySecondValidation) {
  Marketplace market = MakeMarket();
  market.FundCustomer(5, 20);
  // First double-spend-mode exchange pays honestly but stashes a copy.
  ASSERT_TRUE(market.StartExchange("x1", 40, CheatMode::kCustomerDoubleSpends).ok());
  kernel_.sim().Run();
  EXPECT_TRUE(market.record("x1")->goods_received);

  // Second exchange replays the spent records.
  ASSERT_TRUE(market.StartExchange("x2", 40, CheatMode::kCustomerDoubleSpends).ok());
  kernel_.sim().Run();

  const ExchangeRecord* rec = market.record("x2");
  EXPECT_TRUE(rec->aborted);
  EXPECT_FALSE(rec->goods_delivered);
  EXPECT_GE(mint_.stats().rejected, 1u);
  // Provider kept only the first payment.
  EXPECT_EQ(market.provider_wallet().Balance(), 40u);
}

TEST_F(ExchangeTest, TrustingProviderLosesGoodsToDoubleSpender) {
  // §3's warning realized: deliver before validation and copied ECUs cost
  // you the goods — though the court still convicts the customer.
  Marketplace market = MakeMarket(ProviderPolicy::kTrusting);
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 40, CheatMode::kCustomerDoubleSpends).ok());
  kernel_.sim().Run();
  ASSERT_TRUE(market.StartExchange("x2", 40, CheatMode::kCustomerDoubleSpends).ok());
  kernel_.sim().Run();

  const ExchangeRecord* rec = market.record("x2");
  EXPECT_TRUE(rec->goods_delivered);        // Shipped on trust...
  EXPECT_FALSE(rec->payment_collected);     // ...for money that bounced.
  EXPECT_EQ(market.provider_wallet().Balance(), 40u);  // Only x1's payment.
  AuditReport report = market.AuditExchange("x2");
  EXPECT_EQ(report.verdict, Verdict::kCustomerViolated) << report.explanation;
}

TEST_F(ExchangeTest, DuplicateExchangeIdRejected) {
  Marketplace market = MakeMarket();
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 20, CheatMode::kHonest).ok());
  EXPECT_EQ(market.StartExchange("x1", 20, CheatMode::kHonest).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ExchangeTest, InsufficientFundsAbortsLocally) {
  Marketplace market = MakeMarket();
  market.FundCustomer(1, 10);
  EXPECT_FALSE(market.StartExchange("x1", 500, CheatMode::kHonest).ok());
  EXPECT_TRUE(market.record("x1")->aborted);
}

TEST_F(ExchangeTest, ConcurrentExchangesSettleIndependently) {
  Marketplace market = MakeMarket();
  market.FundCustomer(10, 10);
  ASSERT_TRUE(market.StartExchange("a", 10, CheatMode::kHonest).ok());
  ASSERT_TRUE(market.StartExchange("b", 10, CheatMode::kProviderSkipsDelivery).ok());
  ASSERT_TRUE(market.StartExchange("c", 10, CheatMode::kCustomerSkipsPayment).ok());
  kernel_.sim().Run();

  EXPECT_EQ(market.AuditExchange("a").verdict, Verdict::kClean);
  EXPECT_EQ(market.AuditExchange("b").verdict, Verdict::kProviderViolated);
  EXPECT_EQ(market.AuditExchange("c").verdict, Verdict::kAborted);
}

TEST_F(ExchangeTest, LatencyIsMeasuredInSimTime) {
  Marketplace market = MakeMarket();
  market.FundCustomer(5, 20);
  ASSERT_TRUE(market.StartExchange("x1", 20, CheatMode::kHonest).ok());
  kernel_.sim().Run();
  const ExchangeRecord* rec = market.record("x1");
  EXPECT_GT(rec->settled, rec->started);
}

}  // namespace
}  // namespace tacoma::cash
