#include "core/folder.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma {
namespace {

TEST(FolderTest, StartsEmpty) {
  Folder f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.Front(), nullptr);
  EXPECT_EQ(f.Back(), nullptr);
  EXPECT_FALSE(f.PopFront().has_value());
  EXPECT_FALSE(f.PopBack().has_value());
}

TEST(FolderTest, QueueSemantics) {
  Folder f;
  f.PushBackString("first");
  f.PushBackString("second");
  f.PushBackString("third");
  EXPECT_EQ(*f.PopFrontString(), "first");
  EXPECT_EQ(*f.PopFrontString(), "second");
  EXPECT_EQ(*f.PopFrontString(), "third");
  EXPECT_TRUE(f.empty());
}

TEST(FolderTest, StackSemantics) {
  Folder f;
  f.PushFrontString("a");
  f.PushFrontString("b");
  f.PushFrontString("c");
  EXPECT_EQ(*f.PopFrontString(), "c");
  EXPECT_EQ(*f.PopFrontString(), "b");
  EXPECT_EQ(*f.PopFrontString(), "a");
}

TEST(FolderTest, MixedEnds) {
  Folder f;
  f.PushBackString("middle");
  f.PushFrontString("front");
  f.PushBackString("back");
  EXPECT_EQ(*f.FrontString(), "front");
  EXPECT_EQ(*f.PopBackString(), "back");
  EXPECT_EQ(f.size(), 2u);
}

TEST(FolderTest, UninterpretedBytes) {
  Folder f;
  Bytes binary{0x00, 0xff, 0x80, 0x00};
  f.PushBack(binary);
  EXPECT_EQ(*f.PopFront(), binary);
}

TEST(FolderTest, AtAndIteration) {
  Folder f;
  f.PushBackString("x");
  f.PushBackString("y");
  EXPECT_EQ(ToString(f.At(0)), "x");
  EXPECT_EQ(ToString(f.At(1)), "y");
  size_t count = 0;
  for (const SharedBytes& b : f) {
    (void)b;
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(FolderTest, AsStringsAndContains) {
  Folder f;
  f.PushBackString("alpha");
  f.PushBackString("beta");
  EXPECT_EQ(f.AsStrings(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(f.ContainsString("alpha"));
  EXPECT_FALSE(f.ContainsString("alph"));
  EXPECT_FALSE(f.ContainsString("alphaa"));
}

TEST(FolderTest, ClearEmpties) {
  Folder f;
  f.PushBackString("x");
  f.Clear();
  EXPECT_TRUE(f.empty());
}

TEST(FolderTest, EncodeDecodeRoundTrip) {
  Folder f;
  f.PushBackString("one");
  f.PushBack(Bytes{1, 2, 3});
  f.PushBackString("");
  Encoder enc;
  f.Encode(&enc);
  Decoder dec(enc.buffer());
  auto restored = Folder::Decode(&dec);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, f);
  EXPECT_TRUE(dec.Done());
}

TEST(FolderTest, ByteSizeMatchesEncoding) {
  Folder f;
  f.PushBackString("hello");
  f.PushBack(Bytes(200));
  Encoder enc;
  f.Encode(&enc);
  EXPECT_EQ(f.ByteSize(), enc.size());
}

TEST(FolderTest, DecodeTruncatedFails) {
  Folder f;
  f.PushBackString("data");
  Encoder enc;
  f.Encode(&enc);
  Bytes truncated(enc.buffer().begin(), enc.buffer().end() - 2);
  Decoder dec(truncated);
  EXPECT_FALSE(Folder::Decode(&dec).ok());
}

class FolderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FolderPropertyTest, ::testing::Range<uint64_t>(0, 12));

TEST_P(FolderPropertyTest, RandomOpsMatchDequeModel) {
  Rng rng(GetParam());
  Folder folder;
  std::deque<std::string> model;
  for (int op = 0; op < 300; ++op) {
    switch (rng.Uniform(4)) {
      case 0: {
        std::string v = "v" + std::to_string(rng.Uniform(1000));
        folder.PushBackString(v);
        model.push_back(v);
        break;
      }
      case 1: {
        std::string v = "v" + std::to_string(rng.Uniform(1000));
        folder.PushFrontString(v);
        model.push_front(v);
        break;
      }
      case 2: {
        auto got = folder.PopFrontString();
        if (model.empty()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, model.front());
          model.pop_front();
        }
        break;
      }
      case 3: {
        auto got = folder.PopBackString();
        if (model.empty()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, model.back());
          model.pop_back();
        }
        break;
      }
    }
    ASSERT_EQ(folder.size(), model.size());
  }
  EXPECT_EQ(folder.AsStrings(), std::vector<std::string>(model.begin(), model.end()));
}

TEST_P(FolderPropertyTest, SerializationRoundTripsRandomContents) {
  Rng rng(GetParam());
  Folder f;
  size_t count = rng.Uniform(20);
  for (size_t i = 0; i < count; ++i) {
    Bytes b(rng.Uniform(100));
    for (auto& byte : b) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    f.PushBack(std::move(b));
  }
  Encoder enc;
  f.Encode(&enc);
  Decoder dec(enc.buffer());
  auto restored = Folder::Decode(&dec);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, f);
}

}  // namespace
}  // namespace tacoma
