// Wire-frame encoding and stream reassembly for the TCP transport.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tacoma {
namespace {

// One encoded frame as it would appear on the wire.
Bytes Encode(SiteId from, SiteId to, const std::string& payload) {
  auto header = EncodeFrameHeader(from, to, static_cast<uint32_t>(payload.size()));
  Bytes wire(header.begin(), header.end());
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

TEST(FrameTest, HeaderLayout) {
  auto header = EncodeFrameHeader(0x01020304, 0x0a0b0c0d, 0x11223344);
  // Magic "TAC1", then from / to / length, all little-endian.
  EXPECT_EQ(header[0], 'T');
  EXPECT_EQ(header[1], 'A');
  EXPECT_EQ(header[2], 'C');
  EXPECT_EQ(header[3], '1');
  EXPECT_EQ(header[4], 0x04);
  EXPECT_EQ(header[7], 0x01);
  EXPECT_EQ(header[8], 0x0d);
  EXPECT_EQ(header[11], 0x0a);
  EXPECT_EQ(header[12], 0x44);
  EXPECT_EQ(header[15], 0x11);
}

TEST(FrameTest, RoundTripSingleFrame) {
  FrameReader reader(1 << 20);
  std::vector<WireFrame> out;
  ASSERT_TRUE(reader.Feed(Encode(1, 2, "hello"), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, 1u);
  EXPECT_EQ(out[0].to, 2u);
  EXPECT_EQ(out[0].payload.StringView(), "hello");
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameTest, EmptyPayloadFrame) {
  FrameReader reader(1 << 20);
  std::vector<WireFrame> out;
  ASSERT_TRUE(reader.Feed(Encode(7, 8, ""), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(FrameTest, MultipleFramesInOneChunk) {
  Bytes wire = Encode(1, 2, "first");
  Bytes second = Encode(3, 4, "second");
  wire.insert(wire.end(), second.begin(), second.end());

  FrameReader reader(1 << 20);
  std::vector<WireFrame> out;
  ASSERT_TRUE(reader.Feed(std::move(wire), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload.StringView(), "first");
  EXPECT_EQ(out[1].from, 3u);
  EXPECT_EQ(out[1].payload.StringView(), "second");
}

TEST(FrameTest, ByteAtATimeReassembly) {
  Bytes wire = Encode(5, 6, "fragmented payload");
  FrameReader reader(1 << 20);
  std::vector<WireFrame> out;
  for (uint8_t byte : wire) {
    ASSERT_TRUE(reader.Feed(Bytes{byte}, &out).ok());
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, 5u);
  EXPECT_EQ(out[0].payload.StringView(), "fragmented payload");
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameTest, SplitAcrossChunksAtEveryBoundary) {
  Bytes wire = Encode(1, 2, "split me");
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    FrameReader reader(1 << 20);
    std::vector<WireFrame> out;
    ASSERT_TRUE(
        reader.Feed(Bytes(wire.begin(), wire.begin() + cut), &out).ok());
    EXPECT_TRUE(out.empty() || cut == wire.size());
    ASSERT_TRUE(reader.Feed(Bytes(wire.begin() + cut, wire.end()), &out).ok());
    ASSERT_EQ(out.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(out[0].payload.StringView(), "split me");
  }
}

TEST(FrameTest, AlignedChunkPayloadIsZeroCopy) {
  // A frame arriving whole on a frame boundary must hand out a payload view
  // into the chunk's own allocation, not a copy.
  SharedBytes chunk(Encode(1, 2, "zero copy payload"));
  FrameReader reader(1 << 20);
  std::vector<WireFrame> out;
  ASSERT_TRUE(reader.Feed(chunk, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].payload.SharesBufferWith(chunk));
}

TEST(FrameTest, BadMagicPoisonsTheStream) {
  Bytes wire = Encode(1, 2, "ok");
  wire[0] = 'X';
  FrameReader reader(1 << 20);
  std::vector<WireFrame> out;
  EXPECT_FALSE(reader.Feed(std::move(wire), &out).ok());
  EXPECT_TRUE(out.empty());
  // Sticky: even a clean frame is refused afterwards (no resync on a byte
  // stream with a corrupt prefix).
  EXPECT_FALSE(reader.Feed(Encode(1, 2, "clean"), &out).ok());
}

TEST(FrameTest, OversizedLengthRefusedWithoutAllocating) {
  FrameReader reader(/*max_frame_bytes=*/64);
  std::vector<WireFrame> out;
  auto header = EncodeFrameHeader(1, 2, /*payload_len=*/65);
  EXPECT_FALSE(reader.Feed(Bytes(header.begin(), header.end()), &out).ok());
  // At the limit is fine.
  FrameReader ok_reader(/*max_frame_bytes=*/64);
  ASSERT_TRUE(ok_reader.Feed(Encode(1, 2, std::string(64, 'x')), &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace tacoma
