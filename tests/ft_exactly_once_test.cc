// Exactly-once agent survival under full chaos: partition-mode storms,
// crash-during-recovery targeting, mid-flush disk faults, and relaunchers
// crashed mid-recovery — across several seeds, every launched agent must
// resolve to exactly one COMPLETE or DEADLETTER outcome at its home site,
// with zero duplicate completions and zero lost agents.  Registered in ctest
// with an explicit timeout (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "ft/rearguard.h"
#include "sim/chaos.h"
#include "sim/topology.h"

namespace tacoma::ft {
namespace {

// The soak walker: idempotent per-site work, a guarded hop per itinerary
// entry, and a registry outcome at the end (wherever the itinerary ends —
// outcomes route reliably back to GUARD_HOME).
constexpr char kSoakAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    ft_complete
  }
)";

struct FtSoakOutcome {
  ChaosHarness::Report report;
  CompletionRegistry::Stats registry_stats;
  RearGuard::Stats guard_stats;
  std::map<std::string, int> completion_notes;  // Agent -> ft_done deliveries.
  size_t launched = 0;
  size_t total_guards_left = 0;
  bool exactly_once = false;
  std::string exactly_once_error;
  std::vector<std::string> violations;
};

FtSoakOutcome RunFtSoak(uint64_t seed) {
  FtSoakOutcome outcome;

  KernelOptions kernel_options;
  kernel_options.seed = seed;
  kernel_options.reliability.mode = Reliability::kReliable;
  kernel_options.cabinet_write_ahead = true;
  Kernel kernel(kernel_options);
  auto sites = BuildGrid(&kernel.net(), 3, 3);
  kernel.AdoptNetworkSites();
  const SiteId home = sites[0];
  const std::string home_name = kernel.net().site_name(home);

  GuardOptions guard_options;
  guard_options.heartbeat = 30 * kMillisecond;
  guard_options.max_misses = 2;
  guard_options.max_relaunches = 5;
  guard_options.lease = 1500 * kMillisecond;
  guard_options.completion_contact = "ft_done";
  RearGuard guard(&kernel, guard_options);
  guard.Install();

  // The home-side completion contact: exactly one note per resolved agent.
  kernel.AddPlaceInitializer([&outcome](Place& place) {
    place.RegisterAgent("ft_done", [&outcome](Place&, Briefcase& bc) {
      ++outcome.completion_notes[bc.GetString("GUARD_AGENT").value_or("?")];
      return OkStatus();
    });
  });

  ChaosOptions chaos_options;
  chaos_options.seed = seed * 2654435761 + 9;
  chaos_options.horizon = 2 * kSecond;
  chaos_options.protected_sites = {home};
  chaos_options.mean_partition_interval = 350 * kMillisecond;  // Partition mode.
  chaos_options.recrash_prob = 0.35;        // Crash-during-recovery targeting.
  chaos_options.disk_fault_prob = 0.35;     // Crashes land mid-flush.
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.SetSiteHooks([&kernel](SiteId s) { kernel.CrashSite(s); },
                     [&kernel](SiteId s) { kernel.RestartSite(s); });
  chaos.SetDiskArmHook([&kernel](SiteId s, uint64_t ops, double tear) {
    kernel.ArmDiskCrash(s, ops, tear);
  });
  chaos.RegisterMetrics(&kernel.metrics());

  // Crash relaunchers mid-recovery too: with some probability the guard that
  // just relaunched a checkpoint is itself crashed moments later, so the
  // relaunch bookkeeping (fences, pending incarnations, durable relaunch ops)
  // is interrupted where it hurts.
  Rng hook_rng(seed * 6271 + 5);
  guard.SetRelaunchHook([&](SiteId site, const std::string&, uint32_t) {
    if (site == home || kernel.sim().Now() >= chaos_options.horizon ||
        !hook_rng.Bernoulli(0.25)) {
      return;
    }
    kernel.sim().After(2 * kMillisecond, [&kernel, site] {
      if (kernel.place(site) != nullptr) {
        kernel.CrashSite(site);
      }
    });
    kernel.sim().After(80 * kMillisecond, [&kernel, site] {
      kernel.RestartSite(site);
    });
  });

  chaos.AddInvariant("exactly-once registry (structural)", [&guard, home] {
    return guard.registry().CheckExactlyOnce(home, /*require_resolved=*/false);
  });
  chaos.AddInvariant("at-most-one completion note per agent", [&outcome] {
    for (const auto& [agent, count] : outcome.completion_notes) {
      if (count > 1) {
        return InternalError("agent " + agent + " notified " +
                             std::to_string(count) + " times");
      }
    }
    return OkStatus();
  });

  // Workload: a dozen guarded walkers with randomized itineraries, staggered
  // through the first storm half, plus one clone-style fan-out pair joining
  // at the barrier.
  Rng workload_rng(seed * 7919 + 3);
  for (int i = 0; i < 12; ++i) {
    const SimTime when = 1 + static_cast<SimTime>(i) * 45 * kMillisecond;
    kernel.sim().At(when, [&kernel, &guard, &workload_rng, &sites, &outcome,
                           &home_name, home, i] {
      Briefcase bc;
      const size_t hops = 3 + workload_rng.Uniform(3);
      for (size_t h = 0; h < hops; ++h) {
        SiteId hop = sites[1 + workload_rng.Uniform(sites.size() - 1)];
        bc.folder("ITINERARY").PushBackString(kernel.net().site_name(hop));
      }
      if (workload_rng.Uniform(2) == 0) {
        bc.folder("ITINERARY").PushBackString(home_name);
      }
      if (guard.LaunchGuarded(home, kSoakAgent, std::move(bc),
                              "ag" + std::to_string(i)).ok()) {
        ++outcome.launched;
      }
    });
  }
  kernel.sim().At(30 * kMillisecond, [&kernel, &guard, &sites, &outcome, home] {
    guard.DeclareFanout(home, "fan", 2);
    for (int branch = 0; branch < 2; ++branch) {
      Briefcase bc;
      bc.folder("ITINERARY").PushBackString(
          kernel.net().site_name(sites[branch == 0 ? 1 : 3]));
      bc.folder("ITINERARY").PushBackString(
          kernel.net().site_name(sites[branch == 0 ? 4 : 6]));
      bc.folder("ITINERARY").PushBackString(kernel.net().site_name(sites[0]));
      if (guard.LaunchGuarded(home, kSoakAgent, std::move(bc), "fan",
                              branch == 0 ? "b0" : "b1").ok() &&
          branch == 0) {
        ++outcome.launched;
      }
    }
  });

  chaos.Start();
  // Storm (2s) + relaunch budgets + lease GC + reliable-retry tails.
  kernel.sim().RunUntil(12 * kSecond);

  Status verdict =
      guard.registry().CheckExactlyOnce(home, /*require_resolved=*/true);
  outcome.exactly_once = verdict.ok();
  outcome.exactly_once_error = verdict.ToString();
  outcome.report = chaos.report();
  outcome.registry_stats = guard.registry().stats();
  outcome.guard_stats = guard.stats();
  outcome.total_guards_left = guard.TotalGuards();
  outcome.violations = chaos.report().violations;
  return outcome;
}

TEST(FtExactlyOnceTest, CombinedStormNeverDuplicatesOrLosesAgents) {
  uint64_t total_quenches = 0;
  uint64_t total_relaunches = 0;
  uint64_t total_partitions = 0;
  uint64_t total_recrashes = 0;
  uint64_t total_disk_faults = 0;
  for (uint64_t seed : {1995ull, 7ull, 42ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FtSoakOutcome out = RunFtSoak(seed);

    // The storm exercised every mode it was configured with.
    EXPECT_GT(out.report.crashes, 0u);
    EXPECT_GT(out.report.partitions, 0u);
    EXPECT_GT(out.report.checks, 0u);

    // No invariant violated mid-storm, and the end-of-run verdict holds:
    // every launched agent resolved exactly once — zero duplicate
    // completions, zero lost agents.
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
    EXPECT_TRUE(out.exactly_once) << out.exactly_once_error;
    EXPECT_EQ(out.launched, 13u);  // 12 walkers + the fan-out pair.
    EXPECT_EQ(out.registry_stats.launches, 13u);
    EXPECT_EQ(out.registry_stats.resolved, 13u);

    // The completion contact heard about each agent exactly once.
    EXPECT_EQ(out.completion_notes.size(), 13u);
    for (const auto& [agent, count] : out.completion_notes) {
      EXPECT_EQ(count, 1) << "agent " << agent;
    }

    // Nothing leaked: every guard record was retired or lease-reaped.
    EXPECT_EQ(out.total_guards_left, 0u);

    total_quenches +=
        out.guard_stats.quenches + out.registry_stats.duplicates_quenched;
    total_relaunches += out.guard_stats.relaunches;
    total_partitions += out.report.partitions;
    total_recrashes += out.report.recrashes;
    total_disk_faults += out.report.disk_faults;
    std::printf(
        "[ft-soak] seed=%llu crashes=%llu recrashes=%llu partitions=%llu "
        "disk_faults=%llu relaunches=%llu quenches=%llu deadletters=%llu "
        "resolved=%llu\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(out.report.crashes),
        static_cast<unsigned long long>(out.report.recrashes),
        static_cast<unsigned long long>(out.report.partitions),
        static_cast<unsigned long long>(out.report.disk_faults),
        static_cast<unsigned long long>(out.guard_stats.relaunches),
        static_cast<unsigned long long>(out.guard_stats.quenches +
                                        out.registry_stats.duplicates_quenched),
        static_cast<unsigned long long>(out.registry_stats.deadletters),
        static_cast<unsigned long long>(out.registry_stats.resolved));
  }
  // Across the seeds the interesting machinery demonstrably fired: recovery
  // relaunches happened, stale incarnations were quenched, recovery itself
  // was re-crashed, and disks died mid-flush.
  EXPECT_GT(total_relaunches, 0u);
  EXPECT_GT(total_quenches, 0u);
  EXPECT_GT(total_partitions, 0u);
  EXPECT_GT(total_recrashes, 0u);
  EXPECT_GT(total_disk_faults, 0u);
}

TEST(FtExactlyOnceTest, DeterministicForFixedSeed) {
  FtSoakOutcome first = RunFtSoak(/*seed=*/4242);
  FtSoakOutcome second = RunFtSoak(/*seed=*/4242);
  EXPECT_EQ(first.report.crashes, second.report.crashes);
  EXPECT_EQ(first.report.partitions, second.report.partitions);
  EXPECT_EQ(first.guard_stats.relaunches, second.guard_stats.relaunches);
  EXPECT_EQ(first.guard_stats.quenches, second.guard_stats.quenches);
  EXPECT_EQ(first.registry_stats.resolved, second.registry_stats.resolved);
  EXPECT_EQ(first.completion_notes, second.completion_notes);
}

}  // namespace
}  // namespace tacoma::ft
