#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace tacoma {
namespace {

std::string HmacHex(const Bytes& key, const Bytes& msg) {
  return DigestToHex(HmacSha256(key, msg));
}

// RFC 4231 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HmacHex(key, ToBytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HmacHex(ToBytes("Jefe"), ToBytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(HmacHex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);  // Longer than the block size: hashed first.
  EXPECT_EQ(HmacHex(key, ToBytes("Test Using Larger Than Block-Size Key - "
                                 "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  Bytes msg = ToBytes("message");
  EXPECT_NE(HmacHex(ToBytes("key1"), msg), HmacHex(ToBytes("key2"), msg));
}

TEST(HmacTest, MessageSensitivity) {
  Bytes key = ToBytes("key");
  EXPECT_NE(HmacHex(key, ToBytes("a")), HmacHex(key, ToBytes("b")));
}

TEST(HmacDrbgTest, DeterministicFromSeed) {
  HmacDrbg a(ToBytes("seed"));
  HmacDrbg b(ToBytes("seed"));
  Bytes ba, bb;
  a.Generate(64, &ba);
  b.Generate(64, &bb);
  EXPECT_EQ(ba, bb);
}

TEST(HmacDrbgTest, DifferentSeedsDiverge) {
  HmacDrbg a(ToBytes("seed-a"));
  HmacDrbg b(ToBytes("seed-b"));
  Bytes ba, bb;
  a.Generate(32, &ba);
  b.Generate(32, &bb);
  EXPECT_NE(ba, bb);
}

TEST(HmacDrbgTest, SuccessiveOutputsDiffer) {
  HmacDrbg drbg(ToBytes("seed"));
  Bytes first, second;
  drbg.Generate(32, &first);
  drbg.Generate(32, &second);
  EXPECT_NE(first, second);
}

TEST(HmacDrbgTest, GeneratesExactLengths) {
  HmacDrbg drbg(ToBytes("x"));
  for (size_t len : {0u, 1u, 31u, 32u, 33u, 100u, 1000u}) {
    Bytes out;
    drbg.Generate(len, &out);
    EXPECT_EQ(out.size(), len);
  }
}

TEST(HmacDrbgTest, ReseedChangesStream) {
  HmacDrbg a(ToBytes("seed"));
  HmacDrbg b(ToBytes("seed"));
  Bytes junk;
  a.Generate(8, &junk);
  b.Generate(8, &junk);
  b.Reseed(ToBytes("extra entropy"));
  Bytes out_a, out_b;
  a.Generate(32, &out_a);
  b.Generate(32, &out_b);
  EXPECT_NE(out_a, out_b);
}

TEST(HmacDrbgTest, NextU64Deterministic) {
  HmacDrbg a(ToBytes("n"));
  HmacDrbg b(ToBytes("n"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

}  // namespace
}  // namespace tacoma
