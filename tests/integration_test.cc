// Cross-module integration scenarios exercising the full TACOMA stack the
// way the paper's applications would.
#include <gtest/gtest.h>

#include "cash/exchange.h"
#include "ft/rearguard.h"
#include "mail/mail.h"
#include "sched/broker.h"
#include "sched/jobs.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

// A data-collection agent with electronic cash: it pays a toll at each data
// site before reading the cabinet — commerce (§3) meeting mobility (§2).
TEST(IntegrationTest, PayPerDataItinerary) {
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId data1 = kernel.AddSite("data1");
  SiteId data2 = kernel.AddSite("data2");
  SiteId bank = kernel.AddSite("bank");
  for (SiteId s : {data1, data2, bank}) {
    kernel.net().AddLink(home, s);
    for (SiteId t : {data1, data2, bank}) {
      if (s < t) {
        kernel.net().AddLink(s, t);
      }
    }
  }

  cash::Mint mint(3);
  cash::InstallMintAgent(&kernel, bank, &mint);

  // Each data site sells one record for 10 ECU via a native "toll" agent that
  // validates payment with the mint synchronously through its own books (the
  // validation round trip is covered by exchange_test; here sites trust the
  // serial check performed later in bulk).
  for (SiteId s : {data1, data2}) {
    kernel.place(s)->Cabinet("shop").SetString("DATUM",
                                               "reading-from-" +
                                                   kernel.net().site_name(s));
    kernel.place(s)->RegisterAgent("toll", [](Place& at, Briefcase& bc) -> Status {
      Folder* payment = bc.Find(cash::kCashFolder);
      if (payment == nullptr || payment->empty()) {
        return PermissionDeniedError("no payment");
      }
      auto notes = cash::DecodeEcus(*payment->Front());
      if (!notes.ok() || cash::TotalAmount(*notes) < 10) {
        return PermissionDeniedError("underpaid");
      }
      // Bank one payment element in the till; the rest travels on.
      at.Cabinet("shop").Append("TILL", payment->PopFront()->ToBytes());
      bc.folder("DATA").PushBackString(
          *at.Cabinet("shop").GetSingleString("DATUM"));
      return OkStatus();
    });
  }

  // Fund the agent: 2 notes of 10.
  Briefcase bc;
  bc.folder(cash::kCashFolder).PushBack(cash::EncodeEcus({mint.Issue(10)}));
  bc.folder(cash::kCashFolder).PushBack(cash::EncodeEcus({mint.Issue(10)}));
  bc.folder("ITINERARY").PushBackString("data1");
  bc.folder("ITINERARY").PushBackString("data2");
  bc.SetString("HOME", "home");

  // The agent pays the toll (one CASH element per site), collects data, and
  // returns home with both readings.
  const char* code = R"(
    set home [bc_get HOME]
    if {[site] ne $home} {
      meet toll
    }
    if {[bc_len ITINERARY] > 0} {
      jump [bc_pop ITINERARY]
    } elseif {[site] ne $home} {
      jump $home
    } else {
      foreach d [bc_list DATA] { cab_append results DATA $d }
    }
  )";
  ASSERT_TRUE(kernel.LaunchAgent(home, code, bc).ok());
  kernel.sim().Run();

  auto results = kernel.place(home)->Cabinet("results").ListStrings("DATA");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], "reading-from-data1");
  EXPECT_EQ(results[1], "reading-from-data2");
  // Both tills hold one payment.
  EXPECT_EQ(kernel.place(data1)->Cabinet("shop").Size("TILL"), 1u);
  EXPECT_EQ(kernel.place(data2)->Cabinet("shop").Size("TILL"), 1u);
}

// A guarded agent books work through a broker and the guard chain fully
// retires on completion: §4 meets §5.
TEST(IntegrationTest, GuardedAgentBooksWorkThroughBroker) {
  Kernel kernel;
  auto ids = BuildFullMesh(&kernel.net(), 5);
  kernel.AdoptNetworkSites();
  SiteId home = ids[0];
  SiteId broker_site = ids[1];

  ft::RearGuard guard(&kernel, ft::GuardOptions{30 * kMillisecond, 3, 4});
  guard.Install();

  sched::BrokerService broker(&kernel, broker_site);
  broker.Install();
  for (size_t i = 2; i <= 3; ++i) {
    sched::ProviderInfo p;
    p.service = "archive";
    p.site = kernel.net().site_name(ids[i]);
    p.agent = "archive";
    broker.Register(p);
    kernel.AddPlaceInitializer([site = ids[i]](Place& place) {
      if (place.site() != site) {
        return;
      }
      place.RegisterAgent("archive", [](Place& at, Briefcase& bc) {
        at.Cabinet("archive").AppendString("ITEMS",
                                           bc.GetString("ITEM").value_or(""));
        bc.SetString("STORED", at.name());
        return OkStatus();
      });
    });
  }

  // Itinerary: go to the broker, find an archive provider, go there, store,
  // come home.  Phases via briefcase state; guarded hops throughout.
  const char* code = R"(
    if {[bc_has STORED]} {
      cab_set t RESULT [bc_get STORED]
      ft_retire
    } elseif {[bc_has PROVIDER_SITE]} {
      meet archive
      ft_jump s0
    } elseif {[site] eq "s1"} {
      bc_set OP find
      bc_set SERVICE archive
      bc_set POLICY round_robin
      meet broker
      ft_jump [bc_get PROVIDER_SITE]
    } else {
      ft_jump s1
    }
  )";
  Briefcase bc;
  bc.SetString("AGENT", "archiver");
  bc.SetString("ITEM", "precious-record");
  bc.folder("ITINERARY").PushBackString("s1");
  bc.folder("ITINERARY").PushBackString("s2");
  bc.folder("ITINERARY").PushBackString("s3");
  bc.folder("ITINERARY").PushBackString("s0");
  ASSERT_TRUE(kernel.LaunchAgent(home, code, bc).ok());
  kernel.sim().RunUntil(5 * kSecond);

  // No failures: stored at the first round-robin provider (s2) and reported.
  EXPECT_EQ(kernel.place(home)->Cabinet("t").GetSingleString("RESULT").value_or(""),
            "s2");
  EXPECT_EQ(guard.TotalGuards(), 0u);
}

// Mail + marketplace: an invoice is mailed, then paid through the audited
// exchange; the court confirms a clean outcome.
TEST(IntegrationTest, InvoiceByMailThenAuditedPayment) {
  Kernel kernel;
  SiteId shop_site = kernel.AddSite("shopsite");
  SiteId customer_site = kernel.AddSite("customersite");
  SiteId bank = kernel.AddSite("bank");
  SiteId court = kernel.AddSite("court");
  for (SiteId a : {shop_site, customer_site, bank, court}) {
    for (SiteId b : {shop_site, customer_site, bank, court}) {
      if (a < b) {
        kernel.net().AddLink(a, b);
      }
    }
  }

  SignatureAuthority auth(8);
  cash::Mint mint(8);
  cash::Notary notary(&auth);
  cash::InstallMintAgent(&kernel, bank, &mint, &auth);
  cash::InstallNotaryAgent(&kernel, court, &notary);

  mail::MailSystem mail(&kernel);
  mail.Install();

  cash::MarketConfig config;
  config.customer_site = customer_site;
  config.provider_site = shop_site;
  config.mint_site = bank;
  config.notary_site = court;
  cash::Marketplace market(&kernel, &auth, &mint, &notary, config);
  market.FundCustomer(4, 25);

  // The shop mails an invoice; on delivery the customer pays.
  ASSERT_TRUE(mail.Send(shop_site, "shopkeeper", customer_site, "buyer",
                        "invoice-77", "please pay 50")
                  .ok());
  kernel.sim().Run();
  auto inbox = mail.Inbox(customer_site, "buyer");
  ASSERT_EQ(inbox.size(), 1u);
  ASSERT_EQ(inbox[0].subject, "invoice-77");

  ASSERT_TRUE(market.StartExchange("invoice-77", 50, cash::CheatMode::kHonest).ok());
  kernel.sim().Run();

  EXPECT_TRUE(market.record("invoice-77")->goods_received);
  EXPECT_EQ(market.provider_wallet().Balance(), 50u);
  EXPECT_EQ(market.AuditExchange("invoice-77").verdict, cash::Verdict::kClean);
}

// The whole paper in one scenario: a guarded weather-collection agent (§5)
// filters sensor cabinets in place (§1/§2) while one sensor site crashes
// mid-walk; the computation survives, skips the dead site, and the guard
// chain retires cleanly.
TEST(IntegrationTest, GuardedDataCollectionSurvivesSensorCrash) {
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  std::vector<SiteId> sensors;
  for (int i = 0; i < 3; ++i) {
    sensors.push_back(kernel.AddSite("sensor" + std::to_string(i)));
  }
  for (SiteId a : sensors) {
    kernel.net().AddLink(home, a);
    for (SiteId b : sensors) {
      if (a < b) {
        kernel.net().AddLink(a, b);
      }
    }
  }
  // Each sensor holds readings; sensor1 will die before the agent arrives.
  for (size_t i = 0; i < sensors.size(); ++i) {
    FileCabinet& cab = kernel.place(sensors[i])->Cabinet("wx");
    cab.AppendString("TEMPS", std::to_string(10 * (i + 1)));
    cab.AppendString("TEMPS", std::to_string(10 * (i + 1) + 35));
  }

  ft::RearGuard guard(&kernel, ft::GuardOptions{25 * kMillisecond, 3, 6});
  guard.Install();

  const char* collector = R"(
    if {[site] ne "home"} {
      foreach t [cab_list wx TEMPS] {
        if {$t > 30} { bc_put HOT "[site]:$t" }
      }
    }
    if {[bc_len ITINERARY] > 0} {
      ft_jump [bc_pop ITINERARY]
    } elseif {[site] ne "home"} {
      bc_put ITINERARY home
      ft_jump home
    } else {
      foreach h [bc_list HOT] { cab_append t HOT $h }
      cab_set t DONE 1
      ft_retire
    }
  )";
  Briefcase bc;
  bc.SetString("AGENT", "collector");
  for (SiteId s : sensors) {
    bc.folder("ITINERARY").PushBackString(kernel.net().site_name(s));
  }
  bc.folder("ITINERARY").PushBackString("home");
  ASSERT_TRUE(kernel.LaunchAgent(home, collector, bc).ok());
  // sensor1 dies while the agent is at sensor0 / in flight to sensor1.
  kernel.sim().After(1500, [&] { kernel.CrashSite(sensors[1]); });
  kernel.sim().RunUntil(5 * kSecond);

  Place* home_place = kernel.place(home);
  ASSERT_TRUE(home_place->Cabinet("t").HasFolder("DONE"));
  auto hot = home_place->Cabinet("t").ListStrings("HOT");
  // sensor0 (45) and sensor2 (65) reported; sensor1's reading died with it.
  EXPECT_TRUE(std::find(hot.begin(), hot.end(), "sensor0:45") != hot.end());
  EXPECT_TRUE(std::find(hot.begin(), hot.end(), "sensor2:65") != hot.end());
  for (const std::string& h : hot) {
    EXPECT_EQ(h.find("sensor1:"), std::string::npos) << h;
  }
  EXPECT_GE(guard.stats().relaunches, 1u);
  EXPECT_EQ(guard.TotalGuards(), 0u);
}

// Protected agents end-to-end from TACL (§4): a petitioner agent asks the
// broker for a meeting with an agent whose real name is secret; the
// protected agent later drains its queue with the secret.
TEST(IntegrationTest, ProtectedAgentMeetingViaTaclAgents) {
  Kernel kernel;
  SiteId hub = kernel.AddSite("hub");
  SiteId visitor_site = kernel.AddSite("visitorsite");
  kernel.net().AddLink(hub, visitor_site);

  sched::BrokerService broker(&kernel, hub);
  broker.Install();
  broker.Protect("the-oracle", "oracle-secret-77");

  // Petitioner: travels to the hub and files a meeting request whose payload
  // is its own briefcase, serialized into a folder ("folders ... can
  // themselves store agents and sets of folders").
  const char* petitioner = R"(
    if {[site] ne "hub"} {
      jump hub
    } else {
      bc_set OP request_meeting
      bc_set PUBLIC the-oracle
      bc_set QUESTION "when does the storm hit?"
      bc_put PAYLOAD [bc_get QUESTION]
      meet broker
      cab_set t REQUEST_STATUS [bc_get STATUS]
    }
  )";
  ASSERT_TRUE(kernel.LaunchAgent(visitor_site, petitioner).ok());
  kernel.sim().Run();
  EXPECT_EQ(*kernel.place(hub)->Cabinet("t").GetSingleString("REQUEST_STATUS"), "ok");

  // The protected agent collects with its secret name.
  const char* oracle = R"(
    bc_set OP collect
    bc_set SECRET oracle-secret-77
    meet broker
    foreach q [bc_list RETRIEVED] { cab_append oracle QUESTIONS $q }
  )";
  ASSERT_TRUE(kernel.LaunchAgent(hub, oracle).ok());
  auto questions = kernel.place(hub)->Cabinet("oracle").ListStrings("QUESTIONS");
  ASSERT_EQ(questions.size(), 1u);
  EXPECT_EQ(questions[0], "when does the storm hit?");
}

// Diffusion announcement + mailboxes: flood a notice to every site, each
// filing it into the local mailbox cabinet — §2's flooding example as a
// working application.
TEST(IntegrationTest, FloodedAnnouncementLandsEverywhere) {
  Kernel kernel;
  auto ids = BuildGrid(&kernel.net(), 3, 3);
  kernel.AdoptNetworkSites();

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(
      "cab_append mail BULLETIN \"meeting at noon\"");
  ASSERT_TRUE(kernel.place(ids[4])->Meet("diffusion", bc).ok());  // Center.
  kernel.sim().Run();

  for (SiteId s : ids) {
    EXPECT_EQ(kernel.place(s)->Cabinet("mail").Size("BULLETIN"), 1u)
        << kernel.net().site_name(s);
  }
}

}  // namespace
}  // namespace tacoma
