// JobServer (simulated work), Monitor (load reporting), TicketService (§4/§6).
#include <gtest/gtest.h>

#include "sched/broker.h"
#include "sched/jobs.h"
#include "sched/monitor.h"
#include "sched/ticket.h"

namespace tacoma::sched {
namespace {

class JobsTest : public ::testing::Test {
 protected:
  JobsTest() {
    worker_site_ = kernel_.AddSite("worksite");
    client_site_ = kernel_.AddSite("client");
    kernel_.net().AddLink(worker_site_, client_site_);
    server_ = std::make_unique<JobServer>(&kernel_, worker_site_, "worker", 1.0);
    server_->Install();
  }

  Briefcase MakeJob(const std::string& id, uint64_t duration_us,
                    bool want_reply = false) {
    Briefcase bc;
    bc.SetString("JOBID", id);
    bc.SetString("SERVICE", "compute");
    bc.SetString("DURATION", std::to_string(duration_us));
    if (want_reply) {
      bc.SetString("REPLY_HOST", "client");
      bc.SetString("REPLY_CONTACT", "done_sink");
    }
    return bc;
  }

  Kernel kernel_;
  SiteId worker_site_ = 0, client_site_ = 0;
  std::unique_ptr<JobServer> server_;
};

TEST_F(JobsTest, JobsTakeSimulatedTime) {
  Briefcase job = MakeJob("j1", 10 * kMillisecond);
  ASSERT_TRUE(kernel_.place(worker_site_)->Meet("worker", job).ok());
  EXPECT_EQ(server_->QueueLength(), 1u);
  kernel_.sim().Run();
  EXPECT_EQ(server_->QueueLength(), 0u);
  EXPECT_EQ(server_->stats().completed, 1u);
  EXPECT_EQ(kernel_.sim().Now(), 10 * kMillisecond);
}

TEST_F(JobsTest, JobsQueueSequentially) {
  for (int i = 0; i < 3; ++i) {
    Briefcase job = MakeJob("j" + std::to_string(i), 10 * kMillisecond);
    ASSERT_TRUE(kernel_.place(worker_site_)->Meet("worker", job).ok());
  }
  EXPECT_EQ(server_->QueueLength(), 3u);
  kernel_.sim().Run();
  EXPECT_EQ(kernel_.sim().Now(), 30 * kMillisecond);  // Serialized.
  EXPECT_EQ(server_->stats().completed, 3u);
}

TEST_F(JobsTest, SpeedScalesServiceTime) {
  JobServer fast(&kernel_, client_site_, "fastworker", 4.0);
  fast.Install();
  Briefcase job = MakeJob("j1", 40 * kMillisecond);
  ASSERT_TRUE(kernel_.place(client_site_)->Meet("fastworker", job).ok());
  kernel_.sim().Run();
  EXPECT_EQ(kernel_.sim().Now(), 10 * kMillisecond);  // 40ms / 4x speed.
}

TEST_F(JobsTest, CompletionNotificationDelivered) {
  std::vector<std::string> done;
  kernel_.place(client_site_)->RegisterAgent("done_sink",
                                             [&done](Place&, Briefcase& bc) {
                                               done.push_back(
                                                   bc.GetString("JOBID").value_or(""));
                                               return OkStatus();
                                             });
  Briefcase job = MakeJob("j42", 5 * kMillisecond, /*want_reply=*/true);
  ASSERT_TRUE(kernel_.place(worker_site_)->Meet("worker", job).ok());
  kernel_.sim().Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], "j42");
}

TEST_F(JobsTest, BadDurationRejected) {
  Briefcase job;
  job.SetString("JOBID", "x");
  job.SetString("DURATION", "not-a-number");
  EXPECT_FALSE(kernel_.place(worker_site_)->Meet("worker", job).ok());
}

TEST_F(JobsTest, MonitorReportsLoadToBroker) {
  BrokerService broker(&kernel_, client_site_);
  broker.Install();
  ProviderInfo p;
  p.service = "compute";
  p.site = "worksite";
  p.agent = "worker";
  broker.Register(p);

  Monitor monitor(&kernel_, server_.get(), {client_site_}, 20 * kMillisecond);
  monitor.Start();

  // Three long jobs arrive at t=0.
  for (int i = 0; i < 3; ++i) {
    Briefcase job = MakeJob("j" + std::to_string(i), 100 * kMillisecond);
    ASSERT_TRUE(kernel_.place(worker_site_)->Meet("worker", job).ok());
  }
  kernel_.sim().RunUntil(30 * kMillisecond);
  // The 20ms report (load 3 at sample time minus completions) has landed.
  EXPECT_GE(monitor.reports_sent(), 1u);
  EXPECT_GE(broker.providers("compute")->front().load, 1u);

  kernel_.sim().RunUntil(400 * kMillisecond);
  EXPECT_EQ(broker.providers("compute")->front().load, 0u);
}

TEST_F(JobsTest, MonitorSkipsReportsWhileSiteDown) {
  BrokerService broker(&kernel_, client_site_);
  broker.Install();
  Monitor monitor(&kernel_, server_.get(), {client_site_}, 10 * kMillisecond);
  monitor.Start();
  kernel_.sim().RunUntil(25 * kMillisecond);
  uint64_t before = monitor.reports_sent();
  kernel_.CrashSite(worker_site_);
  kernel_.sim().RunUntil(65 * kMillisecond);
  EXPECT_EQ(monitor.reports_sent(), before);  // Nothing while down.
  kernel_.RestartSite(worker_site_);
  kernel_.sim().RunUntil(100 * kMillisecond);
  EXPECT_GT(monitor.reports_sent(), before);  // Resumes after restart.
}

class TicketTest : public ::testing::Test {
 protected:
  TicketTest() : auth_(17), tickets_(&kernel_, &auth_) {
    site_ = kernel_.AddSite("s");
    tickets_.Install(site_);
  }

  Kernel kernel_;
  SignatureAuthority auth_;
  TicketService tickets_;
  SiteId site_ = 0;
};

TEST_F(TicketTest, IssueAndVerify) {
  Ticket t = tickets_.Issue("compute", "alice", 100 * kSecond);
  EXPECT_TRUE(tickets_.Verify(t, "compute"));
  EXPECT_FALSE(tickets_.Verify(t, "storage"));
}

TEST_F(TicketTest, ExpiryEnforced) {
  Ticket t = tickets_.Issue("compute", "alice", 10 * kMillisecond);
  EXPECT_TRUE(tickets_.Verify(t, "compute"));
  kernel_.sim().RunUntil(20 * kMillisecond);
  EXPECT_FALSE(tickets_.Verify(t, "compute"));
}

TEST_F(TicketTest, TamperedTicketRejected) {
  Ticket t = tickets_.Issue("compute", "alice", kSecond);
  t.holder = "mallory";
  EXPECT_FALSE(tickets_.Verify(t, "compute"));
}

TEST_F(TicketTest, SerializeRoundTrip) {
  Ticket t = tickets_.Issue("compute", "alice", kSecond);
  auto restored = Ticket::Deserialize(t.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(tickets_.Verify(*restored, "compute"));
}

TEST_F(TicketTest, MeetProtocolIssueVerify) {
  Place* place = kernel_.place(site_);
  Briefcase issue;
  issue.SetString("OP", "issue");
  issue.SetString("SERVICE", "compute");
  issue.SetString("HOLDER", "alice");
  issue.SetString("LIFETIME", std::to_string(kSecond));
  ASSERT_TRUE(place->Meet("ticket", issue).ok());
  ASSERT_TRUE(issue.Has("TICKET"));

  Briefcase verify;
  verify.SetString("OP", "verify");
  verify.SetString("SERVICE", "compute");
  verify.folder("TICKET").PushBack(*issue.Find("TICKET")->Front());
  ASSERT_TRUE(place->Meet("ticket", verify).ok());
  EXPECT_EQ(*verify.GetString("STATUS"), "ok");

  Briefcase wrong;
  wrong.SetString("OP", "verify");
  wrong.SetString("SERVICE", "other");
  wrong.folder("TICKET").PushBack(*issue.Find("TICKET")->Front());
  ASSERT_TRUE(place->Meet("ticket", wrong).ok());
  EXPECT_EQ(*wrong.GetString("STATUS"), "invalid");
}

TEST_F(TicketTest, WorkerDemandsTickets) {
  JobServer server(&kernel_, site_, "gated_worker", 1.0);
  server.RequireTickets(&tickets_);
  server.Install();

  Briefcase no_ticket;
  no_ticket.SetString("JOBID", "j1");
  no_ticket.SetString("SERVICE", "compute");
  no_ticket.SetString("DURATION", "1000");
  EXPECT_EQ(kernel_.place(site_)->Meet("gated_worker", no_ticket).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(server.stats().rejected_no_ticket, 1u);

  Ticket t = tickets_.Issue("compute", "alice", kSecond);
  Briefcase with_ticket;
  with_ticket.SetString("JOBID", "j2");
  with_ticket.SetString("SERVICE", "compute");
  with_ticket.SetString("DURATION", "1000");
  with_ticket.folder("TICKET").PushBack(t.Serialize());
  EXPECT_TRUE(kernel_.place(site_)->Meet("gated_worker", with_ticket).ok());
  EXPECT_EQ(server.stats().accepted, 1u);
}

}  // namespace
}  // namespace tacoma::sched
