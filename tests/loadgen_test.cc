// End-to-end scheduling scenarios: client -> broker -> provider -> done.
#include "sched/loadgen.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sched/jobs.h"
#include "sched/monitor.h"

namespace tacoma::sched {
namespace {

// A small scheduling world: one client, one broker, N heterogeneous workers.
class SchedulingWorld {
 public:
  SchedulingWorld(size_t workers, uint64_t seed = 7)
      : kernel_(KernelOptions{seed, 5'000'000, false}) {
    client_ = kernel_.AddSite("client");
    broker_site_ = kernel_.AddSite("brokersite");
    kernel_.net().AddLink(client_, broker_site_);
    broker_ = std::make_unique<BrokerService>(&kernel_, broker_site_);
    broker_->Install();

    for (size_t i = 0; i < workers; ++i) {
      SiteId site = kernel_.AddSite("w" + std::to_string(i));
      kernel_.net().AddLink(site, broker_site_);
      kernel_.net().AddLink(site, client_);
      double speed = 1.0 + static_cast<double>(i);  // Heterogeneous capacity.
      auto server = std::make_unique<JobServer>(&kernel_, site, "worker", speed);
      server->Install();
      ProviderInfo p;
      p.service = "compute";
      p.site = kernel_.net().site_name(site);
      p.agent = "worker";
      p.capacity = speed;
      broker_->Register(p);
      monitors_.push_back(std::make_unique<Monitor>(
          &kernel_, server.get(), std::vector<SiteId>{broker_site_},
          5 * kMillisecond));
      monitors_.back()->Start();
      servers_.push_back(std::move(server));
    }
  }

  Kernel& kernel() { return kernel_; }
  SiteId client() const { return client_; }
  SiteId broker_site() const { return broker_site_; }
  BrokerService& broker() { return *broker_; }
  std::vector<std::unique_ptr<JobServer>>& servers() { return servers_; }

 private:
  Kernel kernel_;
  SiteId client_ = 0, broker_site_ = 0;
  std::unique_ptr<BrokerService> broker_;
  std::vector<std::unique_ptr<JobServer>> servers_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
};

TEST(LoadGenTest, AllJobsCompleteViaBroker) {
  SchedulingWorld world(3);
  LoadGenOptions options;
  options.client_site = world.client();
  options.broker_site = world.broker_site();
  options.job_count = 20;
  options.job_duration_us = 8 * kMillisecond;
  options.inter_arrival_us = 2 * kMillisecond;
  options.policy = Policy::kLeastLoaded;
  LoadGenerator gen(&world.kernel(), options);
  gen.Start();
  world.kernel().sim().RunUntil(5 * kSecond);

  EXPECT_EQ(gen.completed(), 20u);
  for (const JobStat& job : gen.jobs()) {
    EXPECT_TRUE(job.done);
    EXPECT_GE(job.dispatched, job.submitted);
    EXPECT_GT(job.completed, job.dispatched);
  }
}

TEST(LoadGenTest, DirectModeSkipsBroker) {
  SchedulingWorld world(2);
  std::vector<ProviderInfo> direct;
  for (auto& server : world.servers()) {
    ProviderInfo p;
    p.service = "compute";
    p.site = world.kernel().net().site_name(server->site());
    p.agent = "worker";
    direct.push_back(p);
  }
  LoadGenOptions options;
  options.client_site = world.client();
  options.use_broker = false;
  options.job_count = 10;
  LoadGenerator gen(&world.kernel(), options, direct);
  gen.Start();
  uint64_t broker_finds_before = world.broker().stats().finds;
  world.kernel().sim().RunUntil(5 * kSecond);

  EXPECT_EQ(gen.completed(), 10u);
  EXPECT_EQ(world.broker().stats().finds, broker_finds_before);
}

TEST(LoadGenTest, LeastLoadedBeatsRandomOnTailLatency) {
  auto run = [](Policy policy, bool use_broker) {
    SchedulingWorld world(4, /*seed=*/21);
    LoadGenOptions options;
    options.client_site = world.client();
    options.broker_site = world.broker_site();
    options.policy = policy;
    options.use_broker = use_broker;
    options.job_count = 60;
    options.job_duration_us = 30 * kMillisecond;
    options.inter_arrival_us = 4 * kMillisecond;
    std::vector<ProviderInfo> direct;
    for (auto& server : world.servers()) {
      ProviderInfo p;
      p.service = "compute";
      p.site = world.kernel().net().site_name(server->site());
      p.agent = "worker";
      direct.push_back(p);
    }
    LoadGenerator gen(&world.kernel(), options, direct);
    gen.Start();
    world.kernel().sim().RunUntil(60 * kSecond);
    auto latencies = gen.Latencies();
    EXPECT_EQ(latencies.size(), 60u);
    // Mean latency.
    return std::accumulate(latencies.begin(), latencies.end(), uint64_t{0}) /
           std::max<size_t>(1, latencies.size());
  };

  uint64_t random_direct = run(Policy::kRandom, /*use_broker=*/false);
  uint64_t least_loaded = run(Policy::kLeastLoaded, /*use_broker=*/true);
  // Load- and capacity-aware placement should beat blind random placement;
  // workers differ 4x in speed, so the gap is comfortably large.
  EXPECT_LT(least_loaded, random_direct);
}

TEST(LoadGenTest, FastWorkersGetMoreWorkUnderLeastLoaded) {
  SchedulingWorld world(3, /*seed=*/5);
  LoadGenOptions options;
  options.client_site = world.client();
  options.broker_site = world.broker_site();
  options.policy = Policy::kLeastLoaded;
  options.job_count = 60;
  options.job_duration_us = 20 * kMillisecond;
  options.inter_arrival_us = 3 * kMillisecond;
  LoadGenerator gen(&world.kernel(), options);
  gen.Start();
  world.kernel().sim().RunUntil(60 * kSecond);
  ASSERT_EQ(gen.completed(), 60u);

  // The 3x-speed worker (w2) should complete more jobs than the 1x (w0).
  EXPECT_GT(world.servers()[2]->stats().completed,
            world.servers()[0]->stats().completed);
}

}  // namespace
}  // namespace tacoma::sched
