// Agent mail (§6): messages are mobile agents.
#include "mail/mail.h"

#include <gtest/gtest.h>

namespace tacoma::mail {
namespace {

class MailTest : public ::testing::Test {
 protected:
  MailTest() : mail_(&kernel_) {
    tromso_ = kernel_.AddSite("tromso");
    ithaca_ = kernel_.AddSite("ithaca");
    kernel_.net().AddLink(tromso_, ithaca_);
    mail_.Install();
  }

  Kernel kernel_;
  MailSystem mail_;
  SiteId tromso_ = 0, ithaca_ = 0;
};

TEST_F(MailTest, MessageSerializeRoundTrip) {
  MailMessage m;
  m.id = "msg-1";
  m.from_user = "dag";
  m.from_site = "tromso";
  m.to_user = "fred";
  m.subject = "agents";
  m.body = "operating system support for mobile agents";
  m.delivered_us = 123;
  auto restored = MailMessage::Deserialize(m.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->body, m.body);
  EXPECT_EQ(restored->delivered_us, 123u);
}

TEST_F(MailTest, SendDeliversToInbox) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "hello",
                         "greetings from the arctic")
                  .ok());
  kernel_.sim().Run();

  auto inbox = mail_.Inbox(ithaca_, "fred");
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from_user, "dag");
  EXPECT_EQ(inbox[0].subject, "hello");
  EXPECT_EQ(inbox[0].body, "greetings from the arctic");
  EXPECT_GT(inbox[0].delivered_us, 0u);
}

TEST_F(MailTest, DeliveryReceiptReturnsToSender) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "s", "b").ok());
  kernel_.sim().Run();
  auto receipts = mail_.Receipts(tromso_, "dag");
  ASSERT_EQ(receipts.size(), 1u);
  EXPECT_EQ(receipts[0], "msg-1");
  EXPECT_EQ(mail_.stats().sent, 1u);
  EXPECT_EQ(mail_.stats().delivered, 1u);
  EXPECT_EQ(mail_.stats().receipts, 1u);
}

TEST_F(MailTest, MultipleUsersSeparateInboxes) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "a", "1").ok());
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "robbert", "b", "2").ok());
  kernel_.sim().Run();
  EXPECT_EQ(mail_.Inbox(ithaca_, "fred").size(), 1u);
  EXPECT_EQ(mail_.Inbox(ithaca_, "robbert").size(), 1u);
  EXPECT_TRUE(mail_.Inbox(ithaca_, "nobody").empty());
}

TEST_F(MailTest, DrainEmptiesInbox) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "a", "1").ok());
  kernel_.sim().Run();
  auto drained = mail_.Drain(ithaca_, "fred");
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_TRUE(mail_.Inbox(ithaca_, "fred").empty());
}

TEST_F(MailTest, LocalDelivery) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", tromso_, "colleague", "s", "b").ok());
  kernel_.sim().Run();
  EXPECT_EQ(mail_.Inbox(tromso_, "colleague").size(), 1u);
  EXPECT_EQ(mail_.Receipts(tromso_, "dag").size(), 1u);
}

TEST_F(MailTest, MessagesAreAgentsExtraCodeRuns) {
  // The message agent runs rider code after depositing itself — here an
  // auto-responder that files a note in a cabinet at the destination.
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "ping", "are you there?",
                         "cab_set autoresponder LAST \"[bc_get SUBJECT] from "
                         "[bc_get MAIL_FROM]\"")
                  .ok());
  kernel_.sim().Run();
  EXPECT_EQ(*kernel_.place(ithaca_)->Cabinet("autoresponder").GetSingleString("LAST"),
            "ping from dag");
  EXPECT_EQ(mail_.Inbox(ithaca_, "fred").size(), 1u);
}

TEST_F(MailTest, SendToDownSiteFails) {
  kernel_.CrashSite(ithaca_);
  EXPECT_FALSE(mail_.Send(tromso_, "dag", ithaca_, "fred", "s", "b").ok());
}

TEST_F(MailTest, MailboxSurvivesCrashWhenFlushed) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "keep", "me").ok());
  kernel_.sim().Run();
  ASSERT_TRUE(kernel_.place(ithaca_)->Cabinet("mail").Flush().ok());
  kernel_.CrashSite(ithaca_);
  kernel_.RestartSite(ithaca_);
  auto inbox = mail_.Inbox(ithaca_, "fred");
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].subject, "keep");
}

TEST_F(MailTest, UnflushedMailLostToCrash) {
  ASSERT_TRUE(mail_.Send(tromso_, "dag", ithaca_, "fred", "lost", "gone").ok());
  kernel_.sim().Run();
  kernel_.CrashSite(ithaca_);
  kernel_.RestartSite(ithaca_);
  EXPECT_TRUE(mail_.Inbox(ithaca_, "fred").empty());
}

TEST_F(MailTest, SequentialIdsAssigned) {
  ASSERT_TRUE(mail_.Send(tromso_, "a", ithaca_, "x", "1", "").ok());
  ASSERT_TRUE(mail_.Send(tromso_, "a", ithaca_, "x", "2", "").ok());
  kernel_.sim().Run();
  auto inbox = mail_.Inbox(ithaca_, "x");
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_NE(inbox[0].id, inbox[1].id);
}

}  // namespace
}  // namespace tacoma::mail
