// Unified metrics registry: instrument semantics, histogram buckets, and
// snapshot determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace tacoma {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.AddCounter("a.count");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge& g = registry.AddGauge("a.gauge");
  g.Set(-3);
  EXPECT_EQ(g.value(), -3);

  EXPECT_TRUE(registry.Has("a.count"));
  EXPECT_TRUE(registry.Has("a.gauge"));
  EXPECT_FALSE(registry.Has("a.missing"));
  EXPECT_EQ(registry.Value("a.count"), 5);
  EXPECT_EQ(registry.Value("a.gauge"), -3);
  EXPECT_FALSE(registry.Value("a.missing").has_value());
}

TEST(MetricsTest, ReAddingReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& first = registry.AddCounter("x");
  first.Increment();
  Counter& again = registry.AddCounter("x");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 1u);
}

TEST(MetricsTest, ProbesAreReadAtSnapshotTime) {
  MetricsRegistry registry;
  uint64_t live = 0;
  registry.AddProbe("svc.live", [&live] { return live; });
  EXPECT_EQ(registry.Value("svc.live"), 0);
  live = 17;
  EXPECT_EQ(registry.Value("svc.live"), 17);
  EXPECT_NE(registry.TextSnapshot().find("svc.live 17"), std::string::npos);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  MetricsRegistry registry;
  Histogram& h = registry.AddHistogram("lat", {10, 100, 1000});
  h.Observe(5);     // <= 10
  h.Observe(10);    // <= 10 (bounds are inclusive upper edges)
  h.Observe(50);    // <= 100
  h.Observe(999);   // <= 1000
  h.Observe(5000);  // overflow

  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5u + 10 + 50 + 999 + 5000);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // Overflow.
  EXPECT_DOUBLE_EQ(h.Mean(), (5.0 + 10 + 50 + 999 + 5000) / 5);
  // p50 lands in the first bucket (2 of 5 at rank <= 2.5... the 3rd value is
  // in the second bucket), p99 in the overflow (reported as the last bound).
  EXPECT_EQ(h.ApproxPercentile(40), 10u);
  EXPECT_EQ(h.ApproxPercentile(99), 1000u);
}

TEST(MetricsTest, HistogramBoundsSortedAndDeduped) {
  Histogram h({100, 10, 100, 1});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], 1u);
  EXPECT_EQ(h.bounds()[1], 10u);
  EXPECT_EQ(h.bounds()[2], 100u);
}

TEST(MetricsTest, SimTimeBucketsCoverMicrosecondsToSeconds) {
  auto buckets = SimTimeBucketsUs();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.front(), 100u);          // 100us floor.
  EXPECT_EQ(buckets.back(), 10'000'000u);    // 10s ceiling.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
}

std::unique_ptr<MetricsRegistry> BuildPopulated() {
  auto registry = std::make_unique<MetricsRegistry>();
  registry->AddCounter("kernel.transfers_sent").Increment(12);
  registry->AddGauge("sched.queue_depth").Set(4);
  Histogram& h = registry->AddHistogram("kernel.transfer_delivery_us",
                                        SimTimeBucketsUs());
  h.Observe(250);
  h.Observe(4000);
  registry->AddProbe("mail.sent", [] { return uint64_t{3}; });
  return registry;
}

TEST(MetricsTest, TextSnapshotIsSortedAndDeterministic) {
  auto a = BuildPopulated();
  auto b = BuildPopulated();
  EXPECT_EQ(a->TextSnapshot(), b->TextSnapshot());
  EXPECT_EQ(a->JsonSnapshot(), b->JsonSnapshot());

  // Sorted: kernel.* precedes mail.* precedes sched.*.
  const std::string text = a->TextSnapshot();
  size_t kernel_at = text.find("kernel.transfers_sent");
  size_t mail_at = text.find("mail.sent");
  size_t sched_at = text.find("sched.queue_depth");
  ASSERT_NE(kernel_at, std::string::npos);
  ASSERT_NE(mail_at, std::string::npos);
  ASSERT_NE(sched_at, std::string::npos);
  EXPECT_LT(kernel_at, mail_at);
  EXPECT_LT(mail_at, sched_at);
}

TEST(MetricsTest, JsonSnapshotShape) {
  auto registry = BuildPopulated();
  const std::string json = registry->JsonSnapshot();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel.transfers_sent\":12"), std::string::npos);
  EXPECT_NE(json.find("\"sched.queue_depth\":4"), std::string::npos);
  EXPECT_NE(json.find("\"mail.sent\":3"), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);
}

TEST(MetricsTest, JsonSnapshotHistogramsCarryPercentiles) {
  MetricsRegistry registry;
  Histogram& h = registry.AddHistogram("lat", {10, 100, 1000});
  for (int i = 0; i < 90; ++i) {
    h.Observe(5);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(500);
  }
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"p50\":" + std::to_string(h.ApproxPercentile(50))),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p90\":" + std::to_string(h.ApproxPercentile(90))),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\":" + std::to_string(h.ApproxPercentile(99))),
            std::string::npos);
  // Bucket bounds ride along so a consumer can reconstruct the CDF.
  EXPECT_NE(json.find("\"le\":10"), std::string::npos);
  EXPECT_NE(json.find("\"le\":1000"), std::string::npos);
}

TEST(MetricsTest, FindHistogramLocatesInstrument) {
  MetricsRegistry registry;
  Histogram& h = registry.AddHistogram("lat", {10, 100});
  h.Observe(50);
  const Histogram* found = registry.FindHistogram("lat");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &h);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
}

TEST(MetricsTest, SharedStatisticsHelpers) {
  std::vector<uint64_t> values{5, 1, 9, 3, 7};
  EXPECT_EQ(PercentileOf(values, 0), 1u);
  EXPECT_EQ(PercentileOf(values, 50), 5u);
  EXPECT_EQ(PercentileOf(values, 100), 9u);
  EXPECT_DOUBLE_EQ(MeanOf(values), 5.0);
  EXPECT_EQ(PercentileOf(std::vector<uint64_t>{}, 50), 0u);
  EXPECT_DOUBLE_EQ(MeanOf(std::vector<uint64_t>{}), 0.0);
}

}  // namespace
}  // namespace tacoma
