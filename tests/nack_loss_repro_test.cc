#include <gtest/gtest.h>
#include "core/kernel.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

// Reliable transfers to a contact that does NOT exist at the destination.
// Every one of them is structurally refused, so every one should end
// "nacked" and reach the dead-letter contact.  With a lossy link, a lost
// NACK should be repaired by retry + repeated nack (per the comment in
// SendControl).  If instead the receiver's dedup window re-ACKs the retry,
// refused transfers get counted as acked and never dead-lettered.
TEST(NackLossTest, LostNackStillEndsNacked) {
  KernelOptions options;
  options.seed = 7;
  options.reliability.mode = Reliability::kReliable;
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();

  int dead_letters = 0;
  kernel.AddPlaceInitializer([&](Place& place) {
    place.RegisterAgent("morgue", [&](Place&, Briefcase&) {
      ++dead_letters;
      return OkStatus();
    });
  });
  kernel.net().SetLinkLoss(sites[0], sites[1], 0.5);

  const int kN = 60;
  for (int i = 0; i < kN; ++i) {
    Briefcase bc;
    bc.SetString("TOKEN", "t" + std::to_string(i));
    TransferOptions to;
    to.dead_letter = "morgue";
    ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "no_such_contact", bc, to).ok());
  }
  kernel.sim().Run();

  const auto& s = kernel.stats();
  // No transfer can ever be dispatched: none should be acked.
  EXPECT_EQ(s.transfers_acked, 0u)
      << "refused transfers were acked (lost nack -> dedup re-ack)";
  EXPECT_EQ(s.transfers_nacked + s.transfers_expired, (uint64_t)kN);
  EXPECT_EQ(dead_letters, (int)(s.transfers_nacked + s.transfers_expired));
}

}  // namespace
}  // namespace tacoma
