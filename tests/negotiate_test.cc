// Negotiation (§1: "use a service, perhaps after some negotiation").
#include "cash/negotiate.h"

#include <gtest/gtest.h>

namespace tacoma::cash {
namespace {

class NegotiateTest : public ::testing::Test {
 protected:
  NegotiateTest() {
    customer_ = kernel_.AddSite("customer");
    provider_ = kernel_.AddSite("provider");
    kernel_.net().AddLink(customer_, provider_);
  }

  NegotiationRecord RunOnce(NegotiationConfig config) {
    config.customer_site = customer_;
    config.provider_site = provider_;
    Negotiator negotiator(&kernel_, config);
    EXPECT_TRUE(negotiator.Start("n1").ok());
    kernel_.sim().Run();
    return *negotiator.record("n1");
  }

  Kernel kernel_;
  SiteId customer_ = 0, provider_ = 0;
};

TEST_F(NegotiateTest, OverlappingLimitsAgree) {
  NegotiationConfig config;
  config.ask = 100;
  config.floor = 60;
  config.budget = 80;
  config.step = 10;
  NegotiationRecord rec = RunOnce(config);
  ASSERT_TRUE(rec.settled);
  EXPECT_TRUE(rec.agreed);
  // The price must land inside [floor, budget]: acceptable to both.
  EXPECT_GE(rec.price, config.floor);
  EXPECT_LE(rec.price, config.budget);
  EXPECT_GT(rec.rounds, 1);  // It took actual haggling.
}

TEST_F(NegotiateTest, DisjointLimitsWalkAway) {
  NegotiationConfig config;
  config.ask = 100;
  config.floor = 90;
  config.budget = 50;  // Far below the floor: no deal exists.
  config.step = 10;
  NegotiationRecord rec = RunOnce(config);
  ASSERT_TRUE(rec.settled);
  EXPECT_FALSE(rec.agreed);
  EXPECT_LE(rec.rounds, config.max_rounds);
}

TEST_F(NegotiateTest, GenerousBudgetClosesFast) {
  NegotiationConfig config;
  config.ask = 100;
  config.floor = 100;
  config.budget = 200;  // Customer can afford the full ask.
  config.step = 25;
  NegotiationRecord rec = RunOnce(config);
  ASSERT_TRUE(rec.agreed);
  EXPECT_GE(rec.price, 75u);  // Near the ask, not near the opening lowball.
}

TEST_F(NegotiateTest, RoundLimitTerminatesStubbornParties) {
  NegotiationConfig config;
  config.ask = 1000;
  config.floor = 999;
  config.budget = 998;  // One unit short, tiny steps: would haggle forever.
  config.step = 1;
  config.max_rounds = 8;
  NegotiationRecord rec = RunOnce(config);
  ASSERT_TRUE(rec.settled);
  EXPECT_FALSE(rec.agreed);
  EXPECT_LE(rec.rounds, 8);
}

TEST_F(NegotiateTest, DeterministicOutcome) {
  NegotiationConfig config;
  config.ask = 100;
  config.floor = 40;
  config.budget = 90;
  config.step = 15;
  NegotiationRecord first = RunOnce(config);

  // A fresh identical world reaches the same deal.
  Kernel other;
  SiteId c = other.AddSite("customer");
  SiteId p = other.AddSite("provider");
  other.net().AddLink(c, p);
  config.customer_site = c;
  config.provider_site = p;
  Negotiator negotiator(&other, config);
  ASSERT_TRUE(negotiator.Start("n1").ok());
  other.sim().Run();
  EXPECT_EQ(negotiator.record("n1")->price, first.price);
  EXPECT_EQ(negotiator.record("n1")->rounds, first.rounds);
}

TEST_F(NegotiateTest, DuplicateIdRejected) {
  NegotiationConfig config;
  config.customer_site = customer_;
  config.provider_site = provider_;
  Negotiator negotiator(&kernel_, config);
  ASSERT_TRUE(negotiator.Start("n1").ok());
  EXPECT_FALSE(negotiator.Start("n1").ok());
}

TEST_F(NegotiateTest, PrivateLimitsNeverTravel) {
  // Structural untraceability-style check: inspect every message the
  // customer sends; the budget figure must never appear.
  NegotiationConfig config;
  config.customer_site = customer_;
  config.provider_site = provider_;
  config.ask = 100;
  config.floor = 60;
  config.budget = 83;  // Distinctive value.
  config.step = 10;

  std::vector<std::string> seen_bids;
  Negotiator negotiator(&kernel_, config);
  // Wrap the provider's haggle agent to record incoming BID values.
  Place* provider_place = kernel_.place(provider_);
  MeetHandler original;  // The initializer already registered "haggle".
  provider_place->RegisterAgent(
      "haggle_spy", [provider_place, &seen_bids](Place& at, Briefcase& bc) {
        seen_bids.push_back(bc.GetString("BID").value_or(""));
        return at.Meet("haggle", bc);
      });
  (void)original;
  // Route the opener through the spy by hand.
  ASSERT_TRUE(negotiator.Start("n1").ok());
  kernel_.sim().Run();
  const NegotiationRecord* rec = negotiator.record("n1");
  ASSERT_TRUE(rec->settled);
  // Bids approach but never reveal the budget unless the budget IS the bid
  // cap reached; in this configuration agreement happens below it.
  EXPECT_TRUE(rec->agreed);
  EXPECT_LT(rec->price, config.budget);
}

}  // namespace
}  // namespace tacoma::cash
