#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/topology.h"

namespace tacoma {
namespace {

struct Delivered {
  SiteId from;
  Bytes payload;
  SimTime at;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_) {}

  // Records deliveries at `site` into `log`.
  void Record(SiteId site, std::vector<Delivered>* log) {
    net_.SetHandler(site, [this, log](SiteId from, const SharedBytes& payload) {
      log->push_back({from, payload.ToBytes(), sim_.Now()});
    });
  }

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DirectDelivery) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b, {10 * kMillisecond, 1'000'000});
  std::vector<Delivered> log;
  Record(b, &log);

  ASSERT_TRUE(net_.Send(a, b, ToBytes("hello")).ok());
  sim_.Run();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, a);
  EXPECT_EQ(ToString(log[0].payload), "hello");
  EXPECT_EQ(net_.stats().messages_delivered, 1u);
}

TEST_F(NetworkTest, LatencyAndTransmissionTime) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  // 10ms latency, 1000 bytes/sec bandwidth.
  net_.AddLink(a, b, {10 * kMillisecond, 1000});
  std::vector<Delivered> log;
  Record(b, &log);

  Bytes payload(500);  // 500 bytes at 1000 B/s = 0.5s transmission.
  ASSERT_TRUE(net_.Send(a, b, payload).ok());
  sim_.Run();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, 500 * kMillisecond + 10 * kMillisecond);
}

TEST_F(NetworkTest, LinkContentionSerializesTransmissions) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b, {0, 1000});
  std::vector<Delivered> log;
  Record(b, &log);

  Bytes payload(1000);  // Each takes a full second of link time.
  ASSERT_TRUE(net_.Send(a, b, payload).ok());
  ASSERT_TRUE(net_.Send(a, b, payload).ok());
  sim_.Run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].at, 1 * kSecond);
  EXPECT_EQ(log[1].at, 2 * kSecond);  // Queued behind the first.
}

TEST_F(NetworkTest, MultiHopRouting) {
  // a - b - c line; message a->c crosses both links.
  auto ids = BuildLine(&net_, 3, {1 * kMillisecond, 1'000'000'000});
  std::vector<Delivered> log;
  Record(ids[2], &log);

  ASSERT_TRUE(net_.Send(ids[0], ids[2], ToBytes("x")).ok());
  sim_.Run();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, ids[0]);
  // 2 hops x (1ms latency + 1us ceil-rounded transmission of 1 byte).
  EXPECT_EQ(log[0].at, 2 * kMillisecond + 2);
  EXPECT_EQ(net_.stats().link_traversals, 2u);
}

TEST_F(NetworkTest, BytesAccountedPerTraversedLink) {
  auto ids = BuildLine(&net_, 4);
  std::vector<Delivered> log;
  Record(ids[3], &log);
  Bytes payload(100);
  ASSERT_TRUE(net_.Send(ids[0], ids[3], payload).ok());
  sim_.Run();
  // 3 hops x 100 bytes.
  EXPECT_EQ(net_.stats().bytes_on_wire, 300u);
  LinkStats first = net_.DirectedLinkStats(ids[0], ids[1]);
  EXPECT_EQ(first.bytes, 100u);
  EXPECT_EQ(first.messages, 1u);
}

TEST_F(NetworkTest, SendToUnreachableSiteFails) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");  // No link.
  EXPECT_EQ(net_.Send(a, b, ToBytes("x")).code(), StatusCode::kUnavailable);
}

TEST_F(NetworkTest, SendToDownSiteFails) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b);
  net_.CrashSite(b);
  EXPECT_FALSE(net_.Send(a, b, ToBytes("x")).ok());
  net_.RestartSite(b);
  EXPECT_TRUE(net_.Send(a, b, ToBytes("x")).ok());
}

TEST_F(NetworkTest, RoutesAroundDeadIntermediate) {
  // Square: a-b-d and a-c-d.
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  SiteId c = net_.AddSite("c");
  SiteId d = net_.AddSite("d");
  net_.AddLink(a, b);
  net_.AddLink(b, d);
  net_.AddLink(a, c);
  net_.AddLink(c, d);
  std::vector<Delivered> log;
  Record(d, &log);

  net_.CrashSite(b);
  ASSERT_TRUE(net_.Send(a, d, ToBytes("x")).ok());
  sim_.Run();
  ASSERT_EQ(log.size(), 1u);
  // Traffic went through c.
  EXPECT_EQ(net_.DirectedLinkStats(a, c).messages, 1u);
  EXPECT_EQ(net_.DirectedLinkStats(a, b).messages, 0u);
}

TEST_F(NetworkTest, InFlightMessageDroppedWhenDestinationCrashes) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b, {100 * kMillisecond, 1'000'000});
  std::vector<Delivered> log;
  Record(b, &log);

  ASSERT_TRUE(net_.Send(a, b, ToBytes("x")).ok());
  sim_.After(10 * kMillisecond, [&] { net_.CrashSite(b); });
  sim_.Run();

  EXPECT_TRUE(log.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, MessageToRestartedSiteIsNotDeliveredToNewIncarnation) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b, {100 * kMillisecond, 1'000'000});
  std::vector<Delivered> log;
  Record(b, &log);

  ASSERT_TRUE(net_.Send(a, b, ToBytes("x")).ok());
  sim_.After(10 * kMillisecond, [&] { net_.CrashSite(b); });
  sim_.After(20 * kMillisecond, [&] { net_.RestartSite(b); });
  sim_.Run();

  // Epoch changed: the old message must not leak into the new incarnation.
  EXPECT_TRUE(log.empty());
}

TEST_F(NetworkTest, CutLinkBlocksAndRestoreRepairs) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b);
  net_.CutLink(a, b);
  EXPECT_FALSE(net_.Send(a, b, ToBytes("x")).ok());
  net_.RestoreLink(a, b);
  EXPECT_TRUE(net_.Send(a, b, ToBytes("x")).ok());
}

TEST_F(NetworkTest, HopCount) {
  auto ids = BuildLine(&net_, 5);
  EXPECT_EQ(net_.HopCount(ids[0], ids[4]).value(), 4u);
  EXPECT_EQ(net_.HopCount(ids[0], ids[0]).value(), 0u);
  SiteId lonely = net_.AddSite("lonely");
  EXPECT_FALSE(net_.HopCount(ids[0], lonely).has_value());
}

TEST_F(NetworkTest, NeighborsListsAdjacency) {
  auto ids = BuildStar(&net_, 4);
  EXPECT_EQ(net_.Neighbors(ids[0]).size(), 3u);
  EXPECT_EQ(net_.Neighbors(ids[1]).size(), 1u);
}

TEST_F(NetworkTest, FindSiteByName) {
  net_.AddSite("alpha");
  SiteId beta = net_.AddSite("beta");
  EXPECT_EQ(net_.FindSite("beta").value(), beta);
  EXPECT_FALSE(net_.FindSite("gamma").has_value());
}

TEST_F(NetworkTest, ResetStatsClears) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b);
  net_.SetHandler(b, [](SiteId, const SharedBytes&) {});
  ASSERT_TRUE(net_.Send(a, b, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_GT(net_.stats().messages_sent, 0u);
  net_.ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.DirectedLinkStats(a, b).bytes, 0u);
}

TEST_F(NetworkTest, CrossTrafficQueuesOnSharedLink) {
  // Two flows (a->c and b->c via hub) share the hub->c link: their
  // transmissions serialize there.
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  SiteId hub = net_.AddSite("hub");
  SiteId c = net_.AddSite("c");
  net_.AddLink(a, hub, {0, 1'000'000'000});
  net_.AddLink(b, hub, {0, 1'000'000'000});
  net_.AddLink(hub, c, {0, 1000});  // 1000 B/s bottleneck.
  std::vector<Delivered> log;
  Record(c, &log);

  ASSERT_TRUE(net_.Send(a, c, Bytes(1000)).ok());
  ASSERT_TRUE(net_.Send(b, c, Bytes(1000)).ok());
  sim_.Run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].at, 1 * kSecond + 1);  // +1us ceil on the fast first hop.
  EXPECT_EQ(log[1].at, 2 * kSecond + 1);  // Queued behind the first flow.
}

TEST_F(NetworkTest, PartitionHealsAfterRestore) {
  auto ids = BuildLine(&net_, 3);
  std::vector<Delivered> log;
  Record(ids[2], &log);

  net_.CutLink(ids[0], ids[1]);  // Partition {0} | {1,2}.
  EXPECT_FALSE(net_.Send(ids[0], ids[2], ToBytes("x")).ok());
  EXPECT_FALSE(net_.HopCount(ids[0], ids[2]).has_value());

  net_.RestoreLink(ids[0], ids[1]);
  EXPECT_EQ(net_.HopCount(ids[0], ids[2]).value(), 2u);
  ASSERT_TRUE(net_.Send(ids[0], ids[2], ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(log.size(), 1u);
}

TEST_F(NetworkTest, RestartHookFires) {
  SiteId a = net_.AddSite("a");
  int hooks = 0;
  net_.SetRestartHook(a, [&](SiteId) { ++hooks; });
  net_.CrashSite(a);
  net_.RestartSite(a);
  EXPECT_EQ(hooks, 1);
  // Restarting an up site is a no-op.
  net_.RestartSite(a);
  EXPECT_EQ(hooks, 1);
}

// Regression: a frame in flight TOWARD an intermediate hop must die when that
// hop crashes and restarts before the frame lands — the restarted incarnation
// must not forward traffic accepted by its predecessor.  (The hop lambda used
// to check only `up`, so a quick crash+restart cycle let the frame through.)
TEST_F(NetworkTest, InFlightFrameNotForwardedByRestartedIntermediate) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  SiteId c = net_.AddSite("c");
  net_.AddLink(a, b, {10 * kMillisecond, 1'000'000});
  net_.AddLink(b, c, {10 * kMillisecond, 1'000'000});
  std::vector<Delivered> log;
  Record(c, &log);

  ASSERT_TRUE(net_.Send(a, c, ToBytes("x")).ok());
  // The frame reaches b after ~10 ms; b bounces while it is still on the
  // a-b wire.
  sim_.After(3 * kMillisecond, [&] { net_.CrashSite(b); });
  sim_.After(6 * kMillisecond, [&] { net_.RestartSite(b); });
  sim_.Run();

  EXPECT_TRUE(log.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

// Regression: a self-send must be deferred through the event queue like any
// other delivery.  Synchronous dispatch ran the handler inside the sender's
// Send call — re-entrancy that let an agent jumping to its own site recurse
// through the kernel until the meet-depth guard killed it.
TEST_F(NetworkTest, SelfSendIsDeliveredAsynchronously) {
  SiteId a = net_.AddSite("a");
  std::vector<Delivered> log;
  Record(a, &log);

  ASSERT_TRUE(net_.Send(a, a, ToBytes("loop")).ok());
  EXPECT_TRUE(log.empty()) << "handler ran re-entrantly inside Send";
  sim_.Run();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, a);
  EXPECT_EQ(log[0].at, 0u);  // Same instant, later event.
  EXPECT_EQ(net_.stats().messages_delivered, 1u);
}

// Regression: a crashed self-addressed frame still honours epoch fencing.
TEST_F(NetworkTest, SelfSendDroppedWhenSiteBouncesFirst) {
  SiteId a = net_.AddSite("a");
  std::vector<Delivered> log;
  Record(a, &log);

  ASSERT_TRUE(net_.Send(a, a, ToBytes("loop")).ok());
  net_.CrashSite(a);
  net_.RestartSite(a);
  sim_.Run();

  EXPECT_TRUE(log.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

// Regression: CutLink must forget the wire's queued busy-time.  A restored
// link used to inherit `next_free` from traffic that died with the cut, so
// the first message after repair waited out a phantom backlog.
TEST_F(NetworkTest, RestoredLinkStartsFromAnIdleWire) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  // 1 Mbit/s: a 125000-byte payload occupies the wire for 125 ms.
  net_.AddLink(a, b, {10 * kMillisecond, 1'000'000});
  std::vector<Delivered> log;
  Record(b, &log);

  ASSERT_TRUE(net_.Send(a, b, Bytes(125'000, 0xaa)).ok());
  net_.CutLink(a, b);
  net_.RestoreLink(a, b);
  ASSERT_TRUE(net_.Send(a, b, Bytes(125, 0xbb)).ok());
  sim_.Run();

  ASSERT_FALSE(log.empty());
  // 125 bytes at 1 Mbit/s = 125 us of transmission + 10 ms latency.  With
  // the stale backlog it would not land until ~135 ms.
  EXPECT_EQ(log[0].at, 10 * kMillisecond + 125u);
}

// Regression: re-adding an existing link only updates its parameters; it
// must not silently resurrect a link an operator cut.
TEST_F(NetworkTest, AddLinkDoesNotResurrectCutLink) {
  SiteId a = net_.AddSite("a");
  SiteId b = net_.AddSite("b");
  net_.AddLink(a, b, {10 * kMillisecond, 1'000'000});
  std::vector<Delivered> log;
  Record(b, &log);
  net_.CutLink(a, b);

  net_.AddLink(a, b, {20 * kMillisecond, 2'000'000});
  EXPECT_FALSE(net_.Send(a, b, ToBytes("x")).ok());

  net_.RestoreLink(a, b);
  ASSERT_TRUE(net_.Send(a, b, ToBytes("x")).ok());
  sim_.Run();
  ASSERT_EQ(log.size(), 1u);
  // The parameter update did land: 20 ms latency (plus 1 us of transmission
  // for one byte at 2 Mbit/s), not the original 10 ms.
  EXPECT_EQ(log[0].at, 20 * kMillisecond + 1u);
}

}  // namespace
}  // namespace tacoma
