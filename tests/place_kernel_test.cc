#include <gtest/gtest.h>

#include "core/kernel.h"
#include "serial/encoder.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    a_ = kernel_.AddSite("alpha");
    b_ = kernel_.AddSite("beta");
    kernel_.net().AddLink(a_, b_);
  }

  Kernel kernel_;
  SiteId a_ = 0;
  SiteId b_ = 0;
};

TEST_F(KernelTest, PlacesExistForSites) {
  ASSERT_NE(kernel_.place(a_), nullptr);
  EXPECT_EQ(kernel_.place(a_)->name(), "alpha");
  EXPECT_EQ(kernel_.place(a_)->site(), a_);
  EXPECT_EQ(kernel_.place(999), nullptr);
}

TEST_F(KernelTest, SystemAgentsInstalled) {
  Place* place = kernel_.place(a_);
  for (const char* agent : {"ag_tacl", "rexec", "courier", "diffusion", "relay"}) {
    EXPECT_TRUE(place->HasAgent(agent)) << agent;
  }
}

TEST_F(KernelTest, SitesFolderListsNeighbors) {
  Place* place = kernel_.place(a_);
  auto neighbors = place->Cabinet("system").ListStrings(kSitesFolder);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], "beta");
}

TEST_F(KernelTest, MeetDispatchesToRegisteredAgent) {
  Place* place = kernel_.place(a_);
  place->RegisterAgent("echo", [](Place&, Briefcase& bc) {
    bc.SetString("REPLY", "heard " + bc.GetString("SAY").value_or(""));
    return OkStatus();
  });
  Briefcase bc;
  bc.SetString("SAY", "hi");
  ASSERT_TRUE(place->Meet("echo", bc).ok());
  EXPECT_EQ(*bc.GetString("REPLY"), "heard hi");
  EXPECT_EQ(place->stats().meets, 1u);
}

TEST_F(KernelTest, MeetUnknownAgentFails) {
  Briefcase bc;
  Status s = kernel_.place(a_)->Meet("ghost", bc);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(kernel_.place(a_)->stats().failed_meets, 1u);
}

TEST_F(KernelTest, MeetRecursionBounded) {
  Place* place = kernel_.place(a_);
  place->RegisterAgent("narcissist", [](Place& at, Briefcase& bc) {
    return at.Meet("narcissist", bc);
  });
  Briefcase bc;
  Status s = place->Meet("narcissist", bc);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(KernelTest, AgentCanReplaceItselfDuringMeet) {
  Place* place = kernel_.place(a_);
  place->RegisterAgent("shape", [](Place& at, Briefcase& bc) {
    bc.SetString("WHO", "first");
    at.RegisterAgent("shape", [](Place&, Briefcase& inner) {
      inner.SetString("WHO", "second");
      return OkStatus();
    });
    return OkStatus();
  });
  Briefcase bc;
  ASSERT_TRUE(place->Meet("shape", bc).ok());
  EXPECT_EQ(*bc.GetString("WHO"), "first");
  ASSERT_TRUE(place->Meet("shape", bc).ok());
  EXPECT_EQ(*bc.GetString("WHO"), "second");
}

TEST_F(KernelTest, TaclResidentAgent) {
  kernel_.place(a_)->RegisterTaclAgent("adder",
                                       "bc_set SUM [expr {[bc_get X] + [bc_get Y]}]");
  Briefcase bc;
  bc.SetString("X", "2");
  bc.SetString("Y", "40");
  ASSERT_TRUE(kernel_.place(a_)->Meet("adder", bc).ok());
  EXPECT_EQ(*bc.GetString("SUM"), "42");
}

TEST_F(KernelTest, TransferAgentDeliversAndMeets) {
  std::string got;
  kernel_.place(b_)->RegisterAgent("sink", [&got](Place&, Briefcase& bc) {
    got = bc.GetString("DATA").value_or("");
    return OkStatus();
  });
  Briefcase bc;
  bc.SetString("DATA", "payload");
  ASSERT_TRUE(kernel_.TransferAgent(a_, b_, "sink", bc).ok());
  kernel_.sim().Run();
  EXPECT_EQ(got, "payload");
  EXPECT_EQ(kernel_.stats().transfers_delivered, 1u);
}

TEST_F(KernelTest, TransferRecordsProvenance) {
  std::string from;
  kernel_.place(b_)->RegisterAgent("sink", [&from](Place&, Briefcase& bc) {
    from = bc.GetString("FROM").value_or("");
    return OkStatus();
  });
  ASSERT_TRUE(kernel_.TransferAgent(a_, b_, "sink", Briefcase()).ok());
  kernel_.sim().Run();
  EXPECT_EQ(from, "alpha");
}

TEST_F(KernelTest, TransferToUnknownContactCounted) {
  ASSERT_TRUE(kernel_.TransferAgent(a_, b_, "ghost", Briefcase()).ok());
  kernel_.sim().Run();
  EXPECT_EQ(kernel_.stats().meets_failed_on_arrival, 1u);
}

TEST_F(KernelTest, LaunchAgentRunsCode) {
  Status s = kernel_.LaunchAgent(a_, "cab_set out RESULT done");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("out").GetSingleString("RESULT"), "done");
  EXPECT_EQ(kernel_.place(a_)->stats().activations, 1u);
}

TEST_F(KernelTest, LaunchAgentErrorsSurface) {
  Status s = kernel_.LaunchAgent(a_, "error kaput");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("kaput"), std::string::npos);
  EXPECT_EQ(kernel_.place(a_)->stats().failed_activations, 1u);
}

TEST_F(KernelTest, CrashDestroysVolatileState) {
  kernel_.place(a_)->Cabinet("scratch").AppendString("F", "volatile");
  kernel_.CrashSite(a_);
  EXPECT_EQ(kernel_.place(a_), nullptr);
  kernel_.RestartSite(a_);
  ASSERT_NE(kernel_.place(a_), nullptr);
  EXPECT_FALSE(kernel_.place(a_)->Cabinet("scratch").HasFolder("F"));
}

TEST_F(KernelTest, FlushedCabinetSurvivesCrash) {
  Place* place = kernel_.place(a_);
  place->Cabinet("persistent").AppendString("F", "durable");
  ASSERT_TRUE(place->Cabinet("persistent").Flush().ok());
  kernel_.CrashSite(a_);
  kernel_.RestartSite(a_);
  EXPECT_EQ(kernel_.place(a_)->Cabinet("persistent").ListStrings("F"),
            (std::vector<std::string>{"durable"}));
}

TEST_F(KernelTest, RestartReinstallsSystemAgentsAndInitializers) {
  int installs = 0;
  kernel_.AddPlaceInitializer([&installs](Place& place) {
    if (place.name() == "alpha") {
      ++installs;
      place.RegisterAgent("custom", [](Place&, Briefcase&) { return OkStatus(); });
    }
  });
  EXPECT_EQ(installs, 1);  // Applied to the existing place immediately.
  kernel_.CrashSite(a_);
  kernel_.RestartSite(a_);
  EXPECT_EQ(installs, 2);
  EXPECT_TRUE(kernel_.place(a_)->HasAgent("custom"));
  EXPECT_TRUE(kernel_.place(a_)->HasAgent("rexec"));
}

TEST_F(KernelTest, GenerationChangesAcrossRestart) {
  uint64_t gen = kernel_.place(a_)->generation();
  EXPECT_TRUE(kernel_.PlaceAlive(a_, gen));
  kernel_.CrashSite(a_);
  EXPECT_FALSE(kernel_.PlaceAlive(a_, gen));
  kernel_.RestartSite(a_);
  EXPECT_FALSE(kernel_.PlaceAlive(a_, gen));
  EXPECT_TRUE(kernel_.PlaceAlive(a_, kernel_.place(a_)->generation()));
}

TEST_F(KernelTest, TransferToDownSiteRejected) {
  kernel_.CrashSite(b_);
  Status s = kernel_.TransferAgent(a_, b_, "ag_tacl", Briefcase());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(kernel_.stats().transfers_rejected, 1u);
}

TEST(KernelTopologyTest, AdoptNetworkSites) {
  Kernel kernel;
  auto ids = BuildRing(&kernel.net(), 5);
  kernel.AdoptNetworkSites();
  for (SiteId id : ids) {
    ASSERT_NE(kernel.place(id), nullptr);
    EXPECT_TRUE(kernel.place(id)->HasAgent("rexec"));
    // Ring: every site has exactly two neighbours in its SITES folder.
    EXPECT_EQ(kernel.place(id)->Cabinet("system").Size(kSitesFolder), 2u);
  }
}

TEST(KernelOptionsTest, WriteAheadCabinetsSurviveCrashWithoutFlush) {
  KernelOptions options;
  options.seed = 3;
  options.cabinet_write_ahead = true;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");
  kernel.place(site)->Cabinet("journal").AppendString("LOG", "entry-1");
  kernel.place(site)->Cabinet("journal").AppendString("LOG", "entry-2");
  // No flush.
  kernel.CrashSite(site);
  kernel.RestartSite(site);
  EXPECT_EQ(kernel.place(site)->Cabinet("journal").ListStrings("LOG"),
            (std::vector<std::string>{"entry-1", "entry-2"}));
}

TEST(KernelOptionsTest, StepLimitEnforced) {
  Kernel kernel(KernelOptions{.seed = 1, .step_limit = 100});
  SiteId site = kernel.AddSite("s");
  Status s = kernel.LaunchAgent(site, "while {1} {set x 1}");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("step limit"), std::string::npos);
}

TEST_F(KernelTest, MalformedTransferPayloadDroppedSafely) {
  // Garbage bytes delivered straight to the kernel's handler must not crash
  // or corrupt anything — just count as a failed arrival.
  ASSERT_TRUE(kernel_.net().Send(a_, b_, Bytes{0xff, 0x03, 0x00, 0x01}).ok());
  ASSERT_TRUE(kernel_.net().Send(a_, b_, Bytes{}).ok());
  kernel_.sim().Run();
  EXPECT_EQ(kernel_.stats().meets_failed_on_arrival, 2u);
  // The place is still fully functional.
  EXPECT_TRUE(kernel_.LaunchAgent(b_, "set ok 1").ok());
}

TEST_F(KernelTest, TruncatedBriefcaseInTransferDropped) {
  // A valid contact string followed by a truncated briefcase body.
  Encoder enc;
  enc.PutString("ag_tacl");
  enc.PutVarint(3);  // Claims 3 folders, provides none.
  ASSERT_TRUE(kernel_.net().Send(a_, b_, enc.Take()).ok());
  kernel_.sim().Run();
  EXPECT_EQ(kernel_.stats().meets_failed_on_arrival, 1u);
}

TEST(DeterminismTest, IdenticalWorldsProduceIdenticalRuns) {
  // The experiment harness depends on this: same seed, same construction
  // order, same events — bit-identical statistics.
  auto run = [] {
    Kernel kernel(KernelOptions{.seed = 99, .step_limit = 100000});
    SiteId a = kernel.AddSite("a");
    SiteId b = kernel.AddSite("b");
    SiteId c = kernel.AddSite("c");
    kernel.net().AddLink(a, b);
    kernel.net().AddLink(b, c);
    for (int i = 0; i < 5; ++i) {
      Briefcase bc;
      bc.SetString("N", std::to_string(i));
      // Agents 0-2 hop on to c and stop there (the bc_set retires the
      // condition); agents 3-4 stay at b.  A bare `jump c` repeated at c
      // would migrate forever now that self-sends go through the event loop
      // like any other delivery instead of recursing until the meet-depth
      // guard killed the agent.
      bc.folder(kCodeFolder).PushBackString(
          "cab_append t R [rng_uniform 1000]; "
          "if {[bc_get N] < 3} { bc_set N 9; jump c }");
      (void)kernel.TransferAgent(a, b, "ag_tacl", bc);
    }
    kernel.sim().Run();
    auto draws_b = kernel.place(b)->Cabinet("t").ListStrings("R");
    auto draws_c = kernel.place(c)->Cabinet("t").ListStrings("R");
    return std::tuple(kernel.sim().Now(), kernel.stats().transfers_delivered,
                      kernel.net().stats().bytes_on_wire, draws_b, draws_c);
  };
  EXPECT_EQ(run(), run());
}

// Flagged as an error by static analysis (unknown command) but harmless at
// runtime because the branch is never taken — separates admission behaviour
// from ordinary runtime failure.
constexpr const char* kStaticallyBadCode =
    "if {0} { frobnicate }\ncab_set out RESULT ran";

TEST_F(KernelTest, AdmissionDefaultsToWarnAndStillRuns) {
  EXPECT_EQ(kernel_.place(a_)->admission_policy(), AdmissionPolicy::kWarn);
  ASSERT_TRUE(kernel_.LaunchAgent(a_, kStaticallyBadCode).ok());
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("out").GetSingleString("RESULT"), "ran");
  EXPECT_EQ(kernel_.place(a_)->stats().rejected_agents, 0u);
}

TEST(AdmissionTest, RejectPolicyRefusesBadAgents) {
  KernelOptions options;
  options.admission_policy = AdmissionPolicy::kReject;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");

  Status s = kernel.LaunchAgent(site, kStaticallyBadCode);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("admission"), std::string::npos);
  EXPECT_NE(s.message().find("frobnicate"), std::string::npos);
  EXPECT_EQ(kernel.place(site)->stats().rejected_agents, 1u);
  EXPECT_EQ(kernel.place(site)->stats().failed_activations, 1u);

  // Arity errors are rejected too.
  Status arity = kernel.LaunchAgent(site, "bc_put ONLYONE");
  EXPECT_EQ(arity.code(), StatusCode::kPermissionDenied);

  // A clean agent is admitted and runs normally.
  ASSERT_TRUE(kernel.LaunchAgent(site, "cab_set out RESULT ok").ok());
  EXPECT_EQ(*kernel.place(site)->Cabinet("out").GetSingleString("RESULT"), "ok");
}

TEST(AdmissionTest, RejectPolicyAppliesToArrivingTransfers) {
  KernelOptions options;
  options.admission_policy = AdmissionPolicy::kReject;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("a");
  SiteId b = kernel.AddSite("b");
  kernel.net().AddLink(a, b);

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(kStaticallyBadCode);
  ASSERT_TRUE(kernel.TransferAgent(a, b, "ag_tacl", bc).ok());
  kernel.sim().Run();
  EXPECT_EQ(kernel.place(b)->stats().rejected_agents, 1u);
  EXPECT_FALSE(kernel.place(b)->Cabinet("out").HasFolder("RESULT"));
}

TEST(AdmissionTest, OffPolicySkipsAnalysis) {
  KernelOptions options;
  options.admission_policy = AdmissionPolicy::kOff;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");
  ASSERT_TRUE(kernel.LaunchAgent(site, kStaticallyBadCode).ok());
  EXPECT_EQ(kernel.place(site)->stats().rejected_agents, 0u);
}

TEST(AdmissionTest, VerdictCacheReusedForRepeatArrivals) {
  KernelOptions options;
  options.admission_policy = AdmissionPolicy::kReject;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(kernel.LaunchAgent(site, kStaticallyBadCode).code(),
              StatusCode::kPermissionDenied);
  }
  EXPECT_EQ(kernel.place(site)->stats().rejected_agents, 3u);
}

TEST_F(KernelTest, AnalyzeAgentCodeKnowsSitePrimitives) {
  // The standalone analysis entry point sees everything a real activation
  // would: builtins, agent primitives, and module commands bound at this
  // place (wx_scan etc. come from binders, not the signature table).
  tacl::AnalysisReport good =
      kernel_.place(a_)->AnalyzeAgentCode("bc_put RESULT [site]");
  EXPECT_TRUE(good.ok()) << good.ToString();

  tacl::AnalysisReport bad =
      kernel_.place(a_)->AnalyzeAgentCode("meet\nbc_put RESULT 1 too many");
  EXPECT_EQ(bad.error_count(), 2u) << bad.ToString();
  EXPECT_EQ(bad.diagnostics[0].line, 1u);
  EXPECT_EQ(bad.diagnostics[1].line, 2u);
}

TEST(PlaceOutputTest, AgentOutputRouted) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  std::vector<std::string> lines;
  kernel.place(site)->set_agent_output(
      [&lines](const std::string& line) { lines.push_back(line); });
  ASSERT_TRUE(kernel.LaunchAgent(site, "puts one; log two").ok());
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two"}));
}

}  // namespace
}  // namespace tacoma
