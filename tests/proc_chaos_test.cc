// ProcessChaos: the multi-process chaos harness (SIGKILL a child daemon on
// a seeded schedule, respawn it).  Victims here are sleep(1) children — the
// real daemon integration runs in ci/e17_daemon_smoke.sh.
#include "net/proc_chaos.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <vector>

namespace tacoma {
namespace {

pid_t SpawnSleeper() {
  pid_t pid = fork();
  if (pid == 0) {
    for (;;) {
      sleep(1);
    }
  }
  return pid;
}

// Every Tick() call polls; fast schedules keep the test under a second.
ProcessChaos::Options FastSchedule(uint64_t max_kills) {
  ProcessChaos::Options options;
  options.seed = 7;
  options.min_uptime_ms = 20;
  options.max_uptime_ms = 60;
  options.min_downtime_ms = 10;
  options.max_downtime_ms = 30;
  options.max_kills = max_kills;
  return options;
}

bool Alive(pid_t pid) { return pid > 0 && kill(pid, 0) == 0; }

TEST(ProcessChaosTest, KillsAndRespawnsOnSchedule) {
  std::vector<pid_t> incarnations;
  ProcessChaos chaos(
      [&incarnations] {
        pid_t pid = SpawnSleeper();
        incarnations.push_back(pid);
        return pid;
      },
      FastSchedule(/*max_kills=*/2));

  ASSERT_TRUE(chaos.Start());
  ASSERT_TRUE(chaos.victim_up());
  pid_t first = chaos.pid();
  EXPECT_TRUE(Alive(first));

  // Drive until both kills landed and the victim came back each time.
  for (int i = 0; i < 5000 && chaos.report().respawns < 2; ++i) {
    chaos.Tick();
    usleep(1000);
  }
  EXPECT_EQ(chaos.report().kills, 2u);
  EXPECT_EQ(chaos.report().respawns, 2u);
  ASSERT_EQ(incarnations.size(), 3u);
  EXPECT_NE(chaos.pid(), first);
  EXPECT_TRUE(chaos.victim_up());
  EXPECT_FALSE(Alive(first)) << "SIGKILLed incarnation still running";

  // max_kills reached: the final incarnation is left alone.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(chaos.Tick());
    usleep(1000);
  }
  EXPECT_EQ(chaos.report().kills, 2u);

  pid_t last = chaos.pid();
  chaos.Stop();
  EXPECT_FALSE(chaos.victim_up());
  EXPECT_FALSE(Alive(last));
}

TEST(ProcessChaosTest, StopPreventsFurtherFaults) {
  ProcessChaos chaos([] { return SpawnSleeper(); }, FastSchedule(0));
  ASSERT_TRUE(chaos.Start());
  chaos.Stop();
  EXPECT_FALSE(chaos.victim_up());
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(chaos.Tick());
  }
  EXPECT_EQ(chaos.report().kills, 0u);
  EXPECT_EQ(chaos.report().respawns, 0u);
}

TEST(ProcessChaosTest, FailedSpawnReportsFailure) {
  ProcessChaos chaos([] { return pid_t{-1}; }, FastSchedule(1));
  EXPECT_FALSE(chaos.Start());
  EXPECT_FALSE(chaos.victim_up());
}

}  // namespace
}  // namespace tacoma
