// Rear guards (§5): deposits, heartbeats, crash recovery, retirement waves,
// cyclic itineraries, and the unguarded baseline that loses the computation.
#include "ft/rearguard.h"

#include <gtest/gtest.h>

#include "sim/chaos.h"

namespace tacoma::ft {
namespace {

// The canonical guarded itinerary agent: do work at each site, move on, and
// at the end record completion and retire the guard chain.  All state lives
// in the briefcase; re-running the same code at each site is the TACOMA way.
constexpr char kGuardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE [site]
    ft_retire
  }
)";

constexpr char kUnguardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE [site]
  }
)";

class RearGuardTest : public ::testing::Test {
 protected:
  RearGuardTest() : guard_(&kernel_, GuardOptions{50 * kMillisecond, 3, 8}) {
    home_ = kernel_.AddSite("home");
    s1_ = kernel_.AddSite("s1");
    s2_ = kernel_.AddSite("s2");
    // Fully connect so recovery can route around any single dead site.
    kernel_.net().AddLink(home_, s1_);
    kernel_.net().AddLink(s1_, s2_);
    kernel_.net().AddLink(s2_, home_);
    guard_.Install();
  }

  Briefcase ItineraryBriefcase(std::initializer_list<std::string> sites) {
    Briefcase bc;
    bc.SetString("AGENT", "walker");
    for (const std::string& s : sites) {
      bc.folder("ITINERARY").PushBackString(s);
    }
    return bc;
  }

  std::optional<std::string> DoneAt(SiteId site) {
    Place* place = kernel_.place(site);
    if (place == nullptr) {
      return std::nullopt;
    }
    return place->Cabinet("t").GetSingleString("DONE");
  }

  size_t TotalVisits() {
    size_t total = 0;
    for (SiteId s : {home_, s1_, s2_}) {
      Place* place = kernel_.place(s);
      if (place != nullptr) {
        total += place->Cabinet("t").Size("VISITS");
      }
    }
    return total;
  }

  Kernel kernel_;
  RearGuard guard_;
  SiteId home_ = 0, s1_ = 0, s2_ = 0;
};

TEST_F(RearGuardTest, FailureFreeItineraryCompletesAndRetires) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "s2", "home"}))
          .ok());
  kernel_.sim().RunUntil(2 * kSecond);

  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_EQ(TotalVisits(), 4u);  // home, s1, s2, home.
  EXPECT_GE(guard_.stats().deposits, 3u);
  EXPECT_EQ(guard_.stats().relaunches, 0u);
  EXPECT_EQ(guard_.stats().retire_waves, 1u);
  // The retirement wave unwound the whole chain.
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, UnguardedAgentLostToCrash) {
  ASSERT_TRUE(kernel_
                  .LaunchAgent(home_, kUnguardedAgent,
                               ItineraryBriefcase({"s1", "s2", "home"}))
                  .ok());
  // Crash s2 while the agent is in flight from s1 (s1 hop lands ~2ms).
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  EXPECT_FALSE(DoneAt(home_).has_value());  // Gone forever.
}

TEST_F(RearGuardTest, GuardedAgentSurvivesCrashOfNextSite) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "s2", "home"}))
          .ok());
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  // s1's guard noticed the silence and relaunched past the dead site.
  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_GE(guard_.stats().relaunches, 1u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, GuardedAgentSurvivesCrashAndRestart) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "s2", "home"}))
          .ok());
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  // s2 comes back before recovery fires (recovery needs ~200ms of misses);
  // the relaunch then lands on the original destination.
  kernel_.sim().After(100 * kMillisecond, [this] { kernel_.RestartSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  // The restarted incarnation of s2 was visited.
  EXPECT_GE(kernel_.place(s2_)->Cabinet("t").Size("VISITS"), 1u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, CyclicItineraryGetsDistinctGuardsPerVisit) {
  // home -> s1 -> home -> s1 -> home: revisits must not collide (§5 calls
  // out cyclic traversals as the hard case).
  ASSERT_TRUE(kernel_
                  .LaunchAgent(home_, kGuardedAgent,
                               ItineraryBriefcase({"s1", "home", "s1", "home"}))
                  .ok());
  kernel_.sim().RunUntil(2 * kSecond);

  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_EQ(TotalVisits(), 5u);
  EXPECT_GE(guard_.stats().deposits, 4u);
  EXPECT_EQ(guard_.stats().relaunches, 0u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, HeartbeatsFlowWhileChainAlive) {
  // Deposit a long-lived guard at home watching s1 (a quick walk would
  // retire before the first 50ms heartbeat, so plant the record directly).
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "sentinel");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(kernel_.place(home_)->Meet("rearguard", deposit).ok());

  kernel_.sim().RunUntil(180 * kMillisecond);  // ~3 heartbeat ticks.
  EXPECT_GE(guard_.stats().pings_sent, 2u);
  EXPECT_GE(guard_.stats().replies_received, 2u);
}

TEST_F(RearGuardTest, GuardsDieWithTheirSite) {
  for (SiteId site : {home_, s1_}) {
    Briefcase deposit;
    deposit.SetString("GUARD_OP", "deposit");
    deposit.SetString("GUARD_AGENT", "sentinel");
    deposit.SetString("GUARD_SEQ", site == home_ ? "0" : "1");
    deposit.SetString("GUARD_NEXT", "s2");
    deposit.folder("CKPT").PushBack(Briefcase().Serialize());
    ASSERT_TRUE(kernel_.place(site)->Meet("rearguard", deposit).ok());
  }
  EXPECT_EQ(guard_.GuardCount(home_), 1u);
  EXPECT_EQ(guard_.GuardCount(s1_), 1u);
  EXPECT_EQ(guard_.TotalGuards(), 2u);
  kernel_.CrashSite(s1_);
  // s1's guard table is volatile: gone immediately; home's survives.
  EXPECT_EQ(guard_.GuardCount(s1_), 0u);
  EXPECT_EQ(guard_.TotalGuards(), 1u);
}

TEST(RearGuardLimitsTest, RelaunchBudgetExhaustionDeadLetters) {
  // A guard whose protege never arrives anywhere relaunches at most
  // max_relaunches times, then dead-letters the checkpoint home with a
  // structured reason — the record must not be dropped silently or leaked.
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  kernel.net().AddLink(home, s1);
  RearGuard guard(&kernel, GuardOptions{20 * kMillisecond, 1, /*max_relaunches=*/2});
  guard.Install();

  Briefcase checkpoint;
  // The relaunched agent lands at s1 and does nothing (no deposit, no
  // retire), so s1 keeps answering "unknown" forever.
  checkpoint.folder(kCodeFolder).PushBackString("set x noop");
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "lost");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(checkpoint.Serialize());
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", deposit).ok());

  kernel.sim().RunUntil(2 * kSecond);  // Dozens of heartbeat rounds.
  EXPECT_EQ(guard.stats().relaunches, 2u);
  EXPECT_EQ(guard.stats().guard_deadletters, 1u);
  EXPECT_EQ(guard.GuardCount(home), 0u);  // Removed, not leaked.
  const auto* state = guard.registry().Find(home, "lost");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->resolved);
  EXPECT_EQ(state->final_kind, "deadletter");
  ASSERT_TRUE(state->outcomes.contains(""));
  EXPECT_NE(state->outcomes.at("").reason.find("relaunch budget"),
            std::string::npos);
}

TEST(RearGuardLimitsTest, UnreachableItineraryDeadLetters) {
  // Every candidate site permanently unreachable: after
  // max_unreachable_rounds recovery attempts the checkpoint dead-letters
  // with a structured reason instead of being watched (or dropped) forever.
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  kernel.net().AddLink(home, s1);
  GuardOptions options;
  options.heartbeat = 20 * kMillisecond;
  options.max_misses = 1;
  options.max_unreachable_rounds = 2;
  RearGuard guard(&kernel, options);
  guard.Install();

  Briefcase checkpoint;
  checkpoint.folder(kCodeFolder).PushBackString("set x noop");
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "stranded");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(checkpoint.Serialize());
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", deposit).ok());
  kernel.CrashSite(s1);  // The only destination never comes back.

  kernel.sim().RunUntil(2 * kSecond);
  EXPECT_EQ(guard.stats().relaunches, 0u);
  EXPECT_EQ(guard.stats().guard_deadletters, 1u);
  EXPECT_EQ(guard.GuardCount(home), 0u);
  const auto* state = guard.registry().Find(home, "stranded");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->resolved);
  ASSERT_TRUE(state->outcomes.contains(""));
  EXPECT_NE(state->outcomes.at("").reason.find("unreachable"), std::string::npos);
}

TEST(RearGuardDurabilityTest, GuardTableSurvivesSiteRestart) {
  // Durable guards: RestartSite recovers the site's guard table from the
  // crash-atomic DiskLog instead of relying solely on predecessor healing.
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  SiteId s2 = kernel.AddSite("s2");
  kernel.net().AddLink(home, s1);
  kernel.net().AddLink(s1, s2);
  RearGuard guard(&kernel, GuardOptions{50 * kMillisecond, 3, 8});
  guard.Install();

  Briefcase checkpoint;
  checkpoint.folder(kCodeFolder).PushBackString("set x noop");
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "traveler");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s2");
  deposit.folder("CKPT").PushBack(checkpoint.Serialize());
  ASSERT_TRUE(kernel.place(s1)->Meet("rearguard", deposit).ok());
  ASSERT_EQ(guard.GuardCount(s1), 1u);

  kernel.CrashSite(s1);
  EXPECT_EQ(guard.GuardCount(s1), 0u);  // The volatile table died...
  kernel.RestartSite(s1);
  EXPECT_EQ(guard.GuardCount(s1), 1u);  // ...and the disk brought it back.
  EXPECT_GE(guard.stats().recovered_records, 1u);
}

TEST(RearGuardDurabilityTest, NonDurableGuardTableDiesWithSite) {
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  kernel.net().AddLink(home, s1);
  GuardOptions options;
  options.durable = false;
  RearGuard guard(&kernel, options);
  guard.Install();

  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "ephemeral");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", deposit).ok());
  ASSERT_EQ(guard.GuardCount(home), 1u);

  kernel.CrashSite(home);
  kernel.RestartSite(home);
  EXPECT_EQ(guard.GuardCount(home), 0u);
  EXPECT_EQ(guard.stats().recovered_records, 0u);
}

TEST(RearGuardFencingTest, StaleIncarnationQuenchedAtDeposit) {
  // Incarnation fencing: once a site has witnessed incarnation 2 of an
  // agent, an incarnation-0 copy that walks in is quenched — it deposits no
  // guard and its ft_jump ends the activation instead of hopping onward.
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  kernel.net().AddLink(home, s1);
  RearGuard guard(&kernel, GuardOptions{50 * kMillisecond, 3, 8});
  guard.Install();

  Briefcase fresh;
  fresh.SetString("GUARD_OP", "deposit");
  fresh.SetString("GUARD_AGENT", "walker");
  fresh.SetString("GUARD_INC", "2");
  fresh.SetString("GUARD_SEQ", "0");
  fresh.SetString("GUARD_NEXT", "s1");
  fresh.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", fresh).ok());
  EXPECT_EQ(fresh.GetString("GUARD_VERDICT").value_or(""), "ok");
  ASSERT_EQ(guard.GuardCount(home), 1u);

  Briefcase bc;
  bc.SetString("AGENT", "walker");  // GUARD_INC defaults to 0: stale.
  bc.folder("ITINERARY").PushBackString("s1");
  ASSERT_TRUE(kernel.LaunchAgent(home, kGuardedAgent, std::move(bc)).ok());
  kernel.sim().RunUntil(50 * kMillisecond);

  EXPECT_GE(guard.stats().quenches, 1u);
  EXPECT_EQ(guard.GuardCount(home), 1u);  // No new record for the stale copy.
  // The stale copy never hopped onward.
  EXPECT_EQ(kernel.place(s1)->Cabinet("t").Size("VISITS"), 0u);
}

TEST(RearGuardFencingTest, RetiredAgentArrivalsQuenched) {
  // A durably retired agent cannot re-deposit: late copies of an already
  // finished computation are quenched on arrival, even after a restart.
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  kernel.net().AddLink(home, s1);
  RearGuard guard(&kernel, GuardOptions{50 * kMillisecond, 3, 8});
  guard.Install();

  Briefcase wave;
  wave.SetString("GUARD_OP", "retire_wave");
  wave.SetString("GUARD_AGENT", "finished");
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", wave).ok());

  kernel.CrashSite(home);
  kernel.RestartSite(home);  // The retired mark survives on disk.

  Briefcase late;
  late.SetString("GUARD_OP", "deposit");
  late.SetString("GUARD_AGENT", "finished");
  late.SetString("GUARD_SEQ", "3");
  late.SetString("GUARD_NEXT", "s1");
  late.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", late).ok());
  EXPECT_EQ(late.GetString("GUARD_VERDICT").value_or(""), "quench");
  EXPECT_GE(guard.stats().quenches, 1u);
  EXPECT_EQ(guard.GuardCount(home), 0u);
}

TEST_F(RearGuardTest, DepositProtocolValidation) {
  Place* place = kernel_.place(home_);
  Briefcase bad;
  bad.SetString("GUARD_OP", "deposit");
  EXPECT_FALSE(place->Meet("rearguard", bad).ok());

  Briefcase unknown;
  unknown.SetString("GUARD_OP", "bogus");
  EXPECT_FALSE(place->Meet("rearguard", unknown).ok());

  Briefcase good;
  good.SetString("GUARD_OP", "deposit");
  good.SetString("GUARD_AGENT", "a");
  good.SetString("GUARD_SEQ", "0");
  good.SetString("GUARD_NEXT", "s1");
  good.folder("CKPT").PushBack(Briefcase().Serialize());
  EXPECT_TRUE(place->Meet("rearguard", good).ok());
  EXPECT_EQ(guard_.GuardCount(home_), 1u);
}

TEST_F(RearGuardTest, StatusRequestStates) {
  Place* place = kernel_.place(home_);
  // Deposit a record for agent "a" so home answers "active".
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "a");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(place->Meet("rearguard", deposit).ok());

  std::optional<std::string> state;
  kernel_.place(s1_)->RegisterAgent("probe_sink", [&state](Place&, Briefcase& bc) {
    state = bc.GetString("GUARD_STATE");
    return OkStatus();
  });
  // Craft a status request that reports to our sink instead of a guard.
  Briefcase status;
  status.SetString("GUARD_OP", "status");
  status.SetString("GUARD_AGENT", "a");
  status.SetString("GUARD_KEY", "a#0");
  status.SetString("REPLY_HOST", "s1");
  ASSERT_TRUE(place->Meet("rearguard", status).ok());
  // Hijack: deliver the reply to the guard agent on s1 normally; instead
  // verify via a direct second request for an unknown agent.  (RunUntil, not
  // Run: a live guard's heartbeat chain keeps the event queue non-empty.)
  kernel_.sim().RunUntil(kernel_.sim().Now() + 20 * kMillisecond);

  Briefcase status2;
  status2.SetString("GUARD_OP", "status");
  status2.SetString("GUARD_AGENT", "ghost");
  status2.SetString("GUARD_KEY", "ghost#0");
  status2.SetString("REPLY_HOST", "s1");
  ASSERT_TRUE(place->Meet("rearguard", status2).ok());
  kernel_.sim().RunUntil(kernel_.sim().Now() + 20 * kMillisecond);
  // Both replies went to s1's rearguard (no matching records: ignored
  // harmlessly).  The protocol-level behaviours are covered by the
  // end-to-end tests; here we only assert the handler accepts the requests.
  SUCCEED();
}

TEST_F(RearGuardTest, RetireWaveIsIdempotent) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "home"}))
          .ok());
  kernel_.sim().RunUntil(kSecond);
  EXPECT_EQ(guard_.TotalGuards(), 0u);

  // A second wave for the same agent finds nothing and terminates.
  Briefcase wave;
  wave.SetString("GUARD_OP", "retire");
  wave.SetString("GUARD_AGENT", "walker");
  ASSERT_TRUE(kernel_.place(home_)->Meet("rearguard", wave).ok());
  kernel_.sim().RunUntil(2 * kSecond);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, TwoAgentsGuardedIndependently) {
  Briefcase bc1 = ItineraryBriefcase({"s1", "home"});
  bc1.SetString("AGENT", "first");
  Briefcase bc2 = ItineraryBriefcase({"s2", "home"});
  bc2.SetString("AGENT", "second");
  ASSERT_TRUE(kernel_.LaunchAgent(home_, kGuardedAgent, bc1).ok());
  ASSERT_TRUE(kernel_.LaunchAgent(home_, kGuardedAgent, bc2).ok());
  kernel_.sim().RunUntil(2 * kSecond);

  EXPECT_EQ(TotalVisits(), 6u);
  EXPECT_EQ(guard_.stats().retire_waves, 2u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, CloneFanOutEachBranchGuarded) {
  // A fan-out computation: the parent spawns two guarded branch agents with
  // distinct ids (independent chains, as documented in rearguard.h).
  constexpr char kSpawner[] = R"(
    bc_set GUARD_AGENT parent
    if {[bc_has BRANCHED]} {
    } else {
      bc_set BRANCHED 1
    }
  )";
  ASSERT_TRUE(kernel_.LaunchAgent(home_, kSpawner).ok());

  for (int branch = 0; branch < 2; ++branch) {
    Briefcase bc = ItineraryBriefcase(
        {branch == 0 ? "s1" : "s2", "home"});
    bc.SetString("AGENT", "walker." + std::to_string(branch));
    ASSERT_TRUE(kernel_.LaunchAgent(home_, kGuardedAgent, bc).ok());
  }
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  // Branch 0 is untouched; branch 1 recovers past the dead site.
  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_EQ(guard_.stats().retire_waves, 2u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

// Registry-backed variant of the canonical walker: the last site reports the
// branch outcome to the home registry (ft_complete) instead of firing an
// immediate retire wave, so fan-out branches join at the barrier.
constexpr char kGuardedCompleteAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    cab_append t DONE [bc_get GUARD_AGENT]
    ft_complete
  }
)";

TEST_F(RearGuardTest, FanoutJoinBarrierHoldsUntilAllBranches) {
  // Two guarded branches of one computation; retirement must wait at the join
  // barrier until BOTH have reported, even though branch b0 finishes in
  // milliseconds while b1's destination site is dead.
  guard_.DeclareFanout(home_, "fan", 2);
  for (int branch = 0; branch < 2; ++branch) {
    Briefcase bc;
    bc.folder("ITINERARY").PushBackString("s1");
    if (branch == 1) {
      bc.folder("ITINERARY").PushBackString("s2");
    }
    bc.folder("ITINERARY").PushBackString("home");
    ASSERT_TRUE(guard_
                    .LaunchGuarded(home_, kGuardedCompleteAgent, std::move(bc),
                                   "fan", branch == 0 ? "b0" : "b1")
                    .ok());
  }
  // Crash s2 while b1 is in flight from s1 (the s1 hop lands ~2ms).
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  // Mid-flight: b0 has completed, b1 has not even been relaunched yet — the
  // barrier must be holding and no retirement wave may have fired.
  kernel_.sim().After(100 * kMillisecond, [this] {
    const auto* state = guard_.registry().Find(home_, "fan");
    ASSERT_NE(state, nullptr);
    EXPECT_TRUE(state->outcomes.contains("b0"));
    EXPECT_FALSE(state->resolved);
    EXPECT_EQ(guard_.stats().retire_waves, 0u);
  });
  kernel_.sim().RunUntil(5 * kSecond);

  const auto* state = guard_.registry().Find(home_, "fan");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->resolved);
  EXPECT_EQ(state->final_kind, "complete");  // b1 recovered past the dead site.
  EXPECT_EQ(state->outcomes.size(), 2u);
  EXPECT_EQ(guard_.registry().stats().completions, 2u);
  EXPECT_EQ(guard_.registry().stats().resolved, 1u);
  EXPECT_TRUE(guard_.registry().CheckExactlyOnce(home_, /*require_resolved=*/true).ok());
  EXPECT_EQ(guard_.stats().retire_waves, 2u);  // One per branch endpoint.
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, TaclFanoutAndCloneJoinAtHome) {
  // The whole fan-out expressed in agent code: ft_fanout declares the
  // barrier, clone ships branch b1 to s2, the parent continues as b0.
  constexpr char kCloneFanout[] = R"(
    if {[bc_has FANNED]} {
      cab_append t VISITS [site]
      if {[bc_len ITINERARY] > 0} {
        ft_jump [bc_pop ITINERARY]
      } else {
        cab_append t DONE [bc_get GUARD_AGENT]
        ft_complete
      }
    } else {
      bc_set FANNED 1
      ft_fanout 2
      bc_put ITINERARY home
      bc_set GUARD_BRANCH b1
      clone s2
      bc_set GUARD_BRANCH b0
      ft_jump s1
    }
  )";
  ASSERT_TRUE(guard_.LaunchGuarded(home_, kCloneFanout, Briefcase(), "fan2").ok());
  kernel_.sim().RunUntil(2 * kSecond);

  const auto* state = guard_.registry().Find(home_, "fan2");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->resolved);
  EXPECT_EQ(state->final_kind, "complete");
  EXPECT_EQ(state->outcomes.size(), 2u);
  EXPECT_EQ(guard_.registry().stats().fanouts, 1u);
  EXPECT_EQ(guard_.registry().stats().completions, 2u);
  // Both branches walked their itineraries: s1, s2, and home twice.
  EXPECT_EQ(TotalVisits(), 4u);
  EXPECT_EQ(kernel_.place(home_)->Cabinet("t").Size("DONE"), 2u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

// --- Seeded chaos-storm coverage for the paper's two stated complications:
// cyclic itineraries and clone fan-out, each surviving a crash/cut/flap storm
// with the registry enforcing exactly-one outcome per branch. ---

struct StormRig {
  explicit StormRig(uint64_t seed, GuardOptions guard_options)
      : kernel([seed] {
          KernelOptions o;
          o.seed = seed;
          o.reliability.mode = Reliability::kReliable;
          return o;
        }()),
        guard(&kernel, guard_options) {
    home = kernel.AddSite("home");
    s1 = kernel.AddSite("s1");
    s2 = kernel.AddSite("s2");
    kernel.net().AddLink(home, s1);
    kernel.net().AddLink(s1, s2);
    kernel.net().AddLink(s2, home);
    guard.Install();

    ChaosOptions chaos_options;
    chaos_options.seed = seed;
    chaos_options.horizon = 1500 * kMillisecond;
    chaos_options.protected_sites = {home};
    chaos = std::make_unique<ChaosHarness>(&kernel.sim(), &kernel.net(),
                                           chaos_options);
    chaos->SetSiteHooks([this](SiteId s) { kernel.CrashSite(s); },
                        [this](SiteId s) { kernel.RestartSite(s); });
    chaos->AddInvariant("exactly-once registry", [this] {
      return guard.registry().CheckExactlyOnce(home, /*require_resolved=*/false);
    });
  }

  Kernel kernel;
  RearGuard guard;
  std::unique_ptr<ChaosHarness> chaos;
  SiteId home = 0, s1 = 0, s2 = 0;
};

GuardOptions StormGuardOptions() {
  GuardOptions options;
  options.heartbeat = 30 * kMillisecond;
  options.max_misses = 2;
  options.max_relaunches = 6;
  options.lease = 2 * kSecond;
  return options;
}

TEST(RearGuardChaosTest, CyclicItineraryUnderStormResolvesExactlyOnce) {
  StormRig rig(/*seed=*/1995, StormGuardOptions());
  // The §5 hard case — a cyclic itinerary whose revisits must not collide —
  // walked while the storm crashes sites and cuts links around it.
  Briefcase bc;
  for (const char* hop : {"s1", "home", "s2", "home"}) {
    bc.folder("ITINERARY").PushBackString(hop);
  }
  ASSERT_TRUE(
      rig.guard.LaunchGuarded(rig.home, kGuardedCompleteAgent, std::move(bc),
                              "cyclist")
          .ok());
  rig.chaos->Start();
  rig.kernel.sim().RunUntil(10 * kSecond);  // Storm, quiesce, lease GC.

  EXPECT_GT(rig.chaos->report().crashes, 0u);
  EXPECT_TRUE(rig.chaos->report().violations.empty())
      << rig.chaos->report().violations.front();
  // Exactly one outcome, nothing lost, nothing leaked.
  EXPECT_TRUE(
      rig.guard.registry().CheckExactlyOnce(rig.home, /*require_resolved=*/true).ok());
  const auto* state = rig.guard.registry().Find(rig.home, "cyclist");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->resolved);
  EXPECT_EQ(rig.guard.registry().stats().resolved, 1u);
  EXPECT_EQ(rig.guard.TotalGuards(), 0u);
  if (state->final_kind == "complete") {
    EXPECT_GE(rig.kernel.place(rig.home)->Cabinet("t").Size("DONE"), 1u);
  }
}

TEST(RearGuardChaosTest, FanoutJoinBarrierUnderStormRetiresOnce) {
  StormRig rig(/*seed=*/1995, StormGuardOptions());
  rig.guard.DeclareFanout(rig.home, "fan", 2);
  for (int branch = 0; branch < 2; ++branch) {
    Briefcase bc;
    bc.folder("ITINERARY").PushBackString(branch == 0 ? "s1" : "s2");
    bc.folder("ITINERARY").PushBackString("home");
    ASSERT_TRUE(rig.guard
                    .LaunchGuarded(rig.home, kGuardedCompleteAgent, std::move(bc),
                                   "fan", branch == 0 ? "b0" : "b1")
                    .ok());
  }
  rig.chaos->Start();
  rig.kernel.sim().RunUntil(10 * kSecond);

  EXPECT_GT(rig.chaos->report().crashes, 0u);
  EXPECT_TRUE(rig.chaos->report().violations.empty())
      << rig.chaos->report().violations.front();
  const auto* state = rig.guard.registry().Find(rig.home, "fan");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->resolved);
  EXPECT_EQ(state->outcomes.size(), 2u);
  EXPECT_EQ(rig.guard.registry().stats().resolved, 1u);
  EXPECT_TRUE(
      rig.guard.registry().CheckExactlyOnce(rig.home, /*require_resolved=*/true).ok());
  EXPECT_EQ(rig.guard.TotalGuards(), 0u);
}

}  // namespace
}  // namespace tacoma::ft
