// Rear guards (§5): deposits, heartbeats, crash recovery, retirement waves,
// cyclic itineraries, and the unguarded baseline that loses the computation.
#include "ft/rearguard.h"

#include <gtest/gtest.h>

namespace tacoma::ft {
namespace {

// The canonical guarded itinerary agent: do work at each site, move on, and
// at the end record completion and retire the guard chain.  All state lives
// in the briefcase; re-running the same code at each site is the TACOMA way.
constexpr char kGuardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE [site]
    ft_retire
  }
)";

constexpr char kUnguardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE [site]
  }
)";

class RearGuardTest : public ::testing::Test {
 protected:
  RearGuardTest() : guard_(&kernel_, GuardOptions{50 * kMillisecond, 3, 8}) {
    home_ = kernel_.AddSite("home");
    s1_ = kernel_.AddSite("s1");
    s2_ = kernel_.AddSite("s2");
    // Fully connect so recovery can route around any single dead site.
    kernel_.net().AddLink(home_, s1_);
    kernel_.net().AddLink(s1_, s2_);
    kernel_.net().AddLink(s2_, home_);
    guard_.Install();
  }

  Briefcase ItineraryBriefcase(std::initializer_list<std::string> sites) {
    Briefcase bc;
    bc.SetString("AGENT", "walker");
    for (const std::string& s : sites) {
      bc.folder("ITINERARY").PushBackString(s);
    }
    return bc;
  }

  std::optional<std::string> DoneAt(SiteId site) {
    Place* place = kernel_.place(site);
    if (place == nullptr) {
      return std::nullopt;
    }
    return place->Cabinet("t").GetSingleString("DONE");
  }

  size_t TotalVisits() {
    size_t total = 0;
    for (SiteId s : {home_, s1_, s2_}) {
      Place* place = kernel_.place(s);
      if (place != nullptr) {
        total += place->Cabinet("t").Size("VISITS");
      }
    }
    return total;
  }

  Kernel kernel_;
  RearGuard guard_;
  SiteId home_ = 0, s1_ = 0, s2_ = 0;
};

TEST_F(RearGuardTest, FailureFreeItineraryCompletesAndRetires) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "s2", "home"}))
          .ok());
  kernel_.sim().RunUntil(2 * kSecond);

  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_EQ(TotalVisits(), 4u);  // home, s1, s2, home.
  EXPECT_GE(guard_.stats().deposits, 3u);
  EXPECT_EQ(guard_.stats().relaunches, 0u);
  EXPECT_EQ(guard_.stats().retire_waves, 1u);
  // The retirement wave unwound the whole chain.
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, UnguardedAgentLostToCrash) {
  ASSERT_TRUE(kernel_
                  .LaunchAgent(home_, kUnguardedAgent,
                               ItineraryBriefcase({"s1", "s2", "home"}))
                  .ok());
  // Crash s2 while the agent is in flight from s1 (s1 hop lands ~2ms).
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  EXPECT_FALSE(DoneAt(home_).has_value());  // Gone forever.
}

TEST_F(RearGuardTest, GuardedAgentSurvivesCrashOfNextSite) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "s2", "home"}))
          .ok());
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  // s1's guard noticed the silence and relaunched past the dead site.
  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_GE(guard_.stats().relaunches, 1u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, GuardedAgentSurvivesCrashAndRestart) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "s2", "home"}))
          .ok());
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  // s2 comes back before recovery fires (recovery needs ~200ms of misses);
  // the relaunch then lands on the original destination.
  kernel_.sim().After(100 * kMillisecond, [this] { kernel_.RestartSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  // The restarted incarnation of s2 was visited.
  EXPECT_GE(kernel_.place(s2_)->Cabinet("t").Size("VISITS"), 1u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, CyclicItineraryGetsDistinctGuardsPerVisit) {
  // home -> s1 -> home -> s1 -> home: revisits must not collide (§5 calls
  // out cyclic traversals as the hard case).
  ASSERT_TRUE(kernel_
                  .LaunchAgent(home_, kGuardedAgent,
                               ItineraryBriefcase({"s1", "home", "s1", "home"}))
                  .ok());
  kernel_.sim().RunUntil(2 * kSecond);

  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_EQ(TotalVisits(), 5u);
  EXPECT_GE(guard_.stats().deposits, 4u);
  EXPECT_EQ(guard_.stats().relaunches, 0u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, HeartbeatsFlowWhileChainAlive) {
  // Deposit a long-lived guard at home watching s1 (a quick walk would
  // retire before the first 50ms heartbeat, so plant the record directly).
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "sentinel");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(kernel_.place(home_)->Meet("rearguard", deposit).ok());

  kernel_.sim().RunUntil(180 * kMillisecond);  // ~3 heartbeat ticks.
  EXPECT_GE(guard_.stats().pings_sent, 2u);
  EXPECT_GE(guard_.stats().replies_received, 2u);
}

TEST_F(RearGuardTest, GuardsDieWithTheirSite) {
  for (SiteId site : {home_, s1_}) {
    Briefcase deposit;
    deposit.SetString("GUARD_OP", "deposit");
    deposit.SetString("GUARD_AGENT", "sentinel");
    deposit.SetString("GUARD_SEQ", site == home_ ? "0" : "1");
    deposit.SetString("GUARD_NEXT", "s2");
    deposit.folder("CKPT").PushBack(Briefcase().Serialize());
    ASSERT_TRUE(kernel_.place(site)->Meet("rearguard", deposit).ok());
  }
  EXPECT_EQ(guard_.GuardCount(home_), 1u);
  EXPECT_EQ(guard_.GuardCount(s1_), 1u);
  EXPECT_EQ(guard_.TotalGuards(), 2u);
  kernel_.CrashSite(s1_);
  // s1's guard table is volatile: gone immediately; home's survives.
  EXPECT_EQ(guard_.GuardCount(s1_), 0u);
  EXPECT_EQ(guard_.TotalGuards(), 1u);
}

TEST(RearGuardLimitsTest, RelaunchCountBounded) {
  // A guard whose protege never arrives anywhere relaunches at most
  // max_relaunches times, then keeps watching quietly.
  Kernel kernel;
  SiteId home = kernel.AddSite("home");
  SiteId s1 = kernel.AddSite("s1");
  kernel.net().AddLink(home, s1);
  RearGuard guard(&kernel, GuardOptions{20 * kMillisecond, 1, /*max_relaunches=*/2});
  guard.Install();

  Briefcase checkpoint;
  // The relaunched agent lands at s1 and does nothing (no deposit, no
  // retire), so s1 keeps answering "unknown" forever.
  checkpoint.folder(kCodeFolder).PushBackString("set x noop");
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "lost");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(checkpoint.Serialize());
  ASSERT_TRUE(kernel.place(home)->Meet("rearguard", deposit).ok());

  kernel.sim().RunUntil(2 * kSecond);  // Dozens of heartbeat rounds.
  EXPECT_EQ(guard.stats().relaunches, 2u);
  EXPECT_EQ(guard.GuardCount(home), 1u);  // Still watching, just not spamming.
}

TEST_F(RearGuardTest, DepositProtocolValidation) {
  Place* place = kernel_.place(home_);
  Briefcase bad;
  bad.SetString("GUARD_OP", "deposit");
  EXPECT_FALSE(place->Meet("rearguard", bad).ok());

  Briefcase unknown;
  unknown.SetString("GUARD_OP", "bogus");
  EXPECT_FALSE(place->Meet("rearguard", unknown).ok());

  Briefcase good;
  good.SetString("GUARD_OP", "deposit");
  good.SetString("GUARD_AGENT", "a");
  good.SetString("GUARD_SEQ", "0");
  good.SetString("GUARD_NEXT", "s1");
  good.folder("CKPT").PushBack(Briefcase().Serialize());
  EXPECT_TRUE(place->Meet("rearguard", good).ok());
  EXPECT_EQ(guard_.GuardCount(home_), 1u);
}

TEST_F(RearGuardTest, StatusRequestStates) {
  Place* place = kernel_.place(home_);
  // Deposit a record for agent "a" so home answers "active".
  Briefcase deposit;
  deposit.SetString("GUARD_OP", "deposit");
  deposit.SetString("GUARD_AGENT", "a");
  deposit.SetString("GUARD_SEQ", "0");
  deposit.SetString("GUARD_NEXT", "s1");
  deposit.folder("CKPT").PushBack(Briefcase().Serialize());
  ASSERT_TRUE(place->Meet("rearguard", deposit).ok());

  std::optional<std::string> state;
  kernel_.place(s1_)->RegisterAgent("probe_sink", [&state](Place&, Briefcase& bc) {
    state = bc.GetString("GUARD_STATE");
    return OkStatus();
  });
  // Craft a status request that reports to our sink instead of a guard.
  Briefcase status;
  status.SetString("GUARD_OP", "status");
  status.SetString("GUARD_AGENT", "a");
  status.SetString("GUARD_KEY", "a#0");
  status.SetString("REPLY_HOST", "s1");
  ASSERT_TRUE(place->Meet("rearguard", status).ok());
  // Hijack: deliver the reply to the guard agent on s1 normally; instead
  // verify via a direct second request for an unknown agent.  (RunUntil, not
  // Run: a live guard's heartbeat chain keeps the event queue non-empty.)
  kernel_.sim().RunUntil(kernel_.sim().Now() + 20 * kMillisecond);

  Briefcase status2;
  status2.SetString("GUARD_OP", "status");
  status2.SetString("GUARD_AGENT", "ghost");
  status2.SetString("GUARD_KEY", "ghost#0");
  status2.SetString("REPLY_HOST", "s1");
  ASSERT_TRUE(place->Meet("rearguard", status2).ok());
  kernel_.sim().RunUntil(kernel_.sim().Now() + 20 * kMillisecond);
  // Both replies went to s1's rearguard (no matching records: ignored
  // harmlessly).  The protocol-level behaviours are covered by the
  // end-to-end tests; here we only assert the handler accepts the requests.
  SUCCEED();
}

TEST_F(RearGuardTest, RetireWaveIsIdempotent) {
  ASSERT_TRUE(
      kernel_.LaunchAgent(home_, kGuardedAgent, ItineraryBriefcase({"s1", "home"}))
          .ok());
  kernel_.sim().RunUntil(kSecond);
  EXPECT_EQ(guard_.TotalGuards(), 0u);

  // A second wave for the same agent finds nothing and terminates.
  Briefcase wave;
  wave.SetString("GUARD_OP", "retire");
  wave.SetString("GUARD_AGENT", "walker");
  ASSERT_TRUE(kernel_.place(home_)->Meet("rearguard", wave).ok());
  kernel_.sim().RunUntil(2 * kSecond);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, TwoAgentsGuardedIndependently) {
  Briefcase bc1 = ItineraryBriefcase({"s1", "home"});
  bc1.SetString("AGENT", "first");
  Briefcase bc2 = ItineraryBriefcase({"s2", "home"});
  bc2.SetString("AGENT", "second");
  ASSERT_TRUE(kernel_.LaunchAgent(home_, kGuardedAgent, bc1).ok());
  ASSERT_TRUE(kernel_.LaunchAgent(home_, kGuardedAgent, bc2).ok());
  kernel_.sim().RunUntil(2 * kSecond);

  EXPECT_EQ(TotalVisits(), 6u);
  EXPECT_EQ(guard_.stats().retire_waves, 2u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

TEST_F(RearGuardTest, CloneFanOutEachBranchGuarded) {
  // A fan-out computation: the parent spawns two guarded branch agents with
  // distinct ids (independent chains, as documented in rearguard.h).
  constexpr char kSpawner[] = R"(
    bc_set GUARD_AGENT parent
    if {[bc_has BRANCHED]} {
    } else {
      bc_set BRANCHED 1
    }
  )";
  ASSERT_TRUE(kernel_.LaunchAgent(home_, kSpawner).ok());

  for (int branch = 0; branch < 2; ++branch) {
    Briefcase bc = ItineraryBriefcase(
        {branch == 0 ? "s1" : "s2", "home"});
    bc.SetString("AGENT", "walker." + std::to_string(branch));
    ASSERT_TRUE(kernel_.LaunchAgent(home_, kGuardedAgent, bc).ok());
  }
  kernel_.sim().After(1500, [this] { kernel_.CrashSite(s2_); });
  kernel_.sim().RunUntil(5 * kSecond);

  // Branch 0 is untouched; branch 1 recovers past the dead site.
  EXPECT_EQ(DoneAt(home_).value_or(""), "home");
  EXPECT_EQ(guard_.stats().retire_waves, 2u);
  EXPECT_EQ(guard_.TotalGuards(), 0u);
}

}  // namespace
}  // namespace tacoma::ft
