// Receipts, the notary, and the court's audit decision table (§3).
#include <gtest/gtest.h>

#include "cash/court.h"
#include "cash/notary.h"
#include "core/kernel.h"

namespace tacoma::cash {
namespace {

class ReceiptsTest : public ::testing::Test {
 protected:
  ReceiptsTest() : auth_(11) {
    auth_.Enroll("customer");
    auth_.Enroll("provider");
    auth_.Enroll(kMintPrincipal);
  }

  Receipt Make(ReceiptKind kind, const std::string& actor, uint64_t amount = 100,
               const std::string& xid = "x1") {
    return MakeReceipt(&auth_, xid, kind, actor, "other", amount, "detail", 5);
  }

  SignatureAuthority auth_;
};

TEST_F(ReceiptsTest, MakeVerifyRoundTrip) {
  Receipt r = Make(ReceiptKind::kOffer, "customer");
  EXPECT_TRUE(VerifyReceipt(auth_, r));
}

TEST_F(ReceiptsTest, SerializeRoundTrip) {
  Receipt r = Make(ReceiptKind::kDeliver, "provider", 250);
  auto restored = Receipt::Deserialize(r.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->exchange_id, "x1");
  EXPECT_EQ(restored->kind, ReceiptKind::kDeliver);
  EXPECT_EQ(restored->actor, "provider");
  EXPECT_EQ(restored->amount, 250u);
  EXPECT_TRUE(VerifyReceipt(auth_, *restored));
}

TEST_F(ReceiptsTest, TamperedFieldsFailVerification) {
  Receipt r = Make(ReceiptKind::kPay, "customer");
  Receipt tampered = r;
  tampered.amount = 1;
  EXPECT_FALSE(VerifyReceipt(auth_, tampered));
  tampered = r;
  tampered.detail = "different goods";
  EXPECT_FALSE(VerifyReceipt(auth_, tampered));
  tampered = r;
  tampered.actor = "provider";  // Forged authorship.
  EXPECT_FALSE(VerifyReceipt(auth_, tampered));
}

TEST_F(ReceiptsTest, DeserializeRejectsBadKind) {
  Receipt r = Make(ReceiptKind::kAck, "customer");
  Bytes wire = r.Serialize();
  wire[3] = 99;  // Kind byte follows the 2-byte-prefixed "x1".
  auto restored = Receipt::Deserialize(wire);
  // Either decode fails or the signature does — both reject the forgery.
  if (restored.ok()) {
    EXPECT_FALSE(VerifyReceipt(auth_, *restored));
  }
}

TEST_F(ReceiptsTest, KindNames) {
  EXPECT_EQ(ReceiptKindName(ReceiptKind::kOffer), "OFFER");
  EXPECT_EQ(ReceiptKindName(ReceiptKind::kValidated), "VALIDATED");
  EXPECT_EQ(ReceiptKindName(ReceiptKind::kAck), "ACK");
}

TEST_F(ReceiptsTest, NotaryFilesValidReceipts) {
  Notary notary(&auth_);
  ASSERT_TRUE(notary.File(Make(ReceiptKind::kOffer, "customer")).ok());
  ASSERT_TRUE(notary.File(Make(ReceiptKind::kAccept, "provider")).ok());
  EXPECT_EQ(notary.Lookup("x1").size(), 2u);
  EXPECT_TRUE(notary.Lookup("unknown").empty());
  EXPECT_EQ(notary.stats().filed, 2u);
}

TEST_F(ReceiptsTest, NotaryRejectsForgeries) {
  Notary notary(&auth_);
  Receipt forged = Make(ReceiptKind::kValidated, "customer");
  forged.actor = kMintPrincipal;  // Claim the mint said so.
  EXPECT_FALSE(notary.File(forged).ok());
  EXPECT_EQ(notary.stats().rejected, 1u);
  EXPECT_TRUE(notary.Lookup("x1").empty());
}

// --- Court decision table ------------------------------------------------------

struct CourtCase {
  const char* name;
  bool offer;
  bool accept;
  bool mint_validated;
  bool delivered;
  Verdict expected;
};

class CourtTableTest : public ::testing::TestWithParam<CourtCase> {};

TEST_P(CourtTableTest, VerdictMatches) {
  SignatureAuthority auth(11);
  const CourtCase& c = GetParam();
  std::vector<Receipt> receipts;
  if (c.offer) {
    receipts.push_back(MakeReceipt(&auth, "x", ReceiptKind::kOffer, "customer",
                                   "provider", 100, "", 1));
  }
  if (c.accept) {
    receipts.push_back(MakeReceipt(&auth, "x", ReceiptKind::kAccept, "provider",
                                   "customer", 100, "", 2));
  }
  if (c.mint_validated) {
    receipts.push_back(MakeReceipt(&auth, "x", ReceiptKind::kValidated,
                                   kMintPrincipal, "", 100, "", 3));
  }
  if (c.delivered) {
    receipts.push_back(MakeReceipt(&auth, "x", ReceiptKind::kDeliver, "provider",
                                   "customer", 100, "", 4));
  }
  AuditReport report = Audit(auth, receipts, "x");
  EXPECT_EQ(report.verdict, c.expected) << c.name << ": " << report.explanation;
}

INSTANTIATE_TEST_SUITE_P(
    Verdicts, CourtTableTest,
    ::testing::Values(
        CourtCase{"clean", true, true, true, true, Verdict::kClean},
        CourtCase{"provider_kept_money", true, true, true, false,
                  Verdict::kProviderViolated},
        CourtCase{"customer_never_paid", true, true, false, true,
                  Verdict::kCustomerViolated},
        CourtCase{"clean_abort", true, true, false, false, Verdict::kAborted},
        CourtCase{"no_contract", false, false, true, true, Verdict::kNoContract},
        CourtCase{"offer_only", true, false, false, false, Verdict::kNoContract}),
    [](const ::testing::TestParamInfo<CourtCase>& param_info) {
      return param_info.param.name;
    });

TEST_F(ReceiptsTest, CourtIgnoresForgedReceipts) {
  // A customer fakes a mint VALIDATED receipt; the court must discard it and
  // convict the customer (delivery happened, payment did not).
  std::vector<Receipt> receipts;
  receipts.push_back(MakeReceipt(&auth_, "x", ReceiptKind::kOffer, "customer",
                                 "provider", 100, "", 1));
  receipts.push_back(MakeReceipt(&auth_, "x", ReceiptKind::kAccept, "provider",
                                 "customer", 100, "", 2));
  Receipt fake = MakeReceipt(&auth_, "x", ReceiptKind::kValidated, "customer", "",
                             100, "", 3);
  fake.actor = kMintPrincipal;  // Forged authorship: signature won't match.
  receipts.push_back(fake);
  receipts.push_back(MakeReceipt(&auth_, "x", ReceiptKind::kDeliver, "provider",
                                 "customer", 100, "", 4));

  AuditReport report = Audit(auth_, receipts, "x");
  EXPECT_EQ(report.verdict, Verdict::kCustomerViolated);
  EXPECT_EQ(report.receipts_rejected, 1u);
}

TEST_F(ReceiptsTest, CourtIgnoresValidatedNotFromMint) {
  // A VALIDATED receipt properly signed by the provider itself is worthless.
  std::vector<Receipt> receipts;
  receipts.push_back(MakeReceipt(&auth_, "x", ReceiptKind::kOffer, "customer",
                                 "provider", 100, "", 1));
  receipts.push_back(MakeReceipt(&auth_, "x", ReceiptKind::kAccept, "provider",
                                 "customer", 100, "", 2));
  receipts.push_back(MakeReceipt(&auth_, "x", ReceiptKind::kValidated, "provider",
                                 "", 100, "", 3));
  AuditReport report = Audit(auth_, receipts, "x");
  EXPECT_FALSE(report.paid);
}

TEST_F(ReceiptsTest, CourtScopesToExchangeId) {
  std::vector<Receipt> receipts;
  receipts.push_back(MakeReceipt(&auth_, "other", ReceiptKind::kOffer, "customer",
                                 "provider", 100, "", 1));
  AuditReport report = Audit(auth_, receipts, "x");
  EXPECT_EQ(report.verdict, Verdict::kNoContract);
  EXPECT_EQ(report.receipts_considered, 0u);
}

// --- Notary as a resident agent -------------------------------------------------

TEST(NotaryAgentTest, FileAndFetchViaMeet) {
  Kernel kernel;
  SiteId site = kernel.AddSite("court");
  SignatureAuthority auth(3);
  Notary notary(&auth);
  InstallNotaryAgent(&kernel, site, &notary);

  Receipt r = MakeReceipt(&auth, "x9", ReceiptKind::kOffer, "customer", "provider",
                          42, "", 0);
  Briefcase file_bc;
  file_bc.SetString("OP", "file");
  file_bc.folder("RECEIPT").PushBack(r.Serialize());
  ASSERT_TRUE(kernel.place(site)->Meet("notary", file_bc).ok());
  EXPECT_EQ(*file_bc.GetString("STATUS"), "ok");

  Briefcase fetch_bc;
  fetch_bc.SetString("OP", "fetch");
  fetch_bc.SetString("XID", "x9");
  ASSERT_TRUE(kernel.place(site)->Meet("notary", fetch_bc).ok());
  const Folder* receipts = fetch_bc.Find("RECEIPTS");
  ASSERT_NE(receipts, nullptr);
  ASSERT_EQ(receipts->size(), 1u);
  auto fetched = Receipt::Deserialize(*receipts->Front());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->exchange_id, "x9");
}

TEST(NotaryAgentTest, FileRejectsBadSignatureViaMeet) {
  Kernel kernel;
  SiteId site = kernel.AddSite("court");
  SignatureAuthority auth(3);
  Notary notary(&auth);
  InstallNotaryAgent(&kernel, site, &notary);

  Receipt r = MakeReceipt(&auth, "x", ReceiptKind::kOffer, "customer", "p", 1, "", 0);
  r.amount = 999;  // Tamper after signing.
  Briefcase bc;
  bc.SetString("OP", "file");
  bc.folder("RECEIPT").PushBack(r.Serialize());
  EXPECT_FALSE(kernel.place(site)->Meet("notary", bc).ok());
}

}  // namespace
}  // namespace tacoma::cash
