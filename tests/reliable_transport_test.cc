// Reliable agent transport: ack/retry/backoff, duplicate suppression,
// dead-letter returns, and crash-during-transfer behavior.
#include <gtest/gtest.h>

#include "core/kernel.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

KernelOptions ReliableOptions(uint64_t seed = 7) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = Reliability::kReliable;
  return options;
}

// Counts activations of a "sink" contact, per token (the TOKEN folder), at
// every place incarnation — survives crash/restart via AddPlaceInitializer.
struct SinkCounter {
  std::map<std::string, int> activations;
  void Install(Kernel* kernel) {
    kernel->AddPlaceInitializer([this](Place& place) {
      place.RegisterAgent("sink", [this](Place&, Briefcase& bc) {
        ++activations[bc.GetString("TOKEN").value_or("?")];
        return OkStatus();
      });
    });
  }
  int total() const {
    int n = 0;
    for (const auto& [token, count] : activations) {
      n += count;
    }
    return n;
  }
  int duplicates() const {
    int n = 0;
    for (const auto& [token, count] : activations) {
      n += count > 1 ? count - 1 : 0;
    }
    return n;
  }
};

TEST(ReliabilityOptionsTest, ParseRoundTrips) {
  for (Reliability mode :
       {Reliability::kOff, Reliability::kAtMostOnce, Reliability::kReliable}) {
    auto parsed = ParseReliability(ToString(mode));
    ASSERT_TRUE(parsed.has_value()) << ToString(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseReliability("sometimes").has_value());
}

TEST(ReliableTransportTest, TransferToUnknownSiteIdRejected) {
  Kernel kernel;
  SiteId a = kernel.AddSite("alpha");
  Briefcase bc;
  Status s = kernel.TransferAgent(a, 999, "sink", bc);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(kernel.stats().transfers_rejected, 1u);
  // Bogus source site too, in every mode.
  s = kernel.TransferAgent(777, a, "sink", bc,
                           TransferOptions{.mode = Reliability::kReliable});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(kernel.stats().transfers_rejected, 2u);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
}

TEST(ReliableTransportTest, LossyLinkDeliveredByRetry) {
  KernelOptions options = ReliableOptions();
  options.reliability.max_attempts = 0;  // Unlimited: 50% loss always loses.
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  SinkCounter sink;
  sink.Install(&kernel);
  kernel.net().SetLinkLoss(sites[0], sites[1], 0.5);

  for (int i = 0; i < 50; ++i) {
    Briefcase bc;
    bc.SetString("TOKEN", "t" + std::to_string(i));
    ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  }
  kernel.sim().Run();

  EXPECT_EQ(sink.total(), 50);
  EXPECT_EQ(sink.duplicates(), 0);
  EXPECT_EQ(kernel.stats().transfers_acked, 50u);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
  // 50% loss each way: retries must have carried some of the load.
  EXPECT_GT(kernel.stats().retries_sent, 0u);
}

TEST(ReliableTransportTest, FireAndForgetStillLossy) {
  KernelOptions options;
  options.seed = 7;  // Same seed as above for an apples-to-apples contrast.
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  SinkCounter sink;
  sink.Install(&kernel);
  kernel.net().SetLinkLoss(sites[0], sites[1], 0.5);

  for (int i = 0; i < 50; ++i) {
    Briefcase bc;
    bc.SetString("TOKEN", "t" + std::to_string(i));
    ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  }
  kernel.sim().Run();
  EXPECT_LT(sink.total(), 50);
  EXPECT_EQ(kernel.stats().retries_sent, 0u);
}

TEST(ReliableTransportTest, DuplicateSuppressedWhenAckLost) {
  // Force the pathological interleaving deterministically.  Loss is drawn
  // when a message ENTERS a link: the DATA frame enters at t=0 (loss 0), the
  // ACK enters at t=1ms (the link latency) — so flipping loss to 100% at
  // t=0.5ms loses exactly the ACK.
  Kernel kernel(ReliableOptions());
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  SinkCounter sink;
  sink.Install(&kernel);

  kernel.sim().After(500, [&] { kernel.net().SetLinkLoss(sites[0], sites[1], 1.0); });
  kernel.sim().After(5 * kMillisecond,
                     [&] { kernel.net().SetLinkLoss(sites[0], sites[1], 0.0); });
  Briefcase bc;
  bc.SetString("TOKEN", "once");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  kernel.sim().RunUntil(5 * kMillisecond);
  EXPECT_EQ(sink.activations["once"], 1);
  EXPECT_EQ(kernel.pending_transfers(), 1u);  // The ACK was lost: still pending.
  kernel.sim().Run();

  // The retry arrived, was suppressed by the dedup window, and was re-acked.
  EXPECT_EQ(sink.activations["once"], 1);
  EXPECT_EQ(kernel.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(kernel.stats().transfers_acked, 1u);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
}

TEST(ReliableTransportTest, AtMostOnceNeverRetries) {
  KernelOptions options;
  options.seed = 3;
  options.reliability.mode = Reliability::kAtMostOnce;
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  SinkCounter sink;
  sink.Install(&kernel);
  kernel.net().SetLinkLoss(sites[0], sites[1], 0.4);

  for (int i = 0; i < 40; ++i) {
    Briefcase bc;
    bc.SetString("TOKEN", "t" + std::to_string(i));
    ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  }
  kernel.sim().Run();
  EXPECT_LT(sink.total(), 40);       // Losses are final...
  EXPECT_EQ(sink.duplicates(), 0);   // ...and nothing activates twice.
  EXPECT_EQ(kernel.stats().retries_sent, 0u);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
}

TEST(ReliableTransportTest, MissingContactNacksToDeadLetter) {
  Kernel kernel(ReliableOptions());
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);

  std::vector<std::string> returned_reasons;
  kernel.place(a)->RegisterAgent("morgue", [&](Place&, Briefcase& bc) {
    returned_reasons.push_back(bc.GetString("DEADLETTER_REASON").value_or(""));
    EXPECT_EQ(bc.GetString("DEADLETTER_HOST").value_or(""), "beta");
    EXPECT_EQ(bc.GetString("DEADLETTER_CONTACT").value_or(""), "nobody");
    EXPECT_EQ(bc.GetString("PAYLOAD").value_or(""), "precious");
    return OkStatus();
  });

  Briefcase bc;
  bc.SetString("PAYLOAD", "precious");
  ASSERT_TRUE(kernel
                  .TransferAgent(a, b, "nobody", bc,
                                 TransferOptions{.dead_letter = "morgue"})
                  .ok());
  kernel.sim().Run();

  ASSERT_EQ(returned_reasons.size(), 1u);
  EXPECT_NE(returned_reasons[0].find("nobody"), std::string::npos);
  EXPECT_EQ(kernel.stats().transfers_nacked, 1u);
  EXPECT_EQ(kernel.stats().dead_letters_delivered, 1u);
  EXPECT_EQ(kernel.stats().retries_sent, 0u);  // Nack beats the first retry.
  EXPECT_EQ(kernel.pending_transfers(), 0u);
}

TEST(ReliableTransportTest, AdmissionRejectNacksToDeadLetter) {
  KernelOptions options = ReliableOptions();
  options.admission_policy = AdmissionPolicy::kReject;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);

  int returned = 0;
  kernel.place(a)->RegisterAgent("morgue", [&](Place&, Briefcase&) {
    ++returned;
    return OkStatus();
  });

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString("exec rm -rf /");  // Fails admission.
  ASSERT_TRUE(kernel
                  .TransferAgent(a, b, "ag_tacl", bc,
                                 TransferOptions{.dead_letter = "morgue"})
                  .ok());
  kernel.sim().Run();

  EXPECT_EQ(returned, 1);
  EXPECT_EQ(kernel.stats().transfers_nacked, 1u);
  EXPECT_EQ(kernel.stats().dead_letters_delivered, 1u);
}

TEST(ReliableTransportTest, UnreachableDestinationExpiresToDeadLetter) {
  KernelOptions options = ReliableOptions();
  options.reliability.max_attempts = 3;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);
  kernel.net().CutLink(a, b);  // Permanently partitioned.

  int returned = 0;
  kernel.place(a)->RegisterAgent("morgue", [&](Place&, Briefcase& bc) {
    ++returned;
    EXPECT_FALSE(bc.GetString("DEADLETTER_REASON").value_or("").empty());
    return OkStatus();
  });

  Briefcase bc;
  bc.SetString("TOKEN", "doomed");
  ASSERT_TRUE(kernel
                  .TransferAgent(a, b, "sink", bc,
                                 TransferOptions{.dead_letter = "morgue"})
                  .ok());
  kernel.sim().Run();

  EXPECT_EQ(returned, 1);
  EXPECT_EQ(kernel.stats().transfers_expired, 1u);
  EXPECT_EQ(kernel.stats().dead_letters_delivered, 1u);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
}

TEST(ReliableTransportTest, ArrivalMeetFailureCountedPerPlace) {
  Kernel kernel;  // Default kOff mode: failures are counted, nothing returns.
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);

  Briefcase bc;
  ASSERT_TRUE(kernel.TransferAgent(a, b, "nobody", bc).ok());
  ASSERT_TRUE(kernel.TransferAgent(a, b, "nobody-else", bc).ok());
  kernel.sim().Run();

  EXPECT_EQ(kernel.stats().meets_failed_on_arrival, 2u);
  EXPECT_EQ(kernel.place(b)->stats().arrival_meet_failures, 2u);
  EXPECT_EQ(kernel.place(a)->stats().arrival_meet_failures, 0u);
}

// --- Crash-during-transfer -----------------------------------------------------

class CrashDuringTransferTest : public ::testing::TestWithParam<Reliability> {};

TEST_P(CrashDuringTransferTest, DestinationCrashedInFlight) {
  KernelOptions options;
  options.seed = 11;
  options.reliability.mode = GetParam();
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);
  SinkCounter sink;
  sink.Install(&kernel);

  Briefcase bc;
  bc.SetString("TOKEN", "inflight");
  ASSERT_TRUE(kernel.TransferAgent(a, b, "sink", bc).ok());
  // Crash the destination while the frame is still in flight, restart it
  // after a while.
  kernel.sim().After(1, [&] { kernel.CrashSite(b); });
  kernel.sim().After(100 * kMillisecond, [&] { kernel.RestartSite(b); });
  kernel.sim().Run();

  const auto& s = kernel.stats();
  if (GetParam() == Reliability::kReliable) {
    // The retry loop rides out the crash window.
    EXPECT_EQ(sink.activations["inflight"], 1);
    EXPECT_EQ(s.transfers_acked, 1u);
  } else {
    // Fire-and-forget / at-most-once: the transfer may be lost, never duplicated.
    EXPECT_LE(sink.activations["inflight"], 1);
  }
  EXPECT_EQ(sink.duplicates(), 0);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
  EXPECT_EQ(s.transfers_reliable,
            s.transfers_acked + s.transfers_nacked + s.transfers_expired +
                s.transfers_abandoned);
}

TEST_P(CrashDuringTransferTest, IntermediateHopCrashedInFlight) {
  KernelOptions options;
  options.seed = 13;
  options.reliability.mode = GetParam();
  Kernel kernel(options);
  // alpha - relay - omega line: the frame store-and-forwards through relay.
  auto sites = BuildLine(&kernel.net(), 3);
  kernel.AdoptNetworkSites();
  SinkCounter sink;
  sink.Install(&kernel);

  Briefcase bc;
  bc.SetString("TOKEN", "via-relay");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[2], "sink", bc).ok());
  kernel.sim().After(1, [&] { kernel.CrashSite(sites[1]); });
  kernel.sim().After(150 * kMillisecond, [&] { kernel.RestartSite(sites[1]); });
  kernel.sim().Run();

  const auto& s = kernel.stats();
  if (GetParam() == Reliability::kReliable) {
    EXPECT_EQ(sink.activations["via-relay"], 1);
  } else {
    EXPECT_LE(sink.activations["via-relay"], 1);
  }
  EXPECT_EQ(sink.duplicates(), 0);
  EXPECT_EQ(kernel.pending_transfers(), 0u);
  EXPECT_EQ(s.transfers_reliable,
            s.transfers_acked + s.transfers_nacked + s.transfers_expired +
                s.transfers_abandoned);
}

TEST_P(CrashDuringTransferTest, OriginCrashAbandonsPending) {
  KernelOptions options;
  options.seed = 17;
  options.reliability.mode = GetParam();
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);
  kernel.net().CutLink(a, b);  // Keep the transfer pending at the origin.

  Briefcase bc;
  bc.SetString("TOKEN", "orphan");
  (void)kernel.TransferAgent(a, b, "sink", bc);
  kernel.CrashSite(a);
  kernel.sim().Run();

  EXPECT_EQ(kernel.pending_transfers(), 0u);
  const auto& s = kernel.stats();
  if (GetParam() == Reliability::kReliable) {
    EXPECT_EQ(s.transfers_abandoned, 1u);
  }
  EXPECT_EQ(s.transfers_reliable,
            s.transfers_acked + s.transfers_nacked + s.transfers_expired +
                s.transfers_abandoned);
}

INSTANTIATE_TEST_SUITE_P(AllModes, CrashDuringTransferTest,
                         ::testing::Values(Reliability::kOff,
                                           Reliability::kAtMostOnce,
                                           Reliability::kReliable),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Reliability::kOff:
                               return "Off";
                             case Reliability::kAtMostOnce:
                               return "AtMostOnce";
                             default:
                               return "Reliable";
                           }
                         });

// Shared schedule for the durable-dedup pair below — the nastiest
// interleaving: the transfer activates, its ACK is lost (loss flipped to 100%
// between the DATA frame entering the link and the ACK entering it), the
// receiver crashes and restarts, and only then does a retry arrive.  Returns
// the final activation count for the one token.
int RunAckLostThenReceiverCrash(KernelOptions options) {
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);
  SinkCounter sink;
  sink.Install(&kernel);

  kernel.sim().After(500, [&] { kernel.net().SetLinkLoss(a, b, 1.0); });
  Briefcase bc;
  bc.SetString("TOKEN", "exactly-once-please");
  EXPECT_TRUE(kernel.TransferAgent(a, b, "sink", bc).ok());
  kernel.sim().RunUntil(5 * kMillisecond);
  EXPECT_EQ(sink.activations["exactly-once-please"], 1);  // Activated once...
  EXPECT_EQ(kernel.pending_transfers(), 1u);              // ...but unacked.
  kernel.CrashSite(b);
  kernel.net().SetLinkLoss(a, b, 0.0);
  kernel.sim().RunUntil(15 * kMillisecond);
  kernel.RestartSite(b);  // Back up before the first ~30ms retry lands.
  kernel.sim().Run();

  EXPECT_EQ(kernel.pending_transfers(), 0u);
  return sink.activations["exactly-once-please"];
}

TEST(ReliableTransportTest, DurableDedupSurvivesReceiverCrash) {
  // The journaled dedup window must suppress the post-restart retry.
  EXPECT_EQ(RunAckLostThenReceiverCrash(ReliableOptions(23)), 1);
}

TEST(ReliableTransportTest, NonDurableDedupLostOnCrashByDesign) {
  // Contrast case documenting the weaker guarantee with durable_dedup off:
  // the in-memory window died with the crash, so the retry re-activates.
  KernelOptions options = ReliableOptions(23);
  options.reliability.durable_dedup = false;
  EXPECT_EQ(RunAckLostThenReceiverCrash(options), 2);
}

TEST(ReliableTransportTest, RexecHonorsReliableFolder) {
  // Kernel default MODE is kOff; the briefcase opts in per transfer.  The
  // retry budget still comes from kernel options — uncap it so heavy loss
  // cannot expire a transfer.
  KernelOptions options;
  options.reliability.max_attempts = 0;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);
  kernel.net().SetLinkLoss(a, b, 0.6);
  SinkCounter sink;
  sink.Install(&kernel);

  for (int i = 0; i < 20; ++i) {
    Briefcase bc;
    bc.SetString(kHostFolder, "beta");
    bc.SetString(kContactFolder, "sink");
    bc.SetString("RELIABLE", "reliable");
    bc.SetString("TOKEN", "r" + std::to_string(i));
    ASSERT_TRUE(kernel.place(a)->Meet("rexec", bc).ok());
  }
  kernel.sim().Run();

  EXPECT_EQ(sink.total(), 20);
  EXPECT_EQ(sink.duplicates(), 0);
  EXPECT_GT(kernel.stats().retries_sent, 0u);
}

TEST(ReliableTransportTest, RexecRejectsUnknownReliableMode) {
  Kernel kernel;
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);

  Briefcase bc;
  bc.SetString(kHostFolder, "beta");
  bc.SetString(kContactFolder, "sink");
  bc.SetString("RELIABLE", "bogus");
  Status s = kernel.place(a)->Meet("rexec", bc);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ReliableTransportTest, CourierHonorsDeadLetterFolder) {
  Kernel kernel(ReliableOptions());
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);

  int returned = 0;
  kernel.place(a)->RegisterAgent("morgue", [&](Place&, Briefcase& bc) {
    ++returned;
    EXPECT_TRUE(bc.Has("DATA"));
    return OkStatus();
  });

  Briefcase bc;
  bc.SetString(kHostFolder, "beta");
  bc.SetString(kContactFolder, "nobody-home");
  bc.SetString("FOLDER", "DATA");
  bc.SetString("DEADLETTER", "morgue");
  bc.folder("DATA").PushBackString("payload");
  ASSERT_TRUE(kernel.place(a)->Meet("courier", bc).ok());
  kernel.sim().Run();

  EXPECT_EQ(returned, 1);
  EXPECT_EQ(kernel.stats().dead_letters_delivered, 1u);
}

TEST(ReliableTransportTest, CloneHonorsReliableFolder) {
  // `clone` ships directly (no rexec hop) but must still honor the RELIABLE
  // briefcase folder.  One agent clones itself across a 60%-lossy link; the
  // clone (which sees the HOPPED marker) records its arrival.
  KernelOptions options;
  options.reliability.max_attempts = 0;
  Kernel kernel(options);
  SiteId a = kernel.AddSite("alpha");
  SiteId b = kernel.AddSite("beta");
  kernel.net().AddLink(a, b);
  kernel.net().SetLinkLoss(a, b, 0.6);

  constexpr char kCloner[] = R"(
    if {[bc_len HOPPED] > 0} {
      cab_set t ARRIVED 1
    } else {
      bc_set HOPPED 1
      clone beta
    }
  )";
  Briefcase bc;
  bc.SetString("RELIABLE", "reliable");
  ASSERT_TRUE(kernel.LaunchAgent(a, kCloner, bc).ok());
  kernel.sim().Run();

  EXPECT_TRUE(kernel.place(b)->Cabinet("t").HasFolder("ARRIVED"));
  EXPECT_EQ(kernel.stats().transfers_acked, 1u);
}

TEST(ReliableTransportTest, DeterministicAcrossRuns) {
  auto run = [] {
    Kernel kernel(ReliableOptions(99));
    auto sites = BuildLine(&kernel.net(), 3);
    kernel.AdoptNetworkSites();
    kernel.net().SetLinkLoss(sites[0], sites[1], 0.3);
    kernel.net().SetLinkLoss(sites[1], sites[2], 0.3);
    for (int i = 0; i < 30; ++i) {
      Briefcase bc;
      bc.SetString("TOKEN", std::to_string(i));
      (void)kernel.TransferAgent(sites[0], sites[2], "nobody", bc);
    }
    kernel.sim().Run();
    const auto& s = kernel.stats();
    return std::tuple(s.transfers_sent, s.retries_sent, s.transfers_acked,
                      s.transfers_nacked, s.transfers_expired,
                      s.duplicates_suppressed, kernel.sim().Now());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tacoma
