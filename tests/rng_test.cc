#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tacoma {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  SplitMix64 c(2);
  uint64_t a1 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_NE(a1, c.Next());
  EXPECT_NE(a1, a.Next());
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedDifferentStream) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

class RngSeedTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0, 1, 42, 1995, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

TEST_P(RngSeedTest, UniformStaysInBounds) {
  Rng rng(GetParam());
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST_P(RngSeedTest, UniformIntInclusiveRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST_P(RngSeedTest, UniformDoubleInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Uniform(10));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(5.0);
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total / n, 5.0, 0.3);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(17);
  double total = 0;
  double total_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    total += v;
    total_sq += v * v;
  }
  double mean = total / n;
  double var = total_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(var, 4.0, 0.4);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[i] = i;
  }
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(29);
  Rng child = parent.Fork();
  uint64_t c1 = child.Next();
  uint64_t p1 = parent.Next();
  EXPECT_NE(c1, p1);
  // Forking again from the same parent state gives a different child.
  Rng child2 = parent.Fork();
  EXPECT_NE(child2.Next(), c1);
}

}  // namespace
}  // namespace tacoma
