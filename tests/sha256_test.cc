#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace tacoma {
namespace {

// FIPS 180-4 / NIST known-answer vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: exactly one block, padding forces a second.
  std::string block(64, 'x');
  Digest one_shot = Sha256::Hash(block);
  Sha256 h;
  h.Update(block.substr(0, 31));
  h.Update(block.substr(31));
  EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(one_shot));
}

TEST(Sha256Test, FiftyFiveAndFiftySixBytes) {
  // 55 bytes is the largest message fitting one padded block; 56 forces two.
  std::string m55(55, 'q');
  std::string m56(56, 'q');
  EXPECT_NE(DigestToHex(Sha256::Hash(m55)), DigestToHex(Sha256::Hash(m56)));
}

TEST(Sha256Test, IncrementalMatchesOneShotEveryChunking) {
  std::string message = "The quick brown fox jumps over the lazy dog";
  Digest expect = Sha256::Hash(message);
  for (size_t chunk = 1; chunk <= message.size(); ++chunk) {
    Sha256 h;
    for (size_t i = 0; i < message.size(); i += chunk) {
      h.Update(message.substr(i, chunk));
    }
    EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(expect)) << "chunk=" << chunk;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("first");
  (void)h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, BytesOverloadAgrees) {
  std::string s = "payload";
  EXPECT_EQ(DigestToHex(Sha256::Hash(s)), DigestToHex(Sha256::Hash(ToBytes(s))));
}

TEST(Sha256Test, DigestToBytesMatchesHex) {
  Digest d = Sha256::Hash("abc");
  EXPECT_EQ(HexEncode(DigestToBytes(d)), DigestToHex(d));
}

}  // namespace
}  // namespace tacoma
