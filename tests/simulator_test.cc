#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace tacoma {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  SimTime seen = 0;
  sim.At(100, [&] {
    sim.After(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  SimTime seen = 0;
  sim.At(100, [&] {
    sim.At(10, [&] { seen = sim.Now(); });  // In the past: runs "now".
  });
  sim.Run();
  EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) {
      sim.After(10, tick);
    }
  };
  sim.After(10, tick);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.At(10, [&] { ++ran; });
  sim.At(20, [&] { ++ran; });
  sim.At(30, [&] { ++ran; });
  sim.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500u);
}

TEST(SimulatorTest, StepRunsOneEvent) {
  Simulator sim;
  int ran = 0;
  sim.At(1, [&] { ++ran; });
  sim.At(2, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventLimitStopsRunaway) {
  Simulator sim;
  sim.set_event_limit(100);
  // Fork bomb: each event schedules two more.
  std::function<void()> bomb = [&] {
    sim.After(1, bomb);
    sim.After(1, bomb);
  };
  sim.After(1, bomb);
  sim.Run();
  EXPECT_TRUE(sim.hit_event_limit());
  EXPECT_GE(sim.events_run(), 100u);
  EXPECT_LE(sim.events_run(), 101u);
}

TEST(SimulatorTest, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.At(i, [] {});
  }
  EXPECT_EQ(sim.Run(), 7u);
  EXPECT_EQ(sim.events_run(), 7u);
}

}  // namespace
}  // namespace tacoma
