// Randomized soak tests: throw chaotic-but-seeded workloads at whole
// subsystems and check global invariants rather than specific outcomes.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/kernel.h"
#include "ft/rearguard.h"
#include "sim/topology.h"
#include "tacl/interp.h"

namespace tacoma {
namespace {

// The parser must never crash or hang on arbitrary byte soup; it either
// parses or returns an error.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range<uint64_t>(0, 16));

TEST_P(ParserFuzzTest, ArbitraryInputNeverCrashesParser) {
  Rng rng(GetParam());
  const std::string alphabet = "ab {}[]\"$\\;\n\t#01xyz";
  for (int round = 0; round < 200; ++round) {
    std::string script;
    size_t len = rng.Uniform(120);
    for (size_t i = 0; i < len; ++i) {
      script.push_back(alphabet[rng.Uniform(alphabet.size())]);
    }
    auto parsed = tacl::ParseScript(script);
    (void)parsed;  // OK either way; just must terminate cleanly.
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, ArbitraryInputNeverCrashesInterpreter) {
  Rng rng(GetParam() + 1000);
  tacl::Interp interp;
  interp.set_step_limit(10'000);
  const std::string alphabet = "ab {}[]\"$\\;\n\t#01 setif";
  for (int round = 0; round < 100; ++round) {
    std::string script;
    size_t len = rng.Uniform(80);
    for (size_t i = 0; i < len; ++i) {
      script.push_back(alphabet[rng.Uniform(alphabet.size())]);
    }
    tacl::Outcome out = interp.Eval(script);
    (void)out;
  }
  SUCCEED();
}

// Random crash/restart storms over a working agent population: the kernel's
// accounting must stay consistent and nothing may crash or wedge.
class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range<uint64_t>(0, 6));

TEST_P(ChaosTest, CrashRestartStormKeepsInvariants) {
  Kernel kernel(KernelOptions{GetParam(), 100'000, false});
  Rng rng(GetParam() * 31 + 7);
  auto ids = BuildRandom(&kernel.net(), 10, 0.2, &rng);
  kernel.AdoptNetworkSites();

  ft::RearGuard guard(&kernel, ft::GuardOptions{20 * kMillisecond, 2, 3});
  guard.Install();

  // A stream of wandering agents (some guarded, some not).
  for (int i = 0; i < 20; ++i) {
    Briefcase bc;
    bc.SetString("AGENT", "wanderer" + std::to_string(i));
    for (int hop = 0; hop < 4; ++hop) {
      bc.folder("ITINERARY").PushBackString(
          kernel.net().site_name(ids[rng.Uniform(ids.size())]));
    }
    const char* code = (i % 2 == 0)
                           ? "cab_append t V [agent_id]\n"
                             "if {[bc_len ITINERARY] > 0} {jump [bc_pop ITINERARY]}"
                           : "cab_append t V [agent_id]\n"
                             "if {[bc_len ITINERARY] > 0} "
                             "{ft_jump [bc_pop ITINERARY]} else {ft_retire}";
    (void)kernel.LaunchAgent(ids[rng.Uniform(ids.size())], code, bc);
  }

  // Crash/restart storm across the first half-second.
  for (int k = 0; k < 30; ++k) {
    SiteId victim = ids[rng.Uniform(ids.size())];
    SimTime when = rng.Uniform(500 * kMillisecond);
    kernel.sim().At(when, [&kernel, victim] { kernel.CrashSite(victim); });
    kernel.sim().At(when + rng.Uniform(100 * kMillisecond) + 1,
                    [&kernel, victim] { kernel.RestartSite(victim); });
  }

  kernel.sim().set_event_limit(500'000);
  kernel.sim().RunUntil(5 * kSecond);

  // Invariants: accounting adds up, no wedged event storm, sites all back up.
  const NetworkStats& net = kernel.net().stats();
  EXPECT_LE(net.messages_delivered + net.messages_dropped, net.messages_sent +
                net.link_traversals);  // Loose sanity bound.
  EXPECT_GE(kernel.stats().transfers_sent, kernel.stats().transfers_delivered);
  EXPECT_FALSE(kernel.sim().hit_event_limit());
  for (SiteId s : ids) {
    kernel.RestartSite(s);
    EXPECT_NE(kernel.place(s), nullptr);
  }

  // One-line soak summary so a green run still shows how much work happened.
  std::printf(
      "[soak] crash-restart seed=%llu crash_events=30 transfers_sent=%llu "
      "delivered=%llu messages=%llu invariant_checks=%d\n",
      static_cast<unsigned long long>(GetParam()),
      static_cast<unsigned long long>(kernel.stats().transfers_sent),
      static_cast<unsigned long long>(kernel.stats().transfers_delivered),
      static_cast<unsigned long long>(net.messages_sent),
      3 + static_cast<int>(ids.size()));
}

}  // namespace
}  // namespace tacoma
