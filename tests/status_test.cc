#include "util/status.h"

#include <gtest/gtest.h>

namespace tacoma {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such agent");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such agent");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such agent");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(AbortedError("").code(), StatusCode::kAborted);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(DeadlineExceededError("").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
  EXPECT_EQ(OkStatus(), Status());
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailsWhenNegative(int v) {
  if (v < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status UsesReturnIfError(int v) {
  TACOMA_RETURN_IF_ERROR(FailsWhenNegative(v));
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int v) {
  if (v % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return v / 2;
}

Result<int> Quarter(int v) {
  TACOMA_ASSIGN_OR_RETURN(int half, Half(v));
  TACOMA_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace tacoma
