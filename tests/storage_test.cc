#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "storage/disk.h"
#include "storage/disk_log.h"

namespace tacoma {
namespace {

template <typename T>
class DiskTest : public ::testing::Test {
 protected:
  DiskTest() {
    if constexpr (std::is_same_v<T, FileDisk>) {
      dir_ = std::filesystem::temp_directory_path() /
             ("tacoma_disk_test_" + std::to_string(::getpid()));
      disk_ = std::make_unique<FileDisk>(dir_.string());
    } else {
      disk_ = std::make_unique<MemDisk>();
    }
  }
  ~DiskTest() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::unique_ptr<Disk> disk_;
  std::filesystem::path dir_;
};

using DiskTypes = ::testing::Types<MemDisk, FileDisk>;
TYPED_TEST_SUITE(DiskTest, DiskTypes);

TYPED_TEST(DiskTest, WriteReadRoundTrip) {
  ASSERT_TRUE(this->disk_->Write("file", ToBytes("contents")).ok());
  auto read = this->disk_->Read("file");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "contents");
}

TYPED_TEST(DiskTest, ReadMissingFails) {
  EXPECT_EQ(this->disk_->Read("ghost").status().code(), StatusCode::kNotFound);
}

TYPED_TEST(DiskTest, WriteOverwrites) {
  ASSERT_TRUE(this->disk_->Write("f", ToBytes("one")).ok());
  ASSERT_TRUE(this->disk_->Write("f", ToBytes("two")).ok());
  EXPECT_EQ(ToString(*this->disk_->Read("f")), "two");
}

TYPED_TEST(DiskTest, AppendExtends) {
  ASSERT_TRUE(this->disk_->Append("f", ToBytes("ab")).ok());
  ASSERT_TRUE(this->disk_->Append("f", ToBytes("cd")).ok());
  EXPECT_EQ(ToString(*this->disk_->Read("f")), "abcd");
}

TYPED_TEST(DiskTest, RemoveDeletes) {
  ASSERT_TRUE(this->disk_->Write("f", ToBytes("x")).ok());
  EXPECT_TRUE(this->disk_->Exists("f"));
  ASSERT_TRUE(this->disk_->Remove("f").ok());
  EXPECT_FALSE(this->disk_->Exists("f"));
  EXPECT_FALSE(this->disk_->Remove("f").ok());
}

TYPED_TEST(DiskTest, ListShowsFiles) {
  ASSERT_TRUE(this->disk_->Write("one", ToBytes("1")).ok());
  ASSERT_TRUE(this->disk_->Write("two", ToBytes("2")).ok());
  auto names = this->disk_->List();
  EXPECT_EQ(names.size(), 2u);
}

TYPED_TEST(DiskTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(this->disk_->Write("empty", Bytes{}).ok());
  auto read = this->disk_->Read("empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(MemDiskTest, TotalBytes) {
  MemDisk disk;
  ASSERT_TRUE(disk.Write("a", Bytes(10)).ok());
  ASSERT_TRUE(disk.Write("b", Bytes(5)).ok());
  EXPECT_EQ(disk.TotalBytes(), 15u);
}

TEST(DiskLogTest, AppendAndLoad) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("one")).ok());
  ASSERT_TRUE(log.Append(ToBytes("two")).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->snapshot.empty());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(ToString(contents->records[0]), "one");
  EXPECT_EQ(ToString(contents->records[1]), "two");
  EXPECT_FALSE(contents->truncated_tail);
}

TEST(DiskLogTest, CompactReplacesHistory) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("old")).ok());
  ASSERT_TRUE(log.Compact(ToBytes("snapshot-state")).ok());
  ASSERT_TRUE(log.Append(ToBytes("new")).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(ToString(contents->snapshot), "snapshot-state");
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "new");
}

TEST(DiskLogTest, EmptyLogLoadsClean) {
  MemDisk disk;
  DiskLog log(&disk, "fresh");
  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->snapshot.empty());
  EXPECT_TRUE(contents->records.empty());
}

TEST(DiskLogTest, TornTailIsTruncatedNotFatal) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("complete")).ok());
  // Simulate a crash mid-append: garbage partial record at the tail.
  ASSERT_TRUE(disk.Append("test.log", Bytes{0x05, 0x01, 0x02}).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "complete");
  EXPECT_TRUE(contents->truncated_tail);
}

TEST(DiskLogTest, CorruptRecordChecksumDetected) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("data")).ok());
  // Flip a byte inside the record payload.
  auto raw = disk.Read("test.log");
  ASSERT_TRUE(raw.ok());
  Bytes mutated = *raw;
  mutated[1] ^= 0xff;
  ASSERT_TRUE(disk.Write("test.log", mutated).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_TRUE(contents->truncated_tail);
}

TEST(DiskLogTest, CorruptSnapshotIsAnError) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Compact(ToBytes("state")).ok());
  auto raw = disk.Read("test.snap");
  Bytes mutated = *raw;
  mutated[1] ^= 0xff;
  ASSERT_TRUE(disk.Write("test.snap", mutated).ok());
  EXPECT_EQ(log.Load().status().code(), StatusCode::kDataLoss);
}

TEST(DiskLogTest, DestroyRemovesFiles) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("x")).ok());
  ASSERT_TRUE(log.Compact(ToBytes("y")).ok());
  ASSERT_TRUE(log.Destroy().ok());
  EXPECT_FALSE(disk.Exists("test.log"));
  EXPECT_FALSE(disk.Exists("test.snap"));
}

TEST(DiskLogTest, ManyRecordsSurvive) {
  MemDisk disk;
  DiskLog log(&disk, "bulk");
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(log.Append(ToBytes("record-" + std::to_string(i))).ok());
  }
  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 500u);
  EXPECT_EQ(ToString(contents->records[499]), "record-499");
}

}  // namespace
}  // namespace tacoma
