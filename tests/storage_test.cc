#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "storage/disk.h"
#include "storage/disk_log.h"

namespace tacoma {
namespace {

template <typename T>
class DiskTest : public ::testing::Test {
 protected:
  DiskTest() {
    if constexpr (std::is_same_v<T, FileDisk>) {
      dir_ = std::filesystem::temp_directory_path() /
             ("tacoma_disk_test_" + std::to_string(::getpid()));
      disk_ = std::make_unique<FileDisk>(dir_.string());
    } else {
      disk_ = std::make_unique<MemDisk>();
    }
  }
  ~DiskTest() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::unique_ptr<Disk> disk_;
  std::filesystem::path dir_;
};

using DiskTypes = ::testing::Types<MemDisk, FileDisk>;
TYPED_TEST_SUITE(DiskTest, DiskTypes);

TYPED_TEST(DiskTest, WriteReadRoundTrip) {
  ASSERT_TRUE(this->disk_->Write("file", ToBytes("contents")).ok());
  auto read = this->disk_->Read("file");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "contents");
}

TYPED_TEST(DiskTest, ReadMissingFails) {
  EXPECT_EQ(this->disk_->Read("ghost").status().code(), StatusCode::kNotFound);
}

TYPED_TEST(DiskTest, WriteOverwrites) {
  ASSERT_TRUE(this->disk_->Write("f", ToBytes("one")).ok());
  ASSERT_TRUE(this->disk_->Write("f", ToBytes("two")).ok());
  EXPECT_EQ(ToString(*this->disk_->Read("f")), "two");
}

TYPED_TEST(DiskTest, AppendExtends) {
  ASSERT_TRUE(this->disk_->Append("f", ToBytes("ab")).ok());
  ASSERT_TRUE(this->disk_->Append("f", ToBytes("cd")).ok());
  EXPECT_EQ(ToString(*this->disk_->Read("f")), "abcd");
}

TYPED_TEST(DiskTest, RemoveDeletes) {
  ASSERT_TRUE(this->disk_->Write("f", ToBytes("x")).ok());
  EXPECT_TRUE(this->disk_->Exists("f"));
  ASSERT_TRUE(this->disk_->Remove("f").ok());
  EXPECT_FALSE(this->disk_->Exists("f"));
  EXPECT_FALSE(this->disk_->Remove("f").ok());
}

TYPED_TEST(DiskTest, ListShowsFiles) {
  ASSERT_TRUE(this->disk_->Write("one", ToBytes("1")).ok());
  ASSERT_TRUE(this->disk_->Write("two", ToBytes("2")).ok());
  auto names = this->disk_->List();
  EXPECT_EQ(names.size(), 2u);
}

TYPED_TEST(DiskTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(this->disk_->Write("empty", Bytes{}).ok());
  auto read = this->disk_->Read("empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TYPED_TEST(DiskTest, RenameMovesContents) {
  ASSERT_TRUE(this->disk_->Write("src", ToBytes("payload")).ok());
  ASSERT_TRUE(this->disk_->Rename("src", "dst").ok());
  EXPECT_FALSE(this->disk_->Exists("src"));
  EXPECT_EQ(ToString(*this->disk_->Read("dst")), "payload");
}

TYPED_TEST(DiskTest, RenameOverwritesDestination) {
  ASSERT_TRUE(this->disk_->Write("src", ToBytes("new")).ok());
  ASSERT_TRUE(this->disk_->Write("dst", ToBytes("old")).ok());
  ASSERT_TRUE(this->disk_->Rename("src", "dst").ok());
  EXPECT_FALSE(this->disk_->Exists("src"));
  EXPECT_EQ(ToString(*this->disk_->Read("dst")), "new");
}

TYPED_TEST(DiskTest, RenameMissingSourceIsNotFound) {
  EXPECT_EQ(this->disk_->Rename("ghost", "dst").code(), StatusCode::kNotFound);
}

TYPED_TEST(DiskTest, DottedNamesDoNotCollide) {
  // Pre-fix, FileDisk flattened '.', '/', and '\' all to '_', so these four
  // logical names shared one backing file.
  ASSERT_TRUE(this->disk_->Write("a.b", ToBytes("dot")).ok());
  ASSERT_TRUE(this->disk_->Write("a_b", ToBytes("under")).ok());
  ASSERT_TRUE(this->disk_->Write("a/b", ToBytes("slash")).ok());
  ASSERT_TRUE(this->disk_->Write("a\\b", ToBytes("backslash")).ok());
  EXPECT_EQ(ToString(*this->disk_->Read("a.b")), "dot");
  EXPECT_EQ(ToString(*this->disk_->Read("a_b")), "under");
  EXPECT_EQ(ToString(*this->disk_->Read("a/b")), "slash");
  EXPECT_EQ(ToString(*this->disk_->Read("a\\b")), "backslash");
  EXPECT_EQ(this->disk_->List().size(), 4u);
}

TYPED_TEST(DiskTest, ListReturnsOriginalNames) {
  ASSERT_TRUE(this->disk_->Write("cab.system.snap", ToBytes("s")).ok());
  ASSERT_TRUE(this->disk_->Write("dir/inner", ToBytes("i")).ok());
  ASSERT_TRUE(this->disk_->Write("percent%name", ToBytes("p")).ok());
  auto names = this->disk_->List();
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "cab.system.snap");
  EXPECT_EQ(names[1], "dir/inner");
  EXPECT_EQ(names[2], "percent%name");
}

TEST(MemDiskTest, TotalBytes) {
  MemDisk disk;
  ASSERT_TRUE(disk.Write("a", Bytes(10)).ok());
  ASSERT_TRUE(disk.Write("b", Bytes(5)).ok());
  EXPECT_EQ(disk.TotalBytes(), 15u);
}

TEST(FileDiskTest, EscapeNameRoundTrips) {
  for (const std::string& name :
       {std::string("plain"), std::string("cab.system.snap"), std::string("a/b\\c"),
        std::string("100%"), std::string("sp ace"), std::string(".."),
        std::string("."), std::string("\x01\x7f"), std::string("%25")}) {
    EXPECT_EQ(FileDisk::UnescapeName(FileDisk::EscapeName(name)), name) << name;
  }
}

TEST(FileDiskTest, EscapeNameNeverEmitsPathSeparators) {
  for (const std::string& name :
       {std::string("../../etc/passwd"), std::string(".."), std::string("a/b")}) {
    std::string escaped = FileDisk::EscapeName(name);
    EXPECT_EQ(escaped.find('/'), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find('\\'), std::string::npos) << escaped;
    EXPECT_NE(escaped, "..");
    EXPECT_NE(escaped, ".");
  }
}

TEST(FileDiskTest, RemoveDistinguishesIoErrorFromAbsence) {
  auto dir = std::filesystem::temp_directory_path() /
             ("tacoma_disk_rm_" + std::to_string(::getpid()));
  FileDisk disk(dir.string());
  // Absence is NotFound...
  EXPECT_EQ(disk.Remove("ghost").code(), StatusCode::kNotFound);
  // ...but a name whose backing path cannot be removed (here: a non-empty
  // directory planted where the file would live) is a real I/O error.  The
  // pre-fix code reported "no such file" for both.
  std::filesystem::create_directories(dir / "blocked" / "inner");
  Status s = disk.Remove("blocked");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(DiskLogTest, AppendAndLoad) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("one")).ok());
  ASSERT_TRUE(log.Append(ToBytes("two")).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->snapshot.empty());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(ToString(contents->records[0]), "one");
  EXPECT_EQ(ToString(contents->records[1]), "two");
  EXPECT_FALSE(contents->truncated_tail);
}

TEST(DiskLogTest, CompactReplacesHistory) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("old")).ok());
  ASSERT_TRUE(log.Compact(ToBytes("snapshot-state")).ok());
  ASSERT_TRUE(log.Append(ToBytes("new")).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(ToString(contents->snapshot), "snapshot-state");
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "new");
}

TEST(DiskLogTest, EmptyLogLoadsClean) {
  MemDisk disk;
  DiskLog log(&disk, "fresh");
  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->snapshot.empty());
  EXPECT_TRUE(contents->records.empty());
}

TEST(DiskLogTest, TornTailIsTruncatedNotFatal) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("complete")).ok());
  // Simulate a crash mid-append: garbage partial record at the tail.
  ASSERT_TRUE(disk.Append("test.log", Bytes{0x05, 0x01, 0x02}).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "complete");
  EXPECT_TRUE(contents->truncated_tail);
}

TEST(DiskLogTest, CorruptRecordChecksumDetected) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("data")).ok());
  // Flip a byte inside the record payload.
  auto raw = disk.Read("test.log");
  ASSERT_TRUE(raw.ok());
  Bytes mutated = *raw;
  mutated[1] ^= 0xff;
  ASSERT_TRUE(disk.Write("test.log", mutated).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_TRUE(contents->truncated_tail);
}

TEST(DiskLogTest, CorruptSnapshotIsAnError) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Compact(ToBytes("state")).ok());
  auto raw = disk.Read("test.snap");
  Bytes mutated = *raw;
  mutated[1] ^= 0xff;
  ASSERT_TRUE(disk.Write("test.snap", mutated).ok());
  EXPECT_EQ(log.Load().status().code(), StatusCode::kDataLoss);
}

TEST(DiskLogTest, DestroyRemovesFiles) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("x")).ok());
  ASSERT_TRUE(log.Compact(ToBytes("y")).ok());
  ASSERT_TRUE(disk.Write("test.snap.tmp", ToBytes("left-over")).ok());
  ASSERT_TRUE(log.Destroy().ok());
  EXPECT_FALSE(disk.Exists("test.log"));
  EXPECT_FALSE(disk.Exists("test.snap"));
  EXPECT_FALSE(disk.Exists("test.snap.tmp"));
}

TEST(DiskLogTest, CompactBumpsEpochAndStampsLaterAppends) {
  MemDisk disk;
  DiskLog log(&disk, "test");
  EXPECT_EQ(log.epoch(), 0u);
  ASSERT_TRUE(log.Compact(ToBytes("state")).ok());
  EXPECT_EQ(log.epoch(), 1u);
  ASSERT_TRUE(log.Append(ToBytes("after")).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->snapshot_epoch, 1u);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "after");
}

TEST(DiskLogTest, StaleRecordsFromCrashedCompactAreDropped) {
  // The pre-fix double-apply window: Compact() wrote the snapshot, then a
  // crash prevented the log clear, so Load() saw snapshot + the already
  // folded-in records and replayed them again.  Reconstruct exactly that
  // disk state by restoring the pre-compact log file after compacting.
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("one")).ok());
  ASSERT_TRUE(log.Append(ToBytes("two")).ok());
  Bytes pre_compact_log = *disk.Read("test.log");
  ASSERT_TRUE(log.Compact(ToBytes("snapshot-of-one-two")).ok());
  ASSERT_TRUE(disk.Write("test.log", pre_compact_log).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(ToString(contents->snapshot), "snapshot-of-one-two");
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->stale_records_dropped, 2u);
  EXPECT_FALSE(contents->truncated_tail);
}

TEST(DiskLogTest, FreshDiskLogPrimesEpochFromSnapshot) {
  // A new DiskLog over an existing file set (the restart path) must not stamp
  // appends with epoch 0 when the snapshot already carries a later epoch —
  // Load() would wrongly discard them as stale.
  MemDisk disk;
  {
    DiskLog writer(&disk, "test");
    ASSERT_TRUE(writer.Compact(ToBytes("durable")).ok());
  }
  DiskLog reborn(&disk, "test");
  ASSERT_TRUE(reborn.Append(ToBytes("post-restart")).ok());

  DiskLog reader(&disk, "test");
  auto contents = reader.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(ToString(contents->snapshot), "durable");
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "post-restart");
  EXPECT_EQ(contents->stale_records_dropped, 0u);
}

TEST(DiskLogTest, AbandonedTmpSnapshotIsIgnored) {
  // A crash after writing <name>.snap.tmp but before the rename leaves the
  // tmp file behind; recovery must see the committed state, not the tmp.
  MemDisk disk;
  DiskLog log(&disk, "test");
  ASSERT_TRUE(log.Append(ToBytes("only")).ok());
  ASSERT_TRUE(disk.Write("test.snap.tmp", ToBytes("garbage from a dying flush")).ok());

  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->snapshot.empty());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(ToString(contents->records[0]), "only");
}

TEST(DiskLogTest, ManyRecordsSurvive) {
  MemDisk disk;
  DiskLog log(&disk, "bulk");
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(log.Append(ToBytes("record-" + std::to_string(i))).ok());
  }
  auto contents = log.Load();
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 500u);
  EXPECT_EQ(ToString(contents->records[499]), "record-499");
}

}  // namespace
}  // namespace tacoma
