// StormCast (§6): synthetic weather, agent vs client/server collection.
#include <gtest/gtest.h>

#include "stormcast/scenario.h"

namespace tacoma::stormcast {
namespace {

TEST(WeatherSampleTest, EncodeDecodeRoundTrip) {
  WeatherSample s;
  s.t = 17;
  s.temp_c = -12.3;
  s.pressure_hpa = 987.6;
  s.wind_ms = 24.1;
  auto restored = DecodeSample(EncodeSample(s));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->t, 17);
  EXPECT_NEAR(restored->temp_c, -12.3, 0.05);
  EXPECT_NEAR(restored->pressure_hpa, 987.6, 0.05);
  EXPECT_NEAR(restored->wind_ms, 24.1, 0.05);
}

TEST(WeatherSampleTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeSample("not a sample").ok());
  EXPECT_FALSE(DecodeSample("1;2").ok());
}

TEST(WeatherFieldTest, DeterministicForSeed) {
  WeatherField a(99, 4, 50, 2);
  WeatherField b(99, 4, 50, 2);
  for (size_t site = 0; site < 4; ++site) {
    ASSERT_EQ(a.SamplesFor(site).size(), 50u);
    for (size_t t = 0; t < 50; ++t) {
      EXPECT_DOUBLE_EQ(a.SamplesFor(site)[t].pressure_hpa,
                       b.SamplesFor(site)[t].pressure_hpa);
    }
  }
}

TEST(WeatherFieldTest, StormEventsDepressPressure) {
  WeatherField field(1995, 6, 96, 2);
  ASSERT_EQ(field.events().size(), 2u);
  for (const StormEvent& event : field.events()) {
    ASSERT_FALSE(event.affected_sites.empty());
    size_t peak = event.start + event.length / 2;
    if (peak >= field.samples_per_site()) {
      continue;
    }
    size_t site = event.affected_sites[0];
    // Pressure at the storm peak is visibly below the ~1013 baseline.
    EXPECT_LT(field.SamplesFor(site)[peak].pressure_hpa, 995.0);
    EXPECT_TRUE(field.StormActiveAt(peak));
  }
}

TEST(WeatherFieldTest, CalmPeriodsStayNearBaseline) {
  WeatherField field(7, 3, 50, 0);  // No storms.
  for (size_t site = 0; site < 3; ++site) {
    for (const WeatherSample& s : field.SamplesFor(site)) {
      EXPECT_GT(s.pressure_hpa, 995.0);
      EXPECT_LT(s.wind_ms, 16.0);
    }
  }
}

class ScenarioTest : public ::testing::TestWithParam<Topology> {};

INSTANTIATE_TEST_SUITE_P(Topologies, ScenarioTest,
                         ::testing::Values(Topology::kStar, Topology::kLine));

TEST_P(ScenarioTest, AgentAndClientServerAgreeOnPrediction) {
  ScenarioOptions options;
  options.sensor_count = 5;
  options.samples_per_site = 72;
  options.storm_events = 2;
  options.seed = 2024;
  options.topology = GetParam();
  Scenario scenario(options);
  Thresholds thresholds;

  CollectionResult agent = scenario.RunAgentCollection(thresholds);
  CollectionResult cs = scenario.RunClientServerCollection(thresholds);
  Prediction reference = scenario.ReferencePrediction(thresholds);

  ASSERT_TRUE(agent.completed);
  ASSERT_TRUE(cs.completed);
  EXPECT_EQ(agent.prediction.storm, cs.prediction.storm);
  EXPECT_EQ(agent.prediction.storm, reference.storm);
  EXPECT_EQ(agent.prediction.alerting_stations, cs.prediction.alerting_stations);
  EXPECT_EQ(cs.prediction.alerting_stations, reference.alerting_stations);
  EXPECT_EQ(cs.prediction.matches_carried, reference.matches_carried);
}

TEST_P(ScenarioTest, AgentUsesLessBandwidth) {
  // §1: "applications can be constructed in which communication-network
  // bandwidth is conserved."  The claim holds in the regime the paper
  // describes — raw data much larger than the agent itself.  (With tiny
  // per-site data the agent's travelling code can outweigh it on a star;
  // bench E1 maps that crossover.)
  ScenarioOptions options;
  options.sensor_count = 6;
  options.samples_per_site = 384;  // Data-dominant regime.
  options.topology = GetParam();
  Scenario scenario(options);
  Thresholds thresholds;

  CollectionResult agent = scenario.RunAgentCollection(thresholds);
  CollectionResult cs = scenario.RunClientServerCollection(thresholds);
  ASSERT_TRUE(agent.completed);
  ASSERT_TRUE(cs.completed);
  EXPECT_LT(agent.bytes_on_wire, cs.bytes_on_wire);
}

TEST(ScenarioTest, PureTaclScanMatchesNativeScan) {
  ScenarioOptions native;
  native.sensor_count = 3;
  native.samples_per_site = 24;  // Keep the interpreted loop cheap.
  native.seed = 77;
  native.native_scan = true;
  ScenarioOptions pure = native;
  pure.native_scan = false;

  Thresholds thresholds;
  CollectionResult native_result = Scenario(native).RunAgentCollection(thresholds);
  CollectionResult pure_result = Scenario(pure).RunAgentCollection(thresholds);
  ASSERT_TRUE(native_result.completed);
  ASSERT_TRUE(pure_result.completed);
  EXPECT_EQ(native_result.prediction.storm, pure_result.prediction.storm);
  EXPECT_EQ(native_result.prediction.alerting_stations,
            pure_result.prediction.alerting_stations);
  EXPECT_EQ(native_result.prediction.matches_carried,
            pure_result.prediction.matches_carried);
}

TEST(ScenarioTest, StormDetectedWhenPresentAndNotWhenAbsent) {
  Thresholds thresholds;
  ScenarioOptions stormy;
  stormy.sensor_count = 5;
  stormy.samples_per_site = 96;
  stormy.storm_events = 3;
  stormy.seed = 31;
  EXPECT_TRUE(Scenario(stormy).RunClientServerCollection(thresholds).prediction.storm);

  ScenarioOptions calm = stormy;
  calm.storm_events = 0;
  EXPECT_FALSE(Scenario(calm).RunClientServerCollection(thresholds).prediction.storm);
}

TEST(ScenarioTest, FilterThresholdControlsCarriedData) {
  ScenarioOptions options;
  options.sensor_count = 4;
  options.samples_per_site = 96;
  Thresholds loose;
  loose.filter_wind_ms = 5.0;  // Almost everything matches.
  Thresholds tight;
  tight.filter_wind_ms = 100.0;  // Nothing matches.

  Scenario scenario_loose(options);
  Scenario scenario_tight(options);
  CollectionResult a = scenario_loose.RunAgentCollection(loose);
  CollectionResult b = scenario_tight.RunAgentCollection(tight);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(a.prediction.matches_carried, b.prediction.matches_carried);
  EXPECT_EQ(b.prediction.matches_carried, 0);
  // More carried data = more bytes on the wire.
  EXPECT_GT(a.bytes_on_wire, b.bytes_on_wire);
}

}  // namespace
}  // namespace tacoma::stormcast
