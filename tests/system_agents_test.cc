// Tests for the paper's system agents: ag_tacl, rexec, courier, diffusion,
// plus the relay extension.
#include <gtest/gtest.h>

#include "core/kernel.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

class SystemAgentsTest : public ::testing::Test {
 protected:
  SystemAgentsTest() {
    a_ = kernel_.AddSite("alpha");
    b_ = kernel_.AddSite("beta");
    c_ = kernel_.AddSite("gamma");
    kernel_.net().AddLink(a_, b_);
    kernel_.net().AddLink(b_, c_);
  }

  Kernel kernel_;
  SiteId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(SystemAgentsTest, AgTaclPopsAndRunsCode) {
  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString("cab_set t RESULT ran");
  ASSERT_TRUE(kernel_.place(a_)->Meet("ag_tacl", bc).ok());
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("RESULT"), "ran");
  // CODE was popped (folder removed once empty).
  EXPECT_FALSE(bc.Has(kCodeFolder));
}

TEST_F(SystemAgentsTest, AgTaclStackedContinuations) {
  // Two code elements: the first runs now; the second is the continuation an
  // agent would carry to its next site.
  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString("cab_set t FIRST [bc_len CODE]");
  bc.folder(kCodeFolder).PushBackString("cab_set t SECOND yes");
  ASSERT_TRUE(kernel_.place(a_)->Meet("ag_tacl", bc).ok());
  // During the first activation, CODE still held the continuation.
  EXPECT_EQ(*kernel_.place(a_)->Cabinet("t").GetSingleString("FIRST"), "1");
  // It did not run.
  EXPECT_FALSE(kernel_.place(a_)->Cabinet("t").HasFolder("SECOND"));
  EXPECT_TRUE(bc.Has(kCodeFolder));
}

TEST_F(SystemAgentsTest, AgTaclWithoutCodeFails) {
  Briefcase bc;
  EXPECT_EQ(kernel_.place(a_)->Meet("ag_tacl", bc).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SystemAgentsTest, RexecMovesExecution) {
  Briefcase bc;
  bc.SetString(kHostFolder, "beta");
  bc.SetString(kContactFolder, "ag_tacl");
  bc.folder(kCodeFolder).PushBackString("cab_set t WHERE [site]");
  ASSERT_TRUE(kernel_.place(a_)->Meet("rexec", bc).ok());
  kernel_.sim().Run();
  EXPECT_EQ(*kernel_.place(b_)->Cabinet("t").GetSingleString("WHERE"), "beta");
}

TEST_F(SystemAgentsTest, RexecStripsRoutingFolders) {
  Briefcase seen;
  kernel_.place(b_)->RegisterAgent("inspect", [&seen](Place&, Briefcase& bc) {
    seen = bc;
    return OkStatus();
  });
  Briefcase bc;
  bc.SetString(kHostFolder, "beta");
  bc.SetString(kContactFolder, "inspect");
  bc.SetString("KEEP", "me");
  ASSERT_TRUE(kernel_.place(a_)->Meet("rexec", bc).ok());
  kernel_.sim().Run();
  EXPECT_FALSE(seen.Has(kHostFolder));
  EXPECT_FALSE(seen.Has(kContactFolder));
  EXPECT_EQ(*seen.GetString("KEEP"), "me");
}

TEST_F(SystemAgentsTest, RexecRequiresHostAndContact) {
  Briefcase bc;
  bc.SetString(kContactFolder, "x");
  EXPECT_FALSE(kernel_.place(a_)->Meet("rexec", bc).ok());
  Briefcase bc2;
  bc2.SetString(kHostFolder, "beta");
  EXPECT_FALSE(kernel_.place(a_)->Meet("rexec", bc2).ok());
  Briefcase bc3;
  bc3.SetString(kHostFolder, "nowhere");
  bc3.SetString(kContactFolder, "x");
  EXPECT_EQ(kernel_.place(a_)->Meet("rexec", bc3).code(), StatusCode::kNotFound);
}

TEST_F(SystemAgentsTest, RexecCrossesMultipleHops) {
  Briefcase bc;
  bc.SetString(kHostFolder, "gamma");
  bc.SetString(kContactFolder, "ag_tacl");
  bc.folder(kCodeFolder).PushBackString("cab_set t WHERE [site]");
  ASSERT_TRUE(kernel_.place(a_)->Meet("rexec", bc).ok());
  kernel_.sim().Run();
  EXPECT_EQ(*kernel_.place(c_)->Cabinet("t").GetSingleString("WHERE"), "gamma");
}

TEST_F(SystemAgentsTest, CourierTransfersOneFolder) {
  Briefcase received;
  kernel_.place(c_)->RegisterAgent("recipient", [&received](Place&, Briefcase& bc) {
    received = bc;
    return OkStatus();
  });
  Briefcase bc;
  bc.SetString(kHostFolder, "gamma");
  bc.SetString(kContactFolder, "recipient");
  bc.SetString("FOLDER", "REPORT");
  bc.folder("REPORT").PushBackString("news");
  bc.SetString("PRIVATE", "stays here");
  ASSERT_TRUE(kernel_.place(a_)->Meet("courier", bc).ok());
  kernel_.sim().Run();
  EXPECT_EQ(*received.GetString("REPORT"), "news");
  EXPECT_FALSE(received.Has("PRIVATE"));
}

TEST_F(SystemAgentsTest, CourierMissingFolderFails) {
  Briefcase bc;
  bc.SetString(kHostFolder, "gamma");
  bc.SetString(kContactFolder, "x");
  bc.SetString("FOLDER", "ABSENT");
  EXPECT_FALSE(kernel_.place(a_)->Meet("courier", bc).ok());
}

TEST_F(SystemAgentsTest, RelayRoundTrip) {
  kernel_.place(c_)->RegisterAgent("oracle", [](Place&, Briefcase& bc) {
    bc.SetString("ANSWER", "42");
    return OkStatus();
  });
  std::optional<std::string> answer;
  kernel_.place(a_)->RegisterAgent("callback", [&answer](Place&, Briefcase& bc) {
    answer = bc.GetString("ANSWER");
    return OkStatus();
  });

  Briefcase request;
  request.SetString("TARGET", "oracle");
  request.SetString("REPLY_HOST", "alpha");
  request.SetString("REPLY_CONTACT", "callback");
  ASSERT_TRUE(kernel_.TransferAgent(a_, c_, "relay", request).ok());
  kernel_.sim().Run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, "42");
}

TEST_F(SystemAgentsTest, RelayReportsTargetErrors) {
  std::optional<std::string> relay_error;
  kernel_.place(a_)->RegisterAgent("callback", [&relay_error](Place&, Briefcase& bc) {
    relay_error = bc.GetString("RELAY_ERROR");
    return OkStatus();
  });
  Briefcase request;
  request.SetString("TARGET", "no_such_agent");
  request.SetString("REPLY_HOST", "alpha");
  request.SetString("REPLY_CONTACT", "callback");
  ASSERT_TRUE(kernel_.TransferAgent(a_, c_, "relay", request).ok());
  kernel_.sim().Run();
  ASSERT_TRUE(relay_error.has_value());
  EXPECT_NE(relay_error->find("no_such_agent"), std::string::npos);
}

// --- Diffusion: the paper's worked flooding example (§2) -------------------------

class DiffusionTest : public ::testing::Test {
 protected:
  // Counts payload executions per site via a cabinet marker.
  size_t ExecutionCount(Kernel& kernel, const std::vector<SiteId>& sites) {
    size_t total = 0;
    for (SiteId s : sites) {
      Place* place = kernel.place(s);
      if (place != nullptr && place->Cabinet("t").HasFolder("HITS")) {
        total += place->Cabinet("t").Size("HITS");
      }
    }
    return total;
  }

  static constexpr char kPayload[] = "cab_append t HITS [site]";
};

TEST_F(DiffusionTest, VisitedModeReachesAllSitesOnce) {
  Kernel kernel;
  auto ids = BuildRing(&kernel.net(), 8);
  kernel.AdoptNetworkSites();

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(kPayload);
  ASSERT_TRUE(kernel.place(ids[0])->Meet("diffusion", bc).ok());
  kernel.sim().Run();

  // Every site executed the payload exactly once.
  for (SiteId s : ids) {
    EXPECT_EQ(kernel.place(s)->Cabinet("t").Size("HITS"), 1u) << s;
  }
  EXPECT_EQ(ExecutionCount(kernel, ids), 8u);
}

TEST_F(DiffusionTest, VisitedModeBoundedOnDenseGraph) {
  Kernel kernel;
  auto ids = BuildFullMesh(&kernel.net(), 6);
  kernel.AdoptNetworkSites();

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(kPayload);
  ASSERT_TRUE(kernel.place(ids[0])->Meet("diffusion", bc).ok());
  kernel.sim().Run();

  EXPECT_EQ(ExecutionCount(kernel, ids), 6u);
  // Transfers are bounded by edges (each site clones to unvisited names only).
  EXPECT_LE(kernel.stats().transfers_sent, 6u * 5u);
}

TEST_F(DiffusionTest, NaiveModeGrowsWithoutVisitRecords) {
  // The paper: "the number of agents increases without bound".  With a TTL
  // bound, naive flooding on a ring executes far more than once per site.
  Kernel kernel;
  auto ids = BuildRing(&kernel.net(), 6);
  kernel.AdoptNetworkSites();

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(kPayload);
  bc.SetString("MODE", "naive");
  bc.SetString("TTL", "8");
  ASSERT_TRUE(kernel.place(ids[0])->Meet("diffusion", bc).ok());
  kernel.sim().Run();

  EXPECT_GT(ExecutionCount(kernel, ids), 6u * 2u);
}

TEST_F(DiffusionTest, DistinctMessagesFloodIndependently) {
  Kernel kernel;
  auto ids = BuildLine(&kernel.net(), 4);
  kernel.AdoptNetworkSites();

  for (int round = 0; round < 2; ++round) {
    Briefcase bc;
    bc.folder(kCodeFolder).PushBackString(kPayload);
    bc.SetString("MSGID", "msg" + std::to_string(round));
    ASSERT_TRUE(kernel.place(ids[0])->Meet("diffusion", bc).ok());
    kernel.sim().Run();
  }
  // Two distinct MSGIDs -> each site executed twice.
  EXPECT_EQ(ExecutionCount(kernel, ids), 8u);
}

TEST_F(DiffusionTest, FloodToleratesSiteCrashMidFlood) {
  // A site dying mid-flood only loses its own copy: with redundant paths the
  // rest of the grid is still covered, and the restarted site can be covered
  // by re-injecting the same MSGID later (per-site dedup markers are
  // volatile, so survivors suppress and the newcomer executes).
  Kernel kernel;
  auto ids = BuildGrid(&kernel.net(), 3, 3);
  kernel.AdoptNetworkSites();
  SiteId victim = ids[8];  // Far corner.

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(kPayload);
  bc.SetString("MSGID", "m1");
  ASSERT_TRUE(kernel.place(ids[0])->Meet("diffusion", bc).ok());
  kernel.sim().After(500, [&kernel, victim] { kernel.CrashSite(victim); });
  kernel.sim().Run();

  size_t covered = 0;
  for (SiteId s : ids) {
    Place* place = kernel.place(s);
    if (place != nullptr && place->Cabinet("t").Size("HITS") == 1) {
      ++covered;
    }
  }
  EXPECT_EQ(covered, 8u);  // Everyone but the victim.

  // Recover the victim by injecting the same message AT it (injecting at an
  // already-visited site terminates immediately — that IS the algorithm).
  // Its clones fan out to neighbours and die there against the markers.
  kernel.RestartSite(victim);
  Briefcase again;
  again.folder(kCodeFolder).PushBackString(kPayload);
  again.SetString("MSGID", "m1");
  ASSERT_TRUE(kernel.place(victim)->Meet("diffusion", again).ok());
  kernel.sim().Run();

  // The restarted site is now covered; survivors did not double-execute
  // (their dedup markers survived because they never crashed).
  EXPECT_EQ(kernel.place(victim)->Cabinet("t").Size("HITS"), 1u);
  for (SiteId s : ids) {
    EXPECT_LE(kernel.place(s)->Cabinet("t").Size("HITS"), 1u);
  }
}

TEST_F(DiffusionTest, SameMessageIdSuppressedOnSecondInjection) {
  Kernel kernel;
  auto ids = BuildLine(&kernel.net(), 4);
  kernel.AdoptNetworkSites();

  for (int round = 0; round < 2; ++round) {
    Briefcase bc;
    bc.folder(kCodeFolder).PushBackString(kPayload);
    bc.SetString("MSGID", "same-id");
    ASSERT_TRUE(kernel.place(ids[0])->Meet("diffusion", bc).ok());
    kernel.sim().Run();
  }
  EXPECT_EQ(ExecutionCount(kernel, ids), 4u);
}

// probe: "all services are agents" extends to observability — a meet with the
// resident probe agent returns the kernel's metrics and trace state in the
// briefcase (acceptance: at least transfer, meet-dispatch, and retry
// counters appear in the snapshot).
TEST_F(SystemAgentsTest, ProbeReturnsMetricsSnapshot) {
  // Generate some traffic first so the counters are non-trivial.
  Briefcase travel;
  travel.SetString(kHostFolder, "beta");
  travel.SetString(kContactFolder, "ag_tacl");
  travel.folder(kCodeFolder).PushBackString("cab_set t X 1");
  ASSERT_TRUE(kernel_.place(a_)->Meet("rexec", travel).ok());
  kernel_.sim().Run();

  Briefcase bc;
  ASSERT_TRUE(kernel_.place(a_)->Meet("probe", bc).ok());
  ASSERT_TRUE(bc.GetString("METRICS_JSON").has_value());
  ASSERT_TRUE(bc.GetString("METRICS_TEXT").has_value());
  const std::string json = *bc.GetString("METRICS_JSON");
  EXPECT_NE(json.find("\"kernel.transfers_sent\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel.retries_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"place.meets\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel.transfers_delivered\":1"), std::string::npos);
  // Default WHAT=metrics does not serialize the trace buffer.
  EXPECT_FALSE(bc.GetString("TRACE_JSON").has_value());
  EXPECT_EQ(*bc.GetString("PROBE_SITE"), "alpha");
}

TEST_F(SystemAgentsTest, ProbeWhatAllIncludesTrace) {
  Briefcase travel;
  travel.SetString(kHostFolder, "beta");
  travel.SetString(kContactFolder, "ag_tacl");
  travel.folder(kCodeFolder).PushBackString("cab_set t X 1");
  ASSERT_TRUE(kernel_.place(a_)->Meet("rexec", travel).ok());
  kernel_.sim().Run();

  Briefcase bc;
  bc.SetString("WHAT", "all");
  ASSERT_TRUE(kernel_.place(a_)->Meet("probe", bc).ok());
  const std::string trace = *bc.GetString("TRACE_JSON");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("transfer.send"), std::string::npos);
  EXPECT_NE(trace.find("meet.dispatch"), std::string::npos);
}

TEST_F(SystemAgentsTest, ProbeRejectsUnknownWhat) {
  Briefcase bc;
  bc.SetString("WHAT", "everything");
  EXPECT_EQ(kernel_.place(a_)->Meet("probe", bc).code(),
            StatusCode::kInvalidArgument);
}

// A remote reading: relay meets the probe at a far site and couriers the
// snapshot home — the tacoma_top protocol over nothing but agent meets.
TEST_F(SystemAgentsTest, ProbeReadRemotelyViaRelay) {
  Briefcase bc;
  bc.SetString(kHostFolder, "gamma");
  bc.SetString(kContactFolder, "relay");
  bc.SetString("TARGET", "probe");
  bc.SetString("REPLY_HOST", "alpha");
  bc.SetString("REPLY_CONTACT", "report");

  std::string metrics_text;
  kernel_.place(a_)->RegisterAgent("report", [&](Place&, Briefcase& reply) {
    metrics_text = reply.GetString("METRICS_TEXT").value_or("");
    return OkStatus();
  });
  ASSERT_TRUE(kernel_.place(a_)->Meet("rexec", bc).ok());
  kernel_.sim().Run();

  EXPECT_NE(metrics_text.find("kernel.transfers_sent"), std::string::npos)
      << metrics_text;
  EXPECT_NE(metrics_text.find("place.meets"), std::string::npos);
}

}  // namespace
}  // namespace tacoma
