#include "tacl/analyze.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/kernel.h"

namespace tacoma::tacl {
namespace {

// Agent-shaped analysis: builtins plus the agent primitives, like a Place
// admission check at a site with no extra modules installed.
AnalyzerOptions AgentOptions() {
  AnalyzerOptions options;
  options.signatures = BuiltinCommandSignatures();
  for (const auto& [name, sig] : AgentPrimitiveSignatures()) {
    options.signatures.emplace(name, sig);
  }
  return options;
}

bool HasDiagnostic(const AnalysisReport& report, std::string_view code,
                   size_t line = 0) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code && (line == 0 || d.line == line)) {
      return true;
    }
  }
  return false;
}

// --- Parse errors -----------------------------------------------------------------

TEST(AnalyzeTest, ParseErrorReportedWithLine) {
  AnalysisReport report = Analyze("set a 1\nset b {unclosed\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, kDiagParseError));
  ASSERT_EQ(report.error_count(), 1u);
  EXPECT_GE(report.diagnostics[0].line, 2u);
}

TEST(AnalyzeTest, CleanScriptHasNoDiagnostics) {
  AnalysisReport report = Analyze("set a 1\nset b [expr {$a + 1}]\nputs $b\n");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty());
  // Three top-level commands plus the [expr ...] substitution script.
  EXPECT_EQ(report.commands_analyzed, 4u);
}

// --- Unknown commands ----------------------------------------------------------

TEST(AnalyzeTest, UnknownCommandFlaggedWithLine) {
  AnalysisReport report = Analyze("set a 1\nfrobnicate $a\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnknownCommand, 2));
}

TEST(AnalyzeTest, UnknownCommandInsideBodyAndSubstitution) {
  AnalysisReport inside_body = Analyze("if {1} {\n  frobnicate\n}\n");
  EXPECT_TRUE(HasDiagnostic(inside_body, kDiagUnknownCommand, 2));

  AnalysisReport inside_subst = Analyze("puts \"x [frobnicate] y\"\n");
  EXPECT_TRUE(HasDiagnostic(inside_subst, kDiagUnknownCommand, 1));
}

TEST(AnalyzeTest, ScriptProcsAreKnownCommands) {
  AnalysisReport report = Analyze("proc greet {who} { puts $who }\ngreet world\n");
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AnalyzeTest, ProcDefinedInNestedBodyIsKnown) {
  AnalysisReport report =
      Analyze("if {1} {\n  proc helper {} { puts hi }\n}\nhelper\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnknownCommand));
}

TEST(AnalyzeTest, KnownCommandsOptionAccepted) {
  AnalyzerOptions options;
  options.known_commands.insert("wx_scan");
  AnalysisReport report = Analyze("wx_scan 20 extra args accepted", options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AnalyzeTest, ComputedCommandNamesAreNotFlagged) {
  AnalysisReport report = Analyze("set op puts\n$op hello\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnknownCommand));
}

// --- Arity ----------------------------------------------------------------------

TEST(AnalyzeTest, BuiltinArityChecked) {
  EXPECT_TRUE(HasDiagnostic(Analyze("lindex onlyonearg\n"), kDiagBadArity, 1));
  EXPECT_TRUE(HasDiagnostic(Analyze("set a b c d\n"), kDiagBadArity, 1));
  EXPECT_TRUE(HasDiagnostic(Analyze("while {1}\n"), kDiagBadArity, 1));
  EXPECT_FALSE(HasDiagnostic(Analyze("set a 1\n"), kDiagBadArity));
}

TEST(AnalyzeTest, AgentPrimitiveArityChecked) {
  AnalysisReport report = Analyze("bc_get\n", AgentOptions());
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 1));
  AnalysisReport ok = Analyze("bc_put RESULT 42\n", AgentOptions());
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(AnalyzeTest, ProcArityChecked) {
  const char* script =
      "proc add {a b} { expr {$a + $b} }\n"
      "add 1\n"
      "add 1 2\n"
      "add 1 2 3\n";
  AnalysisReport report = Analyze(script);
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 2));
  EXPECT_FALSE(HasDiagnostic(report, kDiagBadArity, 3));
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 4));
}

TEST(AnalyzeTest, ProcDefaultsAndVarargsRespected) {
  const char* script =
      "proc greet {name {greeting hello} args} { puts \"$greeting $name\" }\n"
      "greet\n"
      "greet bob\n"
      "greet bob hi extra more\n";
  AnalysisReport report = Analyze(script);
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 2));
  EXPECT_FALSE(HasDiagnostic(report, kDiagBadArity, 3));
  EXPECT_FALSE(HasDiagnostic(report, kDiagBadArity, 4));
}

// --- Unset variables --------------------------------------------------------------

TEST(AnalyzeTest, UnsetVariableWarned) {
  AnalysisReport report = Analyze("puts $never_set\n");
  EXPECT_TRUE(report.ok());  // Warning, not error.
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnsetVariable, 1));
}

TEST(AnalyzeTest, DefinitionAnywhereInScopeCounts) {
  // Flow-insensitive by design: a set later in the scope suppresses the
  // warning (the read may be guarded by briefcase state).
  AnalysisReport report = Analyze("if {[info level] == 0} { puts $x }\nset x 1\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable));
}

TEST(AnalyzeTest, LoopAndAssignCommandsDefine) {
  const char* script =
      "foreach {a b} {1 2 3 4} { puts \"$a $b\" }\n"
      "lassign {1 2} p q\n"
      "incr counter\n"
      "append buffer x\n"
      "catch {error boom} msg\n"
      "puts \"$p $q $counter $buffer $msg\"\n";
  AnalysisReport report = Analyze(script);
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable)) << report.ToString();
}

TEST(AnalyzeTest, ProcBodiesAreTheirOwnScope) {
  // `top` is set at top level but proc bodies do not see it without global.
  AnalysisReport local_only =
      Analyze("set top 1\nproc uses_local {} { puts $top }\n");
  EXPECT_TRUE(HasDiagnostic(local_only, kDiagUnsetVariable, 2));

  // A `global` declaration suppresses the warning.  (Collection is
  // script-wide and conservative: any `global top` anywhere would.)
  AnalysisReport with_global =
      Analyze("set top 1\nproc uses_global {} { global top\nputs $top }\n");
  EXPECT_FALSE(HasDiagnostic(with_global, kDiagUnsetVariable))
      << with_global.ToString();
}

TEST(AnalyzeTest, ProcParamsAreDefined) {
  AnalysisReport report =
      Analyze("proc area {w {h 1}} { expr {$w * $h} }\narea 3 4\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable)) << report.ToString();
}

TEST(AnalyzeTest, ConditionReadsAreTracked) {
  AnalysisReport report = Analyze("while {$missing < 3} { puts x }\n");
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnsetVariable, 1));
}

TEST(AnalyzeTest, DynamicVariableNamesSuppressUnsetWarnings) {
  AnalysisReport report = Analyze("set name x\nset $name 5\nputs $x\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable));
}

TEST(AnalyzeTest, InfoExistsGuardSuppressesWarning) {
  AnalysisReport report =
      Analyze("if {[info exists maybe]} { puts $maybe }\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable)) << report.ToString();
}

// --- Unreachable code -------------------------------------------------------------

TEST(AnalyzeTest, UnreachableAfterReturn) {
  AnalysisReport report = Analyze("set a 1\nreturn $a\nputs dead\n");
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnreachable, 3));
}

TEST(AnalyzeTest, UnreachableAfterBreakInLoopBody) {
  AnalysisReport report =
      Analyze("while {1} {\n  break\n  puts dead\n}\n");
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnreachable, 3));
}

TEST(AnalyzeTest, UnreachableAfterErrorAndJump) {
  EXPECT_TRUE(HasDiagnostic(Analyze("error boom\nputs dead\n"), kDiagUnreachable, 2));
  AnalysisReport report = Analyze("jump elsewhere\nputs dead\n", AgentOptions());
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnreachable, 2));
}

TEST(AnalyzeTest, ConditionalReturnDoesNotMarkUnreachable) {
  AnalysisReport report = Analyze("if {1} { return }\nputs alive\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnreachable));
}

// --- Capability extraction ---------------------------------------------------------

TEST(AnalyzeTest, CapabilitiesExtracted) {
  const char* script =
      "bc_put RESULT 42\n"
      "bc_get QUERY\n"
      "cab_append ledger AUDITS x\n"
      "meet broker\n"
      "send hub courier_target DATA\n"
      "if {1} { jump observatory } else { move office }\n"
      "clone mirror\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  const CapabilitySummary& caps = report.capabilities;
  EXPECT_TRUE(caps.briefcase_folders.contains("RESULT"));
  EXPECT_TRUE(caps.briefcase_folders.contains("QUERY"));
  EXPECT_TRUE(caps.cabinets.contains("ledger"));
  EXPECT_TRUE(caps.agents_met.contains("broker"));
  EXPECT_TRUE(caps.agents_met.contains("courier_target"));
  EXPECT_TRUE(caps.hosts.contains("observatory"));
  EXPECT_TRUE(caps.hosts.contains("office"));
  EXPECT_TRUE(caps.hosts.contains("hub"));
  EXPECT_TRUE(caps.hosts.contains("mirror"));
  EXPECT_FALSE(caps.dynamic_targets);
}

TEST(AnalyzeTest, DynamicTargetsAreFlagged) {
  AnalysisReport report =
      Analyze("set next [bc_pop ITINERARY]\njump $next\n", AgentOptions());
  EXPECT_TRUE(report.capabilities.dynamic_targets);
  EXPECT_TRUE(report.capabilities.briefcase_folders.contains("ITINERARY"));
}

// --- Report formatting -------------------------------------------------------------

TEST(AnalyzeTest, ToStringIsLineNumberedAndNamed) {
  AnalysisReport report = Analyze("frobnicate\n");
  std::string rendered = report.ToString("agent.tacl");
  EXPECT_NE(rendered.find("agent.tacl:1: error: unknown command \"frobnicate\""),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("[unknown-command]"), std::string::npos);
  EXPECT_NE(report.FirstError().find("line 1"), std::string::npos);
}

// --- Shipped example agents lint clean ----------------------------------------------

TEST(AnalyzeTest, ExampleAgentScriptsLintClean) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(TACOMA_SOURCE_DIR) / "examples" / "agents";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".tacl") {
      continue;
    }
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    AnalysisReport report = Analyze(buffer.str(), AgentOptions());
    EXPECT_TRUE(report.ok() && report.warning_count() == 0)
        << entry.path() << ":\n"
        << report.ToString(entry.path().filename().string());
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

// --- Effect lattice ---------------------------------------------------------------

TEST(EffectLatticeTest, AddSaturatesAtUnbounded) {
  EXPECT_EQ(EffectAdd(2, 3), 5);
  EXPECT_EQ(EffectAdd(kUnboundedEffect, 3), kUnboundedEffect);
  EXPECT_EQ(EffectAdd(0, kUnboundedEffect), kUnboundedEffect);
}

TEST(EffectLatticeTest, MulZeroAnnihilatesUnbounded) {
  EXPECT_EQ(EffectMul(2, 3), 6);
  EXPECT_EQ(EffectMul(kUnboundedEffect, 3), kUnboundedEffect);
  EXPECT_EQ(EffectMul(0, kUnboundedEffect), 0);
  EXPECT_EQ(EffectMul(kUnboundedEffect, 0), 0);
}

TEST(EffectLatticeTest, BoundRendering) {
  EXPECT_EQ(EffectBoundToString(7), "7");
  EXPECT_EQ(EffectBoundToString(kUnboundedEffect), "unbounded");
}

TEST(EffectLatticeTest, SensitiveFolderNames) {
  EXPECT_TRUE(IsSensitiveFolder("SECRET_ROUTE"));
  EXPECT_TRUE(IsSensitiveFolder("SECRETS"));
  EXPECT_TRUE(IsSensitiveFolder("MY_WALLET"));
  EXPECT_TRUE(IsSensitiveFolder("RECEIPT"));
  EXPECT_FALSE(IsSensitiveFolder("RESULT"));
  EXPECT_FALSE(IsSensitiveFolder("ITINERARY"));
}

// --- Effect manifests -------------------------------------------------------------

TEST(ManifestTest, ReadWriteSplit) {
  const char* script =
      "bc_get QUERY\n"
      "bc_put RESULT 42\n"
      "set v [bc_pop STACK]\n"
      "cab_append ledger AUDITS x\n"
      "cab_list field SAMPLES\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  const EffectManifest& m = report.manifest;
  EXPECT_TRUE(m.folders_read.contains("QUERY"));
  EXPECT_FALSE(m.folders_written.contains("QUERY"));
  EXPECT_TRUE(m.folders_written.contains("RESULT"));
  EXPECT_FALSE(m.folders_read.contains("RESULT"));
  // pop mutates: both read and write.
  EXPECT_TRUE(m.folders_read.contains("STACK"));
  EXPECT_TRUE(m.folders_written.contains("STACK"));
  EXPECT_TRUE(m.cabinets_written.contains("ledger"));
  EXPECT_FALSE(m.cabinets_read.contains("ledger"));
  EXPECT_TRUE(m.cabinets_read.contains("field"));
  EXPECT_FALSE(m.dynamic_targets);
}

TEST(ManifestTest, StraightLineHopAndCloneBounds) {
  const char* script =
      "clone mirror\n"
      "if {1} { move alpha } else { jump beta }\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  EXPECT_EQ(report.manifest.clone_bound, 1);
  // Both branches contribute: a sound upper bound, not a path-sensitive one.
  EXPECT_EQ(report.manifest.hop_bound, 2);
  EXPECT_TRUE(report.manifest.hosts.contains("mirror"));
  EXPECT_TRUE(report.manifest.hosts.contains("alpha"));
  EXPECT_TRUE(report.manifest.hosts.contains("beta"));
}

TEST(ManifestTest, ForeachLiteralListMultipliesEffects) {
  AnalysisReport report =
      Analyze("foreach s {a b c} { clone mirror }\n", AgentOptions());
  EXPECT_EQ(report.manifest.clone_bound, 3);
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnboundedItinerary));
}

TEST(ManifestTest, WhileLoopMakesMovementUnbounded) {
  AnalysisReport report =
      Analyze("while {1} { if {1} { move relay } }\n", AgentOptions());
  EXPECT_EQ(report.manifest.hop_bound, kUnboundedEffect);
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnboundedItinerary));
  // Advisory only: a note, not a warning or error.
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_GE(report.note_count(), 1u);
}

TEST(ManifestTest, ForeachOverComputedListIsUnbounded) {
  AnalysisReport report = Analyze(
      "foreach s [bc_list ITINERARY] { if {1} { jump $s } }\n", AgentOptions());
  EXPECT_EQ(report.manifest.hop_bound, kUnboundedEffect);
  EXPECT_TRUE(report.manifest.dynamic_targets);  // jump target is computed.
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnboundedItinerary));
}

TEST(ManifestTest, ProcForwardingResolvesLiteralArguments) {
  const char* script =
      "proc go {h} { move $h }\n"
      "go siteB\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  EXPECT_TRUE(report.manifest.hosts.contains("siteB"))
      << report.manifest.ToJson();
  EXPECT_EQ(report.manifest.hop_bound, 1);
  EXPECT_FALSE(report.manifest.dynamic_targets);
  // The back-compat capability view sees the forwarded host too.
  EXPECT_TRUE(report.capabilities.hosts.contains("siteB"));
}

TEST(ManifestTest, ProcCalledFromLoopScalesEffects) {
  const char* script =
      "proc go {h} { move $h }\n"
      "foreach h {a b} { go $h }\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  // Two call sites' worth of hops; the computed argument is dynamic.
  EXPECT_EQ(report.manifest.hop_bound, 2);
  EXPECT_TRUE(report.manifest.dynamic_targets);
}

TEST(ManifestTest, UncalledProcContributesNoCounts) {
  AnalysisReport report =
      Analyze("proc never {} { move siteX }\nbc_put RESULT ok\n", AgentOptions());
  // Numeric effects are per-call-site: a proc nobody calls adds no hops.
  EXPECT_EQ(report.manifest.hop_bound, 0);
  // Literal names are collected script-wide (a sound superset): the dead
  // proc's destination still shows up in the host set.
  EXPECT_TRUE(report.manifest.hosts.contains("siteX"));
}

TEST(ManifestTest, LiteralSpendIsSummed) {
  const char* script =
      "bc_get RECEIPT\n"
      "pay 5 vendor\n"
      "pay 3 vendor\n"
      "withdraw 2\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  EXPECT_EQ(report.manifest.spend_bound, 10);
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnboundedSpend));
  EXPECT_FALSE(HasDiagnostic(report, kDiagUncheckedReceipt));
}

TEST(ManifestTest, NonLiteralSpendIsUnbounded) {
  AnalysisReport report =
      Analyze("set n [bc_get PRICE]\npay $n vendor\n", AgentOptions());
  EXPECT_EQ(report.manifest.spend_bound, kUnboundedEffect);
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnboundedSpend));
}

TEST(ManifestTest, PayWithoutReceiptReadIsNoted) {
  AnalysisReport report = Analyze("pay 5 vendor\n", AgentOptions());
  EXPECT_TRUE(HasDiagnostic(report, kDiagUncheckedReceipt, 1));
  EXPECT_TRUE(report.ok());
}

TEST(ManifestTest, MeetFolderListIsReadAndWritten) {
  AnalysisReport report =
      Analyze("meet broker {QUERY RESULT}\n", AgentOptions());
  const EffectManifest& m = report.manifest;
  EXPECT_TRUE(m.agents_met.contains("broker"));
  EXPECT_TRUE(m.folders_read.contains("QUERY"));
  EXPECT_TRUE(m.folders_written.contains("QUERY"));
  EXPECT_TRUE(m.folders_read.contains("RESULT"));
  EXPECT_TRUE(m.folders_written.contains("RESULT"));
}

TEST(ManifestTest, TaintFlowsFromSensitiveReadToMovement) {
  const char* script =
      "set route [bc_get SECRET_ROUTE]\n"
      "set hop $route\n"
      "move $hop\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  EXPECT_TRUE(report.manifest.reads_sensitive);
  EXPECT_TRUE(report.manifest.exfiltration_risk);
  EXPECT_TRUE(HasDiagnostic(report, kDiagExfiltrationRisk, 3));
  EXPECT_TRUE(report.manifest.dynamic_targets);
  EXPECT_TRUE(report.ok());  // Still a note, not an error.
}

TEST(ManifestTest, SendingSensitiveFolderIsDirectRisk) {
  AnalysisReport report =
      Analyze("send hub collector SECRET_KEYS\n", AgentOptions());
  EXPECT_TRUE(report.manifest.exfiltration_risk);
  EXPECT_TRUE(HasDiagnostic(report, kDiagExfiltrationRisk, 1));
}

TEST(ManifestTest, NonSensitiveFlowsAreNotFlagged) {
  const char* script =
      "set next [bc_pop ITINERARY]\n"
      "jump $next\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  EXPECT_FALSE(report.manifest.exfiltration_risk);
  EXPECT_FALSE(report.manifest.reads_sensitive);
  EXPECT_FALSE(HasDiagnostic(report, kDiagExfiltrationRisk));
}

TEST(ManifestTest, ToJsonIsCanonical) {
  AnalysisReport a = Analyze("bc_get B\nbc_get A\nmove x\n", AgentOptions());
  AnalysisReport b = Analyze("bc_get A\nbc_get B\nmove x\n", AgentOptions());
  // Same effects in a different order produce identical bytes.
  EXPECT_EQ(a.manifest.ToJson(), b.manifest.ToJson());
  EXPECT_NE(a.manifest.ToJson().find("\"hop_bound\":1"), std::string::npos);
  AnalysisReport c = Analyze("while {1} { if {1} { move x } }\n", AgentOptions());
  EXPECT_NE(c.manifest.ToJson().find("\"hop_bound\":\"unbounded\""),
            std::string::npos);
}

// --- Manifest soundness cross-check -------------------------------------------------

TEST(ManifestViolationsTest, RecordInsideManifestIsClean) {
  EffectManifest m;
  m.folders_read.insert("QUERY");
  m.folders_written.insert("RESULT");
  m.hosts.insert("alpha");
  m.hop_bound = 2;
  EffectRecord r;
  r.folders_read.insert("QUERY");
  r.hosts.insert("alpha");
  r.hops = 1;
  EXPECT_TRUE(ManifestViolations(m, r).empty());
}

TEST(ManifestViolationsTest, UndeclaredTargetsAndExceededBoundsReported) {
  EffectManifest m;
  m.hop_bound = 1;
  EffectRecord r;
  r.hosts.insert("elsewhere");
  r.hops = 2;
  r.spend = 1;
  std::vector<std::string> violations = ManifestViolations(m, r);
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_NE(violations[0].find("elsewhere"), std::string::npos);
}

TEST(ManifestViolationsTest, UnboundedAdmitsAnyCount) {
  EffectManifest m;
  m.hop_bound = kUnboundedEffect;
  EffectRecord r;
  r.hops = 1000;
  EXPECT_TRUE(ManifestViolations(m, r).empty());
}

}  // namespace
}  // namespace tacoma::tacl
