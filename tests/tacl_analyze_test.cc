#include "tacl/analyze.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/kernel.h"

namespace tacoma::tacl {
namespace {

// Agent-shaped analysis: builtins plus the agent primitives, like a Place
// admission check at a site with no extra modules installed.
AnalyzerOptions AgentOptions() {
  AnalyzerOptions options;
  options.signatures = BuiltinCommandSignatures();
  for (const auto& [name, sig] : AgentPrimitiveSignatures()) {
    options.signatures.emplace(name, sig);
  }
  return options;
}

bool HasDiagnostic(const AnalysisReport& report, std::string_view code,
                   size_t line = 0) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code && (line == 0 || d.line == line)) {
      return true;
    }
  }
  return false;
}

// --- Parse errors -----------------------------------------------------------------

TEST(AnalyzeTest, ParseErrorReportedWithLine) {
  AnalysisReport report = Analyze("set a 1\nset b {unclosed\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, kDiagParseError));
  ASSERT_EQ(report.error_count(), 1u);
  EXPECT_GE(report.diagnostics[0].line, 2u);
}

TEST(AnalyzeTest, CleanScriptHasNoDiagnostics) {
  AnalysisReport report = Analyze("set a 1\nset b [expr {$a + 1}]\nputs $b\n");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty());
  // Three top-level commands plus the [expr ...] substitution script.
  EXPECT_EQ(report.commands_analyzed, 4u);
}

// --- Unknown commands ----------------------------------------------------------

TEST(AnalyzeTest, UnknownCommandFlaggedWithLine) {
  AnalysisReport report = Analyze("set a 1\nfrobnicate $a\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnknownCommand, 2));
}

TEST(AnalyzeTest, UnknownCommandInsideBodyAndSubstitution) {
  AnalysisReport inside_body = Analyze("if {1} {\n  frobnicate\n}\n");
  EXPECT_TRUE(HasDiagnostic(inside_body, kDiagUnknownCommand, 2));

  AnalysisReport inside_subst = Analyze("puts \"x [frobnicate] y\"\n");
  EXPECT_TRUE(HasDiagnostic(inside_subst, kDiagUnknownCommand, 1));
}

TEST(AnalyzeTest, ScriptProcsAreKnownCommands) {
  AnalysisReport report = Analyze("proc greet {who} { puts $who }\ngreet world\n");
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AnalyzeTest, ProcDefinedInNestedBodyIsKnown) {
  AnalysisReport report =
      Analyze("if {1} {\n  proc helper {} { puts hi }\n}\nhelper\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnknownCommand));
}

TEST(AnalyzeTest, KnownCommandsOptionAccepted) {
  AnalyzerOptions options;
  options.known_commands.insert("wx_scan");
  AnalysisReport report = Analyze("wx_scan 20 extra args accepted", options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AnalyzeTest, ComputedCommandNamesAreNotFlagged) {
  AnalysisReport report = Analyze("set op puts\n$op hello\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnknownCommand));
}

// --- Arity ----------------------------------------------------------------------

TEST(AnalyzeTest, BuiltinArityChecked) {
  EXPECT_TRUE(HasDiagnostic(Analyze("lindex onlyonearg\n"), kDiagBadArity, 1));
  EXPECT_TRUE(HasDiagnostic(Analyze("set a b c d\n"), kDiagBadArity, 1));
  EXPECT_TRUE(HasDiagnostic(Analyze("while {1}\n"), kDiagBadArity, 1));
  EXPECT_FALSE(HasDiagnostic(Analyze("set a 1\n"), kDiagBadArity));
}

TEST(AnalyzeTest, AgentPrimitiveArityChecked) {
  AnalysisReport report = Analyze("bc_get\n", AgentOptions());
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 1));
  AnalysisReport ok = Analyze("bc_put RESULT 42\n", AgentOptions());
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(AnalyzeTest, ProcArityChecked) {
  const char* script =
      "proc add {a b} { expr {$a + $b} }\n"
      "add 1\n"
      "add 1 2\n"
      "add 1 2 3\n";
  AnalysisReport report = Analyze(script);
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 2));
  EXPECT_FALSE(HasDiagnostic(report, kDiagBadArity, 3));
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 4));
}

TEST(AnalyzeTest, ProcDefaultsAndVarargsRespected) {
  const char* script =
      "proc greet {name {greeting hello} args} { puts \"$greeting $name\" }\n"
      "greet\n"
      "greet bob\n"
      "greet bob hi extra more\n";
  AnalysisReport report = Analyze(script);
  EXPECT_TRUE(HasDiagnostic(report, kDiagBadArity, 2));
  EXPECT_FALSE(HasDiagnostic(report, kDiagBadArity, 3));
  EXPECT_FALSE(HasDiagnostic(report, kDiagBadArity, 4));
}

// --- Unset variables --------------------------------------------------------------

TEST(AnalyzeTest, UnsetVariableWarned) {
  AnalysisReport report = Analyze("puts $never_set\n");
  EXPECT_TRUE(report.ok());  // Warning, not error.
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnsetVariable, 1));
}

TEST(AnalyzeTest, DefinitionAnywhereInScopeCounts) {
  // Flow-insensitive by design: a set later in the scope suppresses the
  // warning (the read may be guarded by briefcase state).
  AnalysisReport report = Analyze("if {[info level] == 0} { puts $x }\nset x 1\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable));
}

TEST(AnalyzeTest, LoopAndAssignCommandsDefine) {
  const char* script =
      "foreach {a b} {1 2 3 4} { puts \"$a $b\" }\n"
      "lassign {1 2} p q\n"
      "incr counter\n"
      "append buffer x\n"
      "catch {error boom} msg\n"
      "puts \"$p $q $counter $buffer $msg\"\n";
  AnalysisReport report = Analyze(script);
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable)) << report.ToString();
}

TEST(AnalyzeTest, ProcBodiesAreTheirOwnScope) {
  // `top` is set at top level but proc bodies do not see it without global.
  AnalysisReport local_only =
      Analyze("set top 1\nproc uses_local {} { puts $top }\n");
  EXPECT_TRUE(HasDiagnostic(local_only, kDiagUnsetVariable, 2));

  // A `global` declaration suppresses the warning.  (Collection is
  // script-wide and conservative: any `global top` anywhere would.)
  AnalysisReport with_global =
      Analyze("set top 1\nproc uses_global {} { global top\nputs $top }\n");
  EXPECT_FALSE(HasDiagnostic(with_global, kDiagUnsetVariable))
      << with_global.ToString();
}

TEST(AnalyzeTest, ProcParamsAreDefined) {
  AnalysisReport report =
      Analyze("proc area {w {h 1}} { expr {$w * $h} }\narea 3 4\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable)) << report.ToString();
}

TEST(AnalyzeTest, ConditionReadsAreTracked) {
  AnalysisReport report = Analyze("while {$missing < 3} { puts x }\n");
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnsetVariable, 1));
}

TEST(AnalyzeTest, DynamicVariableNamesSuppressUnsetWarnings) {
  AnalysisReport report = Analyze("set name x\nset $name 5\nputs $x\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable));
}

TEST(AnalyzeTest, InfoExistsGuardSuppressesWarning) {
  AnalysisReport report =
      Analyze("if {[info exists maybe]} { puts $maybe }\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnsetVariable)) << report.ToString();
}

// --- Unreachable code -------------------------------------------------------------

TEST(AnalyzeTest, UnreachableAfterReturn) {
  AnalysisReport report = Analyze("set a 1\nreturn $a\nputs dead\n");
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnreachable, 3));
}

TEST(AnalyzeTest, UnreachableAfterBreakInLoopBody) {
  AnalysisReport report =
      Analyze("while {1} {\n  break\n  puts dead\n}\n");
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnreachable, 3));
}

TEST(AnalyzeTest, UnreachableAfterErrorAndJump) {
  EXPECT_TRUE(HasDiagnostic(Analyze("error boom\nputs dead\n"), kDiagUnreachable, 2));
  AnalysisReport report = Analyze("jump elsewhere\nputs dead\n", AgentOptions());
  EXPECT_TRUE(HasDiagnostic(report, kDiagUnreachable, 2));
}

TEST(AnalyzeTest, ConditionalReturnDoesNotMarkUnreachable) {
  AnalysisReport report = Analyze("if {1} { return }\nputs alive\n");
  EXPECT_FALSE(HasDiagnostic(report, kDiagUnreachable));
}

// --- Capability extraction ---------------------------------------------------------

TEST(AnalyzeTest, CapabilitiesExtracted) {
  const char* script =
      "bc_put RESULT 42\n"
      "bc_get QUERY\n"
      "cab_append ledger AUDITS x\n"
      "meet broker\n"
      "send hub courier_target DATA\n"
      "if {1} { jump observatory } else { move office }\n"
      "clone mirror\n";
  AnalysisReport report = Analyze(script, AgentOptions());
  const CapabilitySummary& caps = report.capabilities;
  EXPECT_TRUE(caps.briefcase_folders.contains("RESULT"));
  EXPECT_TRUE(caps.briefcase_folders.contains("QUERY"));
  EXPECT_TRUE(caps.cabinets.contains("ledger"));
  EXPECT_TRUE(caps.agents_met.contains("broker"));
  EXPECT_TRUE(caps.agents_met.contains("courier_target"));
  EXPECT_TRUE(caps.hosts.contains("observatory"));
  EXPECT_TRUE(caps.hosts.contains("office"));
  EXPECT_TRUE(caps.hosts.contains("hub"));
  EXPECT_TRUE(caps.hosts.contains("mirror"));
  EXPECT_FALSE(caps.dynamic_targets);
}

TEST(AnalyzeTest, DynamicTargetsAreFlagged) {
  AnalysisReport report =
      Analyze("set next [bc_pop ITINERARY]\njump $next\n", AgentOptions());
  EXPECT_TRUE(report.capabilities.dynamic_targets);
  EXPECT_TRUE(report.capabilities.briefcase_folders.contains("ITINERARY"));
}

// --- Report formatting -------------------------------------------------------------

TEST(AnalyzeTest, ToStringIsLineNumberedAndNamed) {
  AnalysisReport report = Analyze("frobnicate\n");
  std::string rendered = report.ToString("agent.tacl");
  EXPECT_NE(rendered.find("agent.tacl:1: error: unknown command \"frobnicate\""),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("[unknown-command]"), std::string::npos);
  EXPECT_NE(report.FirstError().find("line 1"), std::string::npos);
}

// --- Shipped example agents lint clean ----------------------------------------------

TEST(AnalyzeTest, ExampleAgentScriptsLintClean) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(TACOMA_SOURCE_DIR) / "examples" / "agents";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".tacl") {
      continue;
    }
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    AnalysisReport report = Analyze(buffer.str(), AgentOptions());
    EXPECT_TRUE(report.ok() && report.warning_count() == 0)
        << entry.path() << ":\n"
        << report.ToString(entry.path().filename().string());
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

}  // namespace
}  // namespace tacoma::tacl
