#include <gtest/gtest.h>

#include "tacl/interp.h"
#include "util/rng.h"

namespace tacoma::tacl {
namespace {

// Table-driven coverage of the expression grammar.
struct ExprCase {
  const char* expression;
  const char* expected;
};

class ExprTableTest : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprTableTest, Evaluates) {
  Interp interp;
  Outcome out = EvalExpr(interp, GetParam().expression);
  EXPECT_EQ(out.code, Code::kOk) << GetParam().expression << " -> " << out.value;
  EXPECT_EQ(out.value, GetParam().expected) << GetParam().expression;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprTableTest,
    ::testing::Values(ExprCase{"1 + 2", "3"}, ExprCase{"7 - 10", "-3"},
                      ExprCase{"6 * 7", "42"}, ExprCase{"7 / 2", "3"},
                      ExprCase{"7 % 3", "1"}, ExprCase{"2 + 3 * 4", "14"},
                      ExprCase{"(2 + 3) * 4", "20"}, ExprCase{"-5 + 2", "-3"},
                      ExprCase{"--5", "5"}, ExprCase{"+7", "7"},
                      ExprCase{"1 + 2.5", "3.5"}, ExprCase{"5.0 / 2", "2.5"},
                      ExprCase{"10 / 4.0", "2.5"}, ExprCase{"2.0 * 3", "6.0"},
                      ExprCase{"0x10 + 1", "17"}, ExprCase{"1e2 + 1", "101.0"}));

INSTANTIATE_TEST_SUITE_P(
    Comparison, ExprTableTest,
    ::testing::Values(ExprCase{"1 < 2", "1"}, ExprCase{"2 < 1", "0"},
                      ExprCase{"2 <= 2", "1"}, ExprCase{"3 > 2", "1"},
                      ExprCase{"2 >= 3", "0"}, ExprCase{"2 == 2.0", "1"},
                      ExprCase{"2 != 3", "1"}, ExprCase{"\"abc\" eq \"abc\"", "1"},
                      ExprCase{"\"abc\" ne \"abd\"", "1"},
                      ExprCase{"\"10\" == 10", "1"},   // Numeric when both numeric.
                      ExprCase{"\"abc\" < \"abd\"", "1"},  // String compare.
                      ExprCase{"\"2\" eq \"2.0\"", "0"}));  // eq is always textual.

INSTANTIATE_TEST_SUITE_P(
    Logical, ExprTableTest,
    ::testing::Values(ExprCase{"1 && 1", "1"}, ExprCase{"1 && 0", "0"},
                      ExprCase{"0 || 1", "1"}, ExprCase{"0 || 0", "0"},
                      ExprCase{"!0", "1"}, ExprCase{"!5", "0"},
                      ExprCase{"!!7", "1"}, ExprCase{"true && yes", "1"},
                      ExprCase{"false || off", "0"},
                      ExprCase{"1 < 2 && 2 < 3", "1"}));

INSTANTIATE_TEST_SUITE_P(
    Bitwise, ExprTableTest,
    ::testing::Values(ExprCase{"5 & 3", "1"}, ExprCase{"5 | 3", "7"},
                      ExprCase{"5 ^ 3", "6"}, ExprCase{"~0", "-1"},
                      ExprCase{"1 << 10", "1024"}, ExprCase{"1024 >> 3", "128"},
                      ExprCase{"-8 >> 1", "-4"}));

INSTANTIATE_TEST_SUITE_P(
    Ternary, ExprTableTest,
    ::testing::Values(ExprCase{"1 ? 10 : 20", "10"}, ExprCase{"0 ? 10 : 20", "20"},
                      ExprCase{"2 > 1 ? \"yes\" : \"no\"", "yes"},
                      ExprCase{"0 ? 1 : 0 ? 2 : 3", "3"}));

INSTANTIATE_TEST_SUITE_P(
    Functions, ExprTableTest,
    ::testing::Values(ExprCase{"abs(-5)", "5"}, ExprCase{"abs(2.5)", "2.5"},
                      ExprCase{"int(3.9)", "3"}, ExprCase{"round(3.5)", "4"},
                      ExprCase{"round(-3.5)", "-4"}, ExprCase{"double(2)", "2.0"},
                      ExprCase{"sqrt(16)", "4.0"}, ExprCase{"pow(2, 10)", "1024.0"},
                      ExprCase{"floor(2.7)", "2.0"}, ExprCase{"ceil(2.1)", "3.0"},
                      ExprCase{"min(3, 1, 2)", "1"}, ExprCase{"max(3, 1, 2)", "3"},
                      ExprCase{"min(1.5, 2)", "1.5"},
                      ExprCase{"fmod(7.5, 2.0)", "1.5"},
                      ExprCase{"abs(min(-3, 2))", "3"}));

class ExprErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprErrorTest, Fails) {
  Interp interp;
  Outcome out = EvalExpr(interp, GetParam());
  EXPECT_EQ(out.code, Code::kError) << GetParam() << " -> " << out.value;
}

INSTANTIATE_TEST_SUITE_P(
    Errors, ExprErrorTest,
    ::testing::Values("1 / 0", "5 % 0", "1 +", "* 3", "(1 + 2", "1 + abc",
                      "sqrt(-1)", "log(0)", "unknownfunc(1)", "1.5 & 2",
                      "~2.5", "1 ? 2", "fmod(1, 0)", "$missing + 1", ""));

TEST(ExprInterpTest, VariableSubstitution) {
  Interp interp;
  interp.SetVar("a", "6");
  interp.SetVar("b", "7");
  Outcome out = EvalExpr(interp, "$a * $b");
  EXPECT_EQ(out.value, "42");
}

TEST(ExprInterpTest, BracedVariableName) {
  Interp interp;
  interp.SetVar("odd name", "5");
  EXPECT_EQ(EvalExpr(interp, "${odd name} + 1").value, "6");
}

TEST(ExprInterpTest, CommandSubstitution) {
  Interp interp;
  Outcome out = EvalExpr(interp, "[expr {2 + 2}] * 3");
  EXPECT_EQ(out.value, "12");
}

TEST(ExprInterpTest, ShortCircuitAndSkipsSideEffects) {
  Interp interp;
  interp.SetVar("fired", "0");
  Outcome out = EvalExpr(interp, "0 && [set fired 1]");
  EXPECT_EQ(out.code, Code::kOk);
  EXPECT_EQ(out.value, "0");
  EXPECT_EQ(*interp.GetVar("fired"), "0");
}

TEST(ExprInterpTest, ShortCircuitOrSkipsSideEffects) {
  Interp interp;
  interp.SetVar("fired", "0");
  Outcome out = EvalExpr(interp, "1 || [set fired 1]");
  EXPECT_EQ(out.value, "1");
  EXPECT_EQ(*interp.GetVar("fired"), "0");
}

TEST(ExprInterpTest, TernaryOnlyEvaluatesTakenArm) {
  Interp interp;
  interp.SetVar("fired", "0");
  Outcome out = EvalExpr(interp, "1 ? 5 : [set fired 1]");
  EXPECT_EQ(out.value, "5");
  EXPECT_EQ(*interp.GetVar("fired"), "0");
  // Errors in dead arms are also skipped.
  out = EvalExpr(interp, "0 ? [error dead] : 9");
  EXPECT_EQ(out.code, Code::kOk);
  EXPECT_EQ(out.value, "9");
}

TEST(ExprInterpTest, ShortCircuitSkipsErrors) {
  Interp interp;
  Outcome out = EvalExpr(interp, "0 && [error never]");
  EXPECT_EQ(out.code, Code::kOk);
  EXPECT_EQ(out.value, "0");
}

TEST(ExprInterpTest, ErrorInLiveCommandSubstitutionPropagates) {
  Interp interp;
  Outcome out = EvalExpr(interp, "1 && [error boom]");
  EXPECT_EQ(out.code, Code::kError);
}

TEST(ExprInterpTest, StringVariablesCoerceWhenNumeric) {
  Interp interp;
  interp.SetVar("n", "  12 ");
  EXPECT_EQ(EvalExpr(interp, "$n + 1").value, "13");
}

TEST(ExprInterpTest, BracedStringLiteral) {
  Interp interp;
  EXPECT_EQ(EvalExpr(interp, "{abc} eq {abc}").value, "1");
}

TEST(ExprInterpTest, ChainedComparisons) {
  Interp interp;
  // (1 < 2) yields 1, then 1 < 3 yields 1.
  EXPECT_EQ(EvalExpr(interp, "1 < 2 < 3").value, "1");
}

TEST(ExprInterpTest, DeepNesting) {
  Interp interp;
  EXPECT_EQ(EvalExpr(interp, "((((((1 + 1))))))").value, "2");
}

TEST(ExprInterpTest, WhitespaceInsensitive) {
  Interp interp;
  EXPECT_EQ(EvalExpr(interp, "  1+2 *  3 ").value, "7");
}

// --- Differential property test: random integer expressions ------------------

// Builds a random arithmetic expression tree, rendering it to TACL syntax
// while computing the expected value with C++ integer semantics.  Division
// and modulo by values that could be zero are avoided at generation time
// (both languages trap them, tested separately).
namespace differential {

struct Node {
  std::string text;
  int64_t value;
};

Node Generate(tacoma::Rng* rng, int depth) {
  if (depth == 0 || rng->Bernoulli(0.3)) {
    int64_t v = rng->UniformInt(-50, 50);
    if (v < 0) {
      // Parenthesize negatives so unary minus composes under any operator.
      return {"(0 - " + std::to_string(-v) + ")", v};
    }
    return {std::to_string(v), v};
  }
  Node lhs = Generate(rng, depth - 1);
  Node rhs = Generate(rng, depth - 1);
  switch (rng->Uniform(6)) {
    case 0:
      return {"(" + lhs.text + " + " + rhs.text + ")", lhs.value + rhs.value};
    case 1:
      return {"(" + lhs.text + " - " + rhs.text + ")", lhs.value - rhs.value};
    case 2:
      return {"(" + lhs.text + " * " + rhs.text + ")", lhs.value * rhs.value};
    case 3: {
      // Guard the divisor away from zero.
      int64_t d = rhs.value == 0 ? 7 : rhs.value;
      std::string divisor = rhs.value == 0 ? "7" : rhs.text;
      return {"(" + lhs.text + " / " + divisor + ")", lhs.value / d};
    }
    case 4:
      return {"(" + lhs.text + " < " + rhs.text + ")",
              lhs.value < rhs.value ? 1 : 0};
    default:
      return {"(" + lhs.text + " == " + rhs.text + ")",
              lhs.value == rhs.value ? 1 : 0};
  }
}

}  // namespace differential

class ExprDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ExprDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24));

TEST_P(ExprDifferentialTest, RandomTreesMatchCppSemantics) {
  tacoma::Rng rng(GetParam());
  Interp interp;
  for (int i = 0; i < 40; ++i) {
    differential::Node node = differential::Generate(&rng, 4);
    Outcome out = EvalExpr(interp, node.text);
    ASSERT_EQ(out.code, Code::kOk) << node.text << " -> " << out.value;
    EXPECT_EQ(out.value, std::to_string(node.value)) << node.text;
  }
}

}  // namespace
}  // namespace tacoma::tacl
