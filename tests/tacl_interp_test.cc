#include "tacl/interp.h"

#include <gtest/gtest.h>

namespace tacoma::tacl {
namespace {

class InterpTest : public ::testing::Test {
 protected:
  // Evaluates and expects success, returning the result string.
  std::string Run(const std::string& script) {
    Outcome out = interp_.Eval(script);
    EXPECT_EQ(out.code, Code::kOk) << script << " -> " << out.value;
    return out.value;
  }
  // Evaluates and expects an error, returning the message.
  std::string RunError(const std::string& script) {
    Outcome out = interp_.Eval(script);
    EXPECT_EQ(out.code, Code::kError) << script << " -> " << out.value;
    return out.value;
  }

  Interp interp_;
};

// --- Variables ------------------------------------------------------------------

TEST_F(InterpTest, SetAndGet) {
  EXPECT_EQ(Run("set a 5"), "5");
  EXPECT_EQ(Run("set a"), "5");
  EXPECT_EQ(Run("set b $a"), "5");
}

TEST_F(InterpTest, ReadingUnsetVariableFails) {
  EXPECT_NE(RunError("set x $nope").find("no such variable"), std::string::npos);
}

TEST_F(InterpTest, UnsetRemoves) {
  Run("set a 1");
  Run("unset a");
  RunError("set b $a");
}

TEST_F(InterpTest, IncrCreatesAndSteps) {
  EXPECT_EQ(Run("incr counter"), "1");
  EXPECT_EQ(Run("incr counter"), "2");
  EXPECT_EQ(Run("incr counter 10"), "12");
  EXPECT_EQ(Run("incr counter -12"), "0");
}

TEST_F(InterpTest, IncrRejectsNonInteger) {
  Run("set s hello");
  RunError("incr s");
}

TEST_F(InterpTest, AppendBuildsStrings) {
  EXPECT_EQ(Run("append s a b c"), "abc");
  EXPECT_EQ(Run("append s d"), "abcd");
}

// --- Substitution ----------------------------------------------------------------

TEST_F(InterpTest, CommandSubstitution) {
  EXPECT_EQ(Run("set a [expr {2 + 3}]"), "5");
}

TEST_F(InterpTest, NestedSubstitution) {
  Run("set inner 7");
  EXPECT_EQ(Run("set x [expr {[set inner] * 2}]"), "14");
}

TEST_F(InterpTest, QuotedSubstitution) {
  Run("set who world");
  EXPECT_EQ(Run("set msg \"hello $who\""), "hello world");
}

TEST_F(InterpTest, BracesPreventSubstitution) {
  EXPECT_EQ(Run("set x {$not a var}"), "$not a var");
}

TEST_F(InterpTest, ErrorInsideSubstitutionPropagates) {
  RunError("set x [error boom]");
}

// --- Control flow ---------------------------------------------------------------------

TEST_F(InterpTest, IfTrueBranch) {
  EXPECT_EQ(Run("if {1} {set r yes} else {set r no}"), "yes");
}

TEST_F(InterpTest, IfFalseBranch) {
  EXPECT_EQ(Run("if {0} {set r yes} else {set r no}"), "no");
}

TEST_F(InterpTest, IfElseif) {
  Run("set v 2");
  EXPECT_EQ(Run("if {$v == 1} {set r a} elseif {$v == 2} {set r b} else {set r c}"),
            "b");
}

TEST_F(InterpTest, IfWithThenKeyword) {
  EXPECT_EQ(Run("if {1} then {set r ok}"), "ok");
}

TEST_F(InterpTest, IfNoElseFalseIsEmpty) {
  EXPECT_EQ(Run("if {0} {set r x}"), "");
}

TEST_F(InterpTest, WhileLoops) {
  EXPECT_EQ(Run("set s 0; set i 0; while {$i < 10} {incr s $i; incr i}; set s"), "45");
}

TEST_F(InterpTest, WhileBreak) {
  EXPECT_EQ(Run("set i 0; while {1} {incr i; if {$i >= 3} {break}}; set i"), "3");
}

TEST_F(InterpTest, WhileContinue) {
  EXPECT_EQ(
      Run("set s 0; set i 0; while {$i < 10} {incr i; if {$i % 2} {continue}; "
          "incr s $i}; set s"),
      "30");  // 2+4+6+8+10
}

TEST_F(InterpTest, ForLoop) {
  EXPECT_EQ(Run("set s 0; for {set i 1} {$i <= 5} {incr i} {incr s $i}; set s"), "15");
}

TEST_F(InterpTest, ForeachSingleVar) {
  EXPECT_EQ(Run("set s {}; foreach x {c b a} {set s $x$s}; set s"), "abc");
}

TEST_F(InterpTest, ForeachMultipleVars) {
  EXPECT_EQ(Run("set out {}; foreach {k v} {a 1 b 2} {lappend out $k=$v}; set out"),
            "a=1 b=2");
}

TEST_F(InterpTest, ForeachBreakAndContinue) {
  EXPECT_EQ(Run("set n 0; foreach x {1 2 3 4 5} {if {$x == 4} {break}; incr n}; set n"),
            "3");
}

TEST_F(InterpTest, BreakOutsideLoopIsError) {
  RunError("break");
  RunError("proc f {} {break}; f");
}

// --- Procs ---------------------------------------------------------------------------

TEST_F(InterpTest, SimpleProc) {
  Run("proc add {a b} {return [expr {$a + $b}]}");
  EXPECT_EQ(Run("add 3 4"), "7");
}

TEST_F(InterpTest, ProcImplicitResult) {
  Run("proc last {} {set x 1; set y 2}");
  EXPECT_EQ(Run("last"), "2");
}

TEST_F(InterpTest, ProcDefaultArguments) {
  Run("proc greet {name {greeting hello}} {return \"$greeting $name\"}");
  EXPECT_EQ(Run("greet bob"), "hello bob");
  EXPECT_EQ(Run("greet bob hi"), "hi bob");
}

TEST_F(InterpTest, ProcVarargs) {
  Run("proc count {first args} {return [llength $args]}");
  EXPECT_EQ(Run("count a b c d"), "3");
  EXPECT_EQ(Run("count a"), "0");
}

TEST_F(InterpTest, ProcWrongArity) {
  Run("proc two {a b} {}");
  RunError("two 1");
  RunError("two 1 2 3");
}

TEST_F(InterpTest, ProcLocalScope) {
  Run("set x global");
  Run("proc touch {} {set x local}");
  Run("touch");
  EXPECT_EQ(Run("set x"), "global");
}

TEST_F(InterpTest, GlobalCommandLinks) {
  Run("set counter 10");
  Run("proc bump {} {global counter; incr counter}");
  Run("bump");
  Run("bump");
  EXPECT_EQ(Run("set counter"), "12");
}

TEST_F(InterpTest, UpvarPassByName) {
  Run("proc bump {varName} {upvar $varName v; incr v}");
  Run("set counter 10");
  Run("bump counter");
  Run("bump counter");
  EXPECT_EQ(Run("set counter"), "12");
}

TEST_F(InterpTest, UpvarTwoLevels) {
  Run("proc inner {} {upvar 2 x v; set v changed}");
  Run("proc outer {} {inner}");
  Run("set x original");
  Run("outer");
  EXPECT_EQ(Run("set x"), "changed");
}

TEST_F(InterpTest, UpvarHashZeroIsGlobal) {
  Run("proc deep {} {upvar #0 g v; set v from-deep}");
  Run("proc mid {} {deep}");
  Run("set g start");
  Run("mid");
  EXPECT_EQ(Run("set g"), "from-deep");
}

TEST_F(InterpTest, UpvarMultiplePairs) {
  Run("proc swap {aName bName} {"
      "upvar $aName a $bName b; set t $a; set a $b; set b $t}");
  Run("set x 1; set y 2");
  Run("swap x y");
  EXPECT_EQ(Run("set x"), "2");
  EXPECT_EQ(Run("set y"), "1");
}

TEST_F(InterpTest, UpvarCreatesInCallerOnWrite) {
  Run("proc create {name} {upvar $name v; set v made}");
  Run("create fresh");
  EXPECT_EQ(Run("set fresh"), "made");
}

TEST_F(InterpTest, UpvarBadLevelErrors) {
  Run("proc f {} {upvar 5 x v; set v 1}");
  RunError("f");
  // No caller frame exists at global scope.
  RunError("upvar x v");
}

TEST_F(InterpTest, RecursiveProc) {
  Run("proc fib {n} {if {$n < 2} {return $n}; "
      "return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}]}");
  EXPECT_EQ(Run("fib 10"), "55");
}

TEST_F(InterpTest, InfiniteRecursionCaught) {
  Run("proc loop {} {loop}");
  std::string message = RunError("loop");
  EXPECT_NE(message.find("nested"), std::string::npos);
}

TEST_F(InterpTest, ProcRedefinition) {
  Run("proc f {} {return one}");
  Run("proc f {} {return two}");
  EXPECT_EQ(Run("f"), "two");
}

TEST_F(InterpTest, ProcCanRedefineItself) {
  Run("proc f {} {proc f {} {return second}; return first}");
  EXPECT_EQ(Run("f"), "first");
  EXPECT_EQ(Run("f"), "second");
}

// --- Errors and catch ---------------------------------------------------------------

TEST_F(InterpTest, ErrorCommand) {
  EXPECT_EQ(RunError("error \"something broke\""), "something broke");
}

TEST_F(InterpTest, CatchCapturesError) {
  EXPECT_EQ(Run("catch {error oops} msg"), "1");
  EXPECT_EQ(Run("set msg"), "oops");
}

TEST_F(InterpTest, CatchOkReturnsZero) {
  EXPECT_EQ(Run("catch {set a 5} msg"), "0");
  EXPECT_EQ(Run("set msg"), "5");
}

TEST_F(InterpTest, UnknownCommandError) {
  std::string message = RunError("no_such_command");
  EXPECT_NE(message.find("invalid command name"), std::string::npos);
}

TEST_F(InterpTest, ErrorStopsScript) {
  Run("set a before");
  RunError("set a during; error stop; set a after");
  EXPECT_EQ(Run("set a"), "during");
}

// --- Eval, lists, strings (spot checks; heavy coverage in expr/list tests) ------------

TEST_F(InterpTest, EvalConcatenatesArgs) {
  EXPECT_EQ(Run("eval set dynamic 42"), "42");
  EXPECT_EQ(Run("set dynamic"), "42");
}

TEST_F(InterpTest, ListCommands) {
  EXPECT_EQ(Run("list a b {c d}"), "a b {c d}");
  EXPECT_EQ(Run("llength [list a b c]"), "3");
  EXPECT_EQ(Run("lindex {x y z} 1"), "y");
  EXPECT_EQ(Run("lindex {x y z} end"), "z");
  EXPECT_EQ(Run("lindex {x y z} end-1"), "y");
  EXPECT_EQ(Run("lindex {x y z} 99"), "");
  EXPECT_EQ(Run("lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(Run("lreverse {1 2 3}"), "3 2 1");
  EXPECT_EQ(Run("lsearch {a b c} b"), "1");
  EXPECT_EQ(Run("lsearch {a b c} z"), "-1");
  EXPECT_EQ(Run("lsearch -glob {foo bar baz} b*"), "1");
  EXPECT_EQ(Run("lsearch -exact {a* b} a*"), "0");
  EXPECT_EQ(Run("lsort {c a b}"), "a b c");
  EXPECT_EQ(Run("lsort -integer {10 2 33 4}"), "2 4 10 33");
  EXPECT_EQ(Run("lsort -integer -decreasing {10 2 33}"), "33 10 2");
  EXPECT_EQ(Run("concat {a b} {c} {}"), "a b c");
  EXPECT_EQ(Run("join {a b c} -"), "a-b-c");
  EXPECT_EQ(Run("split a,b,,c ,"), "a b {} c");
}

TEST_F(InterpTest, LinsertPositions) {
  EXPECT_EQ(Run("linsert {a c} 1 b"), "a b c");
  EXPECT_EQ(Run("linsert {a b} 0 z"), "z a b");
  EXPECT_EQ(Run("linsert {a b} end c"), "a b c");
  EXPECT_EQ(Run("linsert {a b c} end-1 x"), "a b x c");
  EXPECT_EQ(Run("linsert {a} 99 z"), "a z");  // Clamped.
  EXPECT_EQ(Run("linsert {} 0 only"), "only");
  EXPECT_EQ(Run("linsert {a} 1 x y z"), "a x y z");
}

TEST_F(InterpTest, StringMap) {
  EXPECT_EQ(Run("string map {o 0 e 3} \"hello western\""), "h3ll0 w3st3rn");
  // Earlier mapping pairs win; matched text is consumed (no re-scanning).
  EXPECT_EQ(Run("string map {ab X a Y} aabab"), "YXX");
  EXPECT_EQ(Run("string map {x yy} xx"), "yyyy");
  EXPECT_EQ(Run("string map {} unchanged"), "unchanged");
  RunError("string map {odd} x");
}

TEST_F(InterpTest, LappendBuildsLists) {
  Run("lappend acc one");
  Run("lappend acc {two three}");
  EXPECT_EQ(Run("llength $acc"), "2");
  EXPECT_EQ(Run("lindex $acc 1"), "two three");
}

TEST_F(InterpTest, StringCommands) {
  EXPECT_EQ(Run("string length hello"), "5");
  EXPECT_EQ(Run("string toupper abc"), "ABC");
  EXPECT_EQ(Run("string tolower ABC"), "abc");
  EXPECT_EQ(Run("string trim \"  x  \""), "x");
  EXPECT_EQ(Run("string index hello 1"), "e");
  EXPECT_EQ(Run("string index hello end"), "o");
  EXPECT_EQ(Run("string range hello 1 3"), "ell");
  EXPECT_EQ(Run("string equal a a"), "1");
  EXPECT_EQ(Run("string equal a b"), "0");
  EXPECT_EQ(Run("string compare a b"), "-1");
  EXPECT_EQ(Run("string first ll hello"), "2");
  EXPECT_EQ(Run("string last l hello"), "3");
  EXPECT_EQ(Run("string match {h*o} hello"), "1");
  EXPECT_EQ(Run("string repeat ab 3"), "ababab");
}

TEST_F(InterpTest, FormatCommand) {
  EXPECT_EQ(Run("format %d 42"), "42");
  EXPECT_EQ(Run("format %05d 42"), "00042");
  EXPECT_EQ(Run("format %x 255"), "ff");
  EXPECT_EQ(Run("format %.2f 3.14159"), "3.14");
  EXPECT_EQ(Run("format {%s-%s} a b"), "a-b");
  EXPECT_EQ(Run("format %% "), "%");
  RunError("format %d notanumber");
  RunError("format {%d %d} 1");
}

TEST_F(InterpTest, InfoCommands) {
  EXPECT_EQ(Run("info exists nope"), "0");
  Run("set yes 1");
  EXPECT_EQ(Run("info exists yes"), "1");
  Run("proc myproc {} {}");
  EXPECT_NE(Run("info procs").find("myproc"), std::string::npos);
  EXPECT_NE(Run("info commands").find("while"), std::string::npos);
  EXPECT_EQ(Run("info level"), "0");
  Run("proc depth {} {return [info level]}");
  EXPECT_EQ(Run("depth"), "1");
}

TEST_F(InterpTest, PutsGoesToOutput) {
  std::vector<std::string> lines;
  interp_.set_output([&](const std::string& s) { lines.push_back(s); });
  Run("puts hello; puts -nonewline world");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello");
  EXPECT_EQ(lines[1], "world");
}

// --- Limits & accounting -----------------------------------------------------------

TEST_F(InterpTest, StepLimitHaltsRunawayLoop) {
  interp_.set_step_limit(1000);
  std::string message = RunError("while {1} {set x 1}");
  EXPECT_NE(message.find("step limit"), std::string::npos);
}

TEST_F(InterpTest, StepsAccumulate) {
  uint64_t before = interp_.steps();
  Run("set a 1; set b 2; set c 3");
  EXPECT_EQ(interp_.steps(), before + 3);
}

TEST_F(InterpTest, HostCommandRegistration) {
  interp_.Register("double_it", [](Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 2) {
      return Error("usage");
    }
    return Ok(std::to_string(std::stoi(argv[1]) * 2));
  });
  EXPECT_EQ(Run("double_it 21"), "42");
  EXPECT_TRUE(interp_.HasCommand("double_it"));
  interp_.RemoveCommand("double_it");
  RunError("double_it 21");
}

TEST_F(InterpTest, SwitchExactMatching) {
  Run("set v beta");
  EXPECT_EQ(Run("switch $v alpha {set r 1} beta {set r 2} gamma {set r 3}"), "2");
}

TEST_F(InterpTest, SwitchDefaultClause) {
  EXPECT_EQ(Run("switch zeta {alpha {set r 1} default {set r fallback}}"),
            "fallback");
}

TEST_F(InterpTest, SwitchNoMatchNoDefault) {
  EXPECT_EQ(Run("switch zeta alpha {set r 1}"), "");
}

TEST_F(InterpTest, SwitchGlobMode) {
  EXPECT_EQ(Run("switch -glob sensor42 {sensor* {set r station} default {set r x}}"),
            "station");
}

TEST_F(InterpTest, SwitchFallthroughDash) {
  EXPECT_EQ(Run("switch b {a - b {set r ab} c {set r c}}"), "ab");
}

TEST_F(InterpTest, SwitchBracedFormWithVariables) {
  // Patterns in the braced form are not substituted (they are list elements),
  // but bodies are evaluated normally.
  Run("set x 5");
  EXPECT_EQ(Run("switch 5 {5 {expr {$x * 2}} default {set r no}}"), "10");
}

TEST_F(InterpTest, SwitchOddClausesError) {
  RunError("switch v a");
}

TEST_F(InterpTest, LassignBasic) {
  EXPECT_EQ(Run("lassign {1 2 3 4} a b"), "3 4");
  EXPECT_EQ(Run("set a"), "1");
  EXPECT_EQ(Run("set b"), "2");
}

TEST_F(InterpTest, LassignPadsMissingWithEmpty) {
  EXPECT_EQ(Run("lassign {only} x y z"), "");
  EXPECT_EQ(Run("set x"), "only");
  EXPECT_EQ(Run("set y"), "");
  EXPECT_EQ(Run("set z"), "");
}

TEST_F(InterpTest, ReturnAtTopLevelStopsScript) {
  Outcome out = interp_.Eval("set a 1; return early; set a 2");
  EXPECT_EQ(out.code, Code::kReturn);
  EXPECT_EQ(out.value, "early");
  EXPECT_EQ(Run("set a"), "1");
}

}  // namespace
}  // namespace tacoma::tacl
