#include "tacl/list.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tacoma::tacl {
namespace {

TEST(ListFormatTest, SimpleElements) {
  EXPECT_EQ(FormatList({"a", "b", "c"}), "a b c");
}

TEST(ListFormatTest, EmptyElementsBraced) {
  EXPECT_EQ(FormatList({"", "x"}), "{} x");
}

TEST(ListFormatTest, SpacesBraced) {
  EXPECT_EQ(FormatList({"hello world"}), "{hello world}");
}

TEST(ListParseTest, SimpleList) {
  auto parsed = ParseList("a b c");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ListParseTest, BracedElements) {
  auto parsed = ParseList("{a b} c {d {e f}}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0], "a b");
  EXPECT_EQ((*parsed)[2], "d {e f}");
}

TEST(ListParseTest, QuotedElements) {
  auto parsed = ParseList("\"a b\" c");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], "a b");
}

TEST(ListParseTest, WhitespaceVariants) {
  auto parsed = ParseList("  a\t\tb \n c  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
}

TEST(ListParseTest, EmptyListIsEmpty) {
  auto parsed = ParseList("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
  parsed = ParseList("   ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ListParseTest, UnbalancedBraceFails) {
  EXPECT_FALSE(ParseList("{a b").ok());
}

TEST(ListParseTest, EscapedCharacters) {
  auto parsed = ParseList("a\\ b c");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], "a b");
}

class ListRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ListRoundTripTest, ::testing::Range<uint64_t>(0, 16));

TEST_P(ListRoundTripTest, ArbitraryElementsSurviveFormatParse) {
  Rng rng(GetParam());
  const std::string alphabet = "ab {}$[]\";\\\n\tc";
  std::vector<std::string> original;
  size_t count = rng.Uniform(8);
  for (size_t i = 0; i < count; ++i) {
    std::string element;
    size_t len = rng.Uniform(12);
    for (size_t k = 0; k < len; ++k) {
      element.push_back(alphabet[rng.Uniform(alphabet.size())]);
    }
    original.push_back(element);
  }
  auto parsed = ParseList(FormatList(original));
  ASSERT_TRUE(parsed.ok()) << FormatList(original);
  EXPECT_EQ(*parsed, original);
}

TEST(ParseIntTest, Basics) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-17").value(), -17);
  EXPECT_EQ(ParseInt("0x10").value(), 16);
  EXPECT_EQ(ParseInt(" 5 ").value(), 5);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
}

TEST(ParseDoubleTest, Basics) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
}

TEST(FormatDoubleTest, IntegralGetsPointZero) {
  EXPECT_EQ(FormatDouble(3.0), "3.0");
  EXPECT_EQ(FormatDouble(-2.0), "-2.0");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(GlobMatchTest, Literals) {
  EXPECT_TRUE(GlobMatch("abc", "abc"));
  EXPECT_FALSE(GlobMatch("abc", "abd"));
  EXPECT_FALSE(GlobMatch("abc", "ab"));
  EXPECT_TRUE(GlobMatch("", ""));
}

TEST(GlobMatchTest, Star) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a*c", "abc"));
  EXPECT_TRUE(GlobMatch("a*c", "ac"));
  EXPECT_TRUE(GlobMatch("a*c", "axxxxc"));
  EXPECT_FALSE(GlobMatch("a*c", "abd"));
  EXPECT_TRUE(GlobMatch("*.txt", "notes.txt"));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXbYc"));
}

TEST(GlobMatchTest, QuestionMark) {
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_FALSE(GlobMatch("a?c", "abbc"));
}

TEST(GlobMatchTest, CharacterRanges) {
  EXPECT_TRUE(GlobMatch("[a-z]", "m"));
  EXPECT_FALSE(GlobMatch("[a-z]", "M"));
  EXPECT_TRUE(GlobMatch("x[0-9]y", "x5y"));
  EXPECT_TRUE(GlobMatch("[abc]", "b"));
  EXPECT_FALSE(GlobMatch("[abc]", "d"));
}

TEST(GlobMatchTest, EscapedSpecials) {
  EXPECT_TRUE(GlobMatch("a\\*b", "a*b"));
  EXPECT_FALSE(GlobMatch("a\\*b", "axb"));
}

TEST(GlobMatchTest, StarBacktracking) {
  EXPECT_TRUE(GlobMatch("*ab", "aab"));
  EXPECT_TRUE(GlobMatch("*aab", "aaab"));
  EXPECT_TRUE(GlobMatch("a*a*a", "aaaaa"));
}

}  // namespace
}  // namespace tacoma::tacl
