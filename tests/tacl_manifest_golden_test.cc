// Golden-file lock on the analyzer's output for every shipped example agent:
// the full diagnostic listing and the canonical effect-manifest JSON.  Any
// analyzer change that shifts what is reported for real scripts shows up here
// as a diff, not as a silent behaviour change.
//
// Regenerate after an intentional change with:
//   TACOMA_REGEN_GOLDEN=1 ctest --test-dir build -R ManifestGolden
// then review the diff under tests/golden/ like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "tacl/analyze.h"

namespace tacoma {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool RegenRequested() {
  const char* env = std::getenv("TACOMA_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

void CheckGolden(const fs::path& golden, const std::string& actual) {
  if (RegenRequested()) {
    std::ofstream out(golden);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << golden;
    return;
  }
  ASSERT_TRUE(fs::exists(golden))
      << golden << " is missing; run with TACOMA_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(ReadFile(golden), actual)
      << "analyzer output drifted from " << golden
      << "; regenerate with TACOMA_REGEN_GOLDEN=1 if the change is intended";
}

TEST(ManifestGoldenTest, ExampleAgentsMatchGoldenFiles) {
  const fs::path agents = fs::path(TACOMA_SOURCE_DIR) / "examples" / "agents";
  const fs::path golden_dir = fs::path(TACOMA_SOURCE_DIR) / "tests" / "golden";
  ASSERT_TRUE(fs::exists(agents)) << agents;
  if (RegenRequested()) {
    fs::create_directories(golden_dir);
  }

  // Analyze against a real place's command surface, exactly as admission does.
  Kernel kernel;
  SiteId site = kernel.AddSite("golden");

  std::vector<fs::path> scripts;
  for (const auto& entry : fs::directory_iterator(agents)) {
    if (entry.path().extension() == ".tacl") {
      scripts.push_back(entry.path());
    }
  }
  std::sort(scripts.begin(), scripts.end());
  ASSERT_GE(scripts.size(), 5u);

  for (const fs::path& script : scripts) {
    SCOPED_TRACE(script.filename().string());
    tacl::AnalysisReport report =
        kernel.place(site)->AnalyzeAgentCode(ReadFile(script));
    const std::string stem = script.stem().string();
    CheckGolden(golden_dir / (stem + ".diag.txt"),
                report.ToString(script.filename().string()));
    CheckGolden(golden_dir / (stem + ".manifest.json"),
                report.manifest.ToJson() + "\n");
  }
}

}  // namespace
}  // namespace tacoma
