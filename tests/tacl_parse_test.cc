#include "tacl/parse.h"

#include <gtest/gtest.h>

namespace tacoma::tacl {
namespace {

std::vector<ParsedCommand> MustParse(std::string_view script) {
  auto parsed = ParseScript(script);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : std::vector<ParsedCommand>{};
}

TEST(ParseTest, SimpleCommand) {
  auto cmds = MustParse("set a 5");
  ASSERT_EQ(cmds.size(), 1u);
  ASSERT_EQ(cmds[0].words.size(), 3u);
  EXPECT_EQ(cmds[0].words[0].parts[0].text, "set");
  EXPECT_EQ(cmds[0].words[2].parts[0].text, "5");
}

TEST(ParseTest, MultipleCommandsByNewlineAndSemicolon) {
  auto cmds = MustParse("a 1\nb 2; c 3");
  ASSERT_EQ(cmds.size(), 3u);
}

TEST(ParseTest, EmptyScriptAndBlankLines) {
  EXPECT_TRUE(MustParse("").empty());
  EXPECT_TRUE(MustParse("\n\n  \n;;;\n").empty());
}

TEST(ParseTest, CommentsSkipped) {
  auto cmds = MustParse("# a comment\nreal command\n# another");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].words[0].parts[0].text, "real");
}

TEST(ParseTest, BracedWordIsRawLiteral) {
  auto cmds = MustParse("if {$a < $b} {puts hi}");
  ASSERT_EQ(cmds.size(), 1u);
  ASSERT_EQ(cmds[0].words.size(), 3u);
  EXPECT_TRUE(cmds[0].words[1].braced);
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "$a < $b");
  EXPECT_EQ(cmds[0].words[1].parts[0].kind, WordPart::Kind::kLiteral);
  EXPECT_EQ(cmds[0].words[2].parts[0].text, "puts hi");
}

TEST(ParseTest, NestedBraces) {
  auto cmds = MustParse("proc f {} { if {1} { puts {a b} } }");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].words[3].parts[0].text, " if {1} { puts {a b} } ");
}

TEST(ParseTest, VariableSubstitutionParts) {
  auto cmds = MustParse("puts $name");
  ASSERT_EQ(cmds[0].words.size(), 2u);
  EXPECT_EQ(cmds[0].words[1].parts[0].kind, WordPart::Kind::kVariable);
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "name");
}

TEST(ParseTest, BracedVariableName) {
  auto cmds = MustParse("puts ${weird name}");
  EXPECT_EQ(cmds[0].words[1].parts[0].kind, WordPart::Kind::kVariable);
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "weird name");
}

TEST(ParseTest, MixedWordParts) {
  auto cmds = MustParse("puts pre$var[cmd]post");
  const Word& w = cmds[0].words[1];
  ASSERT_EQ(w.parts.size(), 4u);
  EXPECT_EQ(w.parts[0].kind, WordPart::Kind::kLiteral);
  EXPECT_EQ(w.parts[0].text, "pre");
  EXPECT_EQ(w.parts[1].kind, WordPart::Kind::kVariable);
  EXPECT_EQ(w.parts[2].kind, WordPart::Kind::kScript);
  EXPECT_EQ(w.parts[2].text, "cmd");
  EXPECT_EQ(w.parts[3].text, "post");
}

TEST(ParseTest, QuotedWordWithSubstitution) {
  auto cmds = MustParse("puts \"hello $who\"");
  const Word& w = cmds[0].words[1];
  ASSERT_EQ(w.parts.size(), 2u);
  EXPECT_EQ(w.parts[0].text, "hello ");
  EXPECT_EQ(w.parts[1].kind, WordPart::Kind::kVariable);
}

TEST(ParseTest, QuotedWordKeepsSpacesAndSemicolons) {
  auto cmds = MustParse("puts \"a; b c\"");
  ASSERT_EQ(cmds.size(), 1u);
  ASSERT_EQ(cmds[0].words.size(), 2u);
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "a; b c");
}

TEST(ParseTest, EscapesInBareWords) {
  auto cmds = MustParse("puts a\\ b");
  ASSERT_EQ(cmds[0].words.size(), 2u);
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "a b");
}

TEST(ParseTest, EscapeSequences) {
  auto cmds = MustParse("puts \"x\\ty\\n\"");
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "x\ty\n");
}

TEST(ParseTest, LineContinuation) {
  auto cmds = MustParse("set a \\\n 5");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].words.size(), 3u);
}

TEST(ParseTest, NestedBrackets) {
  auto cmds = MustParse("set x [outer [inner a] b]");
  const Word& w = cmds[0].words[2];
  ASSERT_EQ(w.parts.size(), 1u);
  EXPECT_EQ(w.parts[0].kind, WordPart::Kind::kScript);
  EXPECT_EQ(w.parts[0].text, "outer [inner a] b");
}

TEST(ParseTest, DollarWithoutNameIsLiteral) {
  auto cmds = MustParse("puts a$ b");
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "a$");
}

TEST(ParseTest, UnbalancedBraceFails) {
  EXPECT_FALSE(ParseScript("puts {unclosed").ok());
}

TEST(ParseTest, UnbalancedBracketFails) {
  EXPECT_FALSE(ParseScript("puts [unclosed").ok());
}

TEST(ParseTest, UnbalancedQuoteFails) {
  EXPECT_FALSE(ParseScript("puts \"unclosed").ok());
}

TEST(ParseTest, JunkAfterCloseBraceFails) {
  EXPECT_FALSE(ParseScript("puts {a}b").ok());
}

TEST(ParseTest, EmptyQuotedWordIsEmptyLiteral) {
  auto cmds = MustParse("set a \"\"");
  ASSERT_EQ(cmds[0].words.size(), 3u);
  EXPECT_EQ(cmds[0].words[2].parts[0].text, "");
}

TEST(ParseTest, SemicolonInsideBracesDoesNotSplit) {
  auto cmds = MustParse("run {a; b}");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].words[1].parts[0].text, "a; b");
}

}  // namespace
}  // namespace tacoma::tacl
