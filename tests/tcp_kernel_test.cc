// Two kernels in one test process, frames over real TCP loopback sockets:
// the daemon topology (one kernel per OS process) shrunk into a unit test.
// Covers the kernel-over-TcpTransport seam end to end — remote-site
// registration, agent transfer and dispatch, reliable acks, and CODE-cache
// stub sends with NeedCode recovery — without the process-kill chaos, which
// lives in the CI daemon smoke.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>

#include "core/kernel.h"
#include "net/realtime.h"
#include "net/tcp_transport.h"

namespace tacoma {
namespace {

// One "process": a kernel hosting `mine`, the other site remote over TCP.
struct Node {
  explicit Node(const std::string& mine, KernelOptions options = {})
      : kernel(options) {
    for (const std::string name : {"a", "b"}) {
      SiteId id = name == mine ? kernel.AddSite(name)
                               : kernel.AddRemoteSite(name);
      (name == mine ? self : peer) = id;
    }
    kernel.net().AddLink(self, peer);
    EXPECT_TRUE(tcp.Listen().ok());
  }

  void Connect(Node& other) {
    tcp.AddPeer(peer, "127.0.0.1", other.tcp.bound_port());
    kernel.SetTransport(&tcp);
  }

  Kernel kernel;
  TcpTransport tcp;
  SiteId self = kInvalidSite;
  SiteId peer = kInvalidSite;
};

// Drives both nodes until `done()` or the wall budget runs out.
bool PumpUntil(Node& x, Node& y, const std::function<bool()>& done,
               int budget_ms = 5000) {
  RealtimePump px(&x.kernel.sim(), &x.tcp);
  RealtimePump py(&y.kernel.sim(), &y.tcp);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    px.Tick(1);
    py.Tick(1);
    if (done()) {
      return true;
    }
  }
  return done();
}

TEST(TcpKernelTest, AgentTransfersAndRunsAcrossProcboundary) {
  Node na("a");
  Node nb("b");
  na.Connect(nb);
  nb.Connect(na);

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString("cab_set out RESULT ran-at-[site]");
  ASSERT_TRUE(na.kernel.TransferAgent(na.self, na.peer, "ag_tacl", bc).ok());

  ASSERT_TRUE(PumpUntil(na, nb, [&] {
    return nb.kernel.place(nb.self)
        ->Cabinet("out")
        .GetSingleString("RESULT")
        .has_value();
  }));
  EXPECT_EQ(*nb.kernel.place(nb.self)->Cabinet("out").GetSingleString("RESULT"),
            "ran-at-b");
  EXPECT_EQ(nb.kernel.stats().transfers_delivered, 1u);
}

TEST(TcpKernelTest, ReliableTransferAcksBackOverTcp) {
  KernelOptions reliable;
  reliable.reliability.mode = Reliability::kReliable;
  Node na("a", reliable);
  Node nb("b", reliable);
  na.Connect(nb);
  nb.Connect(na);

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString("cab_set out RESULT ok");
  ASSERT_TRUE(na.kernel.TransferAgent(na.self, na.peer, "ag_tacl", bc).ok());

  ASSERT_TRUE(PumpUntil(na, nb, [&] {
    return na.kernel.stats().transfers_acked == 1 &&
           na.kernel.pending_transfers() == 0;
  }));
  EXPECT_EQ(nb.kernel.stats().transfers_delivered, 1u);
  EXPECT_EQ(nb.kernel.stats().duplicates_suppressed, 0u);
}

TEST(TcpKernelTest, RoundTripItineraryComesHome) {
  Node na("a");
  Node nb("b");
  na.Connect(nb);
  nb.Connect(na);

  // The agent hops to b, works, and jumps home — two socket trips.
  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(
      "cab_append t VISITS [site]; if {[site] != \"a\"} { jump a }");
  ASSERT_TRUE(na.kernel.TransferAgent(na.self, na.peer, "ag_tacl", bc).ok());

  ASSERT_TRUE(PumpUntil(na, nb, [&] {
    return na.kernel.place(na.self)->Cabinet("t").ListStrings("VISITS").size() ==
           1;
  }));
  EXPECT_EQ(nb.kernel.place(nb.self)->Cabinet("t").ListStrings("VISITS").size(),
            1u);
}

TEST(TcpKernelTest, CodeCacheStubsAndNeedCodeRecoveryOverTcp) {
  KernelOptions cached;
  cached.code_cache.enabled = true;
  Node na("a", cached);
  Node nb("b", cached);
  na.Connect(nb);
  nb.Connect(na);

  const std::string code = "cab_append out RESULT ran";
  auto delivered = [&](uint64_t n) {
    return [&, n] { return nb.kernel.stats().transfers_delivered == n; };
  };

  // First send ships full CODE (the sender has no belief about b yet).
  Briefcase first;
  first.folder(kCodeFolder).PushBackString(code);
  ASSERT_TRUE(na.kernel.TransferAgent(na.self, na.peer, "ag_tacl", first).ok());
  ASSERT_TRUE(PumpUntil(na, nb, delivered(1)));
  EXPECT_EQ(na.kernel.code_cache_stats().full_sends, 1u);

  // Second send of the same CODE travels as a digest stub.
  Briefcase second;
  second.folder(kCodeFolder).PushBackString(code);
  ASSERT_TRUE(na.kernel.TransferAgent(na.self, na.peer, "ag_tacl", second).ok());
  ASSERT_TRUE(PumpUntil(na, nb, delivered(2)));
  EXPECT_EQ(na.kernel.code_cache_stats().stub_sends, 1u);
  EXPECT_EQ(nb.kernel.place(nb.self)->Cabinet("out").ListStrings("RESULT").size(),
            2u);

  // Wipe b's content store (fresh place after a crash) but leave a's belief
  // intact: the next stub MISSES at b and the NeedCode protocol self-heals
  // over the wire.
  nb.kernel.CrashSite(nb.self);
  nb.kernel.RestartSite(nb.self);
  Briefcase third;
  third.folder(kCodeFolder).PushBackString(code);
  ASSERT_TRUE(na.kernel.TransferAgent(na.self, na.peer, "ag_tacl", third).ok());
  ASSERT_TRUE(PumpUntil(na, nb, [&] {
    return nb.kernel.place(nb.self)
               ->Cabinet("out")
               .ListStrings("RESULT")
               .size() == 1;
  }));
  EXPECT_GE(nb.kernel.code_cache_stats().need_code_sent +
                na.kernel.code_cache_stats().need_code_sent,
            1u);
  EXPECT_GE(na.kernel.code_cache_stats().full_resends, 1u);
}

}  // namespace
}  // namespace tacoma
