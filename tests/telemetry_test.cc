// Continuous telemetry: the per-agent account ledger, the time-series
// sampler, the flight recorder, and the WALLET billing hook.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cash/billing.h"
#include "core/account.h"
#include "core/briefcase.h"
#include "core/kernel.h"
#include "sim/chaos.h"
#include "sim/topology.h"
#include "util/json.h"
#include "util/log.h"
#include "util/sampler.h"

namespace tacoma {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "";
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fclose(f);
  return true;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- AccountKey derivation ---------------------------------------------------

TEST(AccountKeyTest, ReadsAgentAndGuardIncarnation) {
  Briefcase bc;
  bc.SetString("AGENT", "walker");
  bc.SetString("GUARD_INC", "7");
  AccountKey key = AccountKeyFor(bc);
  EXPECT_EQ(key.agent, "walker");
  EXPECT_EQ(key.incarnation, 7u);

  AccountKey named = AccountKeyFor("resident", bc);
  EXPECT_EQ(named.agent, "resident");
  EXPECT_EQ(named.incarnation, 7u);
}

TEST(AccountKeyTest, DefaultsAndMalformedIncarnation) {
  Briefcase empty;
  AccountKey key = AccountKeyFor(empty);
  EXPECT_EQ(key.agent, "agent");
  EXPECT_EQ(key.incarnation, 0u);

  Briefcase bad;
  bad.SetString("GUARD_INC", "7x");
  EXPECT_EQ(AccountKeyFor(bad).incarnation, 0u);
}

// --- AccountLedger -----------------------------------------------------------

TEST(AccountLedgerTest, ChargesAccumulatePerKeyAndInTotals) {
  AccountLedger ledger(16);
  AccountKey a{"a", 0};
  AccountKey a2{"a", 2};  // A relaunched incarnation ledgered separately.
  ledger.ChargeActivation(a, 100);
  ledger.ChargeBytes(a, 512, 1);
  ledger.ChargeBytes(a, 512, 0);  // Retry: bytes again, no new hop.
  ledger.ChargeMeet(a);
  ledger.ChargeFlush(a);
  ledger.ChargeSpend(a, 3);
  ledger.ChargeActivation(a2, 50);

  const ResourceAccount* acct = ledger.Find(a);
  ASSERT_NE(acct, nullptr);
  EXPECT_EQ(acct->activations, 1u);
  EXPECT_EQ(acct->eval_steps, 100u);
  EXPECT_EQ(acct->bytes_sent, 1024u);
  EXPECT_EQ(acct->hops, 1u);
  EXPECT_EQ(acct->meets, 1u);
  EXPECT_EQ(acct->flushes, 1u);
  EXPECT_EQ(acct->ecu_spent, 3u);

  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.totals().eval_steps, 150u);
  EXPECT_EQ(ledger.totals().bytes_sent, 1024u);

  auto rows = ledger.ForAgent("a");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first.incarnation, 0u);  // Incarnation-ascending.
  EXPECT_EQ(rows[1].first.incarnation, 2u);
  EXPECT_EQ(ledger.Find(AccountKey{"nobody", 0}), nullptr);
}

TEST(AccountLedgerTest, EvictsCheapestPastCapacityTotalsStayExact) {
  AccountLedger ledger(2);
  ledger.ChargeActivation(AccountKey{"rich", 0}, 1000);
  ledger.ChargeActivation(AccountKey{"mid", 0}, 100);
  ledger.ChargeActivation(AccountKey{"poor", 0}, 1);  // Insert forces eviction.

  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.evictions(), 1u);
  // The cheapest OTHER account was the victim — the fresh entry survives to
  // take its charge; totals are exact regardless.
  EXPECT_NE(ledger.Find(AccountKey{"rich", 0}), nullptr);
  EXPECT_NE(ledger.Find(AccountKey{"poor", 0}), nullptr);
  EXPECT_EQ(ledger.Find(AccountKey{"mid", 0}), nullptr);
  EXPECT_EQ(ledger.totals().eval_steps, 1101u);
  EXPECT_EQ(ledger.totals().activations, 3u);
}

TEST(AccountLedgerTest, TopKRanksByCostWithDeterministicTies) {
  AccountLedger ledger(16);
  ledger.ChargeBytes(AccountKey{"big", 0}, 5000, 1);
  ledger.ChargeBytes(AccountKey{"twin_b", 0}, 100, 0);
  ledger.ChargeBytes(AccountKey{"twin_a", 0}, 100, 0);
  ledger.ChargeBytes(AccountKey{"small", 0}, 1, 0);

  auto top = ledger.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first.agent, "big");
  EXPECT_EQ(top[1].first.agent, "twin_a");  // Equal cost: key-ascending.
  EXPECT_EQ(top[2].first.agent, "twin_b");
}

TEST(AccountLedgerTest, JsonSnapshotParsesAndBoundsTop) {
  AccountLedger ledger(16);
  for (int i = 0; i < 5; ++i) {
    ledger.ChargeActivation(AccountKey{"agent\"" + std::to_string(i), 0},
                            static_cast<uint64_t>(10 * (i + 1)));
  }
  std::string json = ledger.JsonSnapshot(2);
  EXPECT_TRUE(JsonParses(json)) << json;
  EXPECT_NE(json.find("\"entries\":5"), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  // Only the top-2 rows are listed even though five accounts exist.
  EXPECT_NE(json.find("agent\\\"4"), std::string::npos);
  EXPECT_EQ(json.find("agent\\\"0"), std::string::npos);
}

// --- Time-series sampler -----------------------------------------------------

TEST(SamplerTest, RingEvictsOldestAndCountsDropped) {
  MetricsRegistry registry;
  Counter& c = registry.AddCounter("svc.ticks");
  TimeSeriesSampler sampler(&registry, SamplerOptions{3});
  sampler.Track("svc.ticks");
  for (uint64_t t = 1; t <= 5; ++t) {
    c.Increment();
    sampler.Sample(t * 100);
  }
  const auto& series = sampler.series().at("svc.ticks");
  ASSERT_EQ(series.points.size(), 3u);
  EXPECT_EQ(series.dropped, 2u);
  EXPECT_EQ(series.points.front().ts_us, 300u);  // Oldest two evicted.
  EXPECT_EQ(series.points.back().value, 5);
  EXPECT_EQ(sampler.samples_taken(), 5u);
  EXPECT_EQ(sampler.points_dropped(), 2u);
}

TEST(SamplerTest, TracksHistogramPercentilesViaSuffix) {
  MetricsRegistry registry;
  Histogram& h = registry.AddHistogram("lat", {10, 100, 1000});
  TimeSeriesSampler sampler(&registry);
  sampler.Track("lat.p99");
  for (int i = 0; i < 99; ++i) {
    h.Observe(5);
  }
  h.Observe(900);
  sampler.Sample(10);
  const auto& series = sampler.series().at("lat.p99");
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_EQ(series.points[0].value,
            static_cast<int64_t>(h.ApproxPercentile(99)));
}

TEST(SamplerTest, UnknownMetricSamplesZeroUntilRegistered) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  sampler.Track("late.arrival");
  sampler.Sample(1);
  registry.AddCounter("late.arrival").Increment(9);
  sampler.Sample(2);
  const auto& series = sampler.series().at("late.arrival");
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[0].value, 0);
  EXPECT_EQ(series.points[1].value, 9);
}

TEST(SamplerTest, JsonHistoryDeterministicParsesAndTails) {
  MetricsRegistry registry;
  Counter& c = registry.AddCounter("a.n");
  auto run = [&registry, &c] {
    TimeSeriesSampler sampler(&registry, SamplerOptions{8});
    sampler.Track("a.n");
    for (uint64_t t = 1; t <= 4; ++t) {
      sampler.Sample(t * 10);
    }
    return sampler.JsonHistory();
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_TRUE(JsonParses(first)) << first;
  (void)c;

  TimeSeriesSampler sampler(&registry, SamplerOptions{8});
  sampler.Track("a.n");
  for (uint64_t t = 1; t <= 6; ++t) {
    sampler.Sample(t);
  }
  std::string tailed = sampler.JsonHistory(/*tail=*/2);
  EXPECT_TRUE(JsonParses(tailed)) << tailed;
  // Six points retained, two exported.
  EXPECT_EQ(tailed.find("[1,"), std::string::npos);
  EXPECT_NE(tailed.find("[6,"), std::string::npos);
}

// --- Kernel choke-point charging --------------------------------------------

TEST(KernelAccountingTest, TransferChargesSenderBytesHopsAndMeets) {
  Kernel kernel;
  auto sites = BuildLine(&kernel.net(), 3);
  kernel.AdoptNetworkSites();
  kernel.place(sites[2])->RegisterAgent(
      "sink", [](Place&, Briefcase&) { return OkStatus(); });

  Briefcase bc;
  bc.SetString("AGENT", "walker");
  // Two links from line end to end: bytes bill both traversals.
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[2], "sink", bc).ok());
  kernel.sim().Run();

  const ResourceAccount* acct =
      kernel.accounts().Find(AccountKey{"walker", 0});
  ASSERT_NE(acct, nullptr);
  EXPECT_EQ(acct->hops, 1u);
  EXPECT_EQ(acct->meets, 1u);
  EXPECT_GT(acct->bytes_sent, 0u);
  // The ledger's frame × links charge is exactly what the store-and-forward
  // network counted per traversal.
  EXPECT_EQ(acct->bytes_sent, kernel.net().stats().bytes_on_wire);
}

TEST(KernelAccountingTest, TaclActivationChargesEvalSteps) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s0");
  ASSERT_TRUE(kernel.LaunchAgent(site, "bc_set X 1; bc_set Y 2").ok());
  kernel.sim().Run();

  // The launched payload runs under ag_tacl with the default key.
  const ResourceAccount* acct = kernel.accounts().Find(AccountKey{"agent", 0});
  ASSERT_NE(acct, nullptr);
  EXPECT_GE(acct->activations, 1u);
  EXPECT_GT(acct->eval_steps, 0u);
}

TEST(KernelAccountingTest, AccountingOffMetersNothingButKeepsProbes) {
  KernelOptions options;
  options.telemetry.accounting = false;
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  kernel.place(sites[1])->RegisterAgent(
      "sink", [](Place&, Briefcase&) { return OkStatus(); });
  Briefcase bc;
  bc.SetString("AGENT", "walker");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  kernel.sim().Run();

  EXPECT_EQ(kernel.accounts().size(), 0u);
  EXPECT_FALSE(kernel.accounting_enabled());
  // The metric key set is mode-independent (CI goldens rely on this).
  std::string snapshot = kernel.metrics().TextSnapshot();
  EXPECT_NE(snapshot.find("account.agents 0"), std::string::npos);
  EXPECT_NE(snapshot.find("account.bytes_sent 0"), std::string::npos);
}

TEST(KernelAccountingTest, ScheduledSamplingIsSeededDeterministic) {
  auto run = [] {
    KernelOptions options;
    options.seed = 77;
    Kernel kernel(options);
    auto sites = BuildRing(&kernel.net(), 4);
    kernel.AdoptNetworkSites();
    kernel.AddPlaceInitializer([](Place& place) {
      place.RegisterAgent("sink",
                          [](Place&, Briefcase&) { return OkStatus(); });
    });
    for (int i = 0; i < 8; ++i) {
      kernel.sim().At(1 + i * 5 * kMillisecond, [&kernel, &sites, i] {
        Briefcase bc;
        bc.SetString("AGENT", "w" + std::to_string(i % 2));
        (void)kernel.TransferAgent(sites[i % 4], sites[(i + 1) % 4], "sink",
                                   bc);
      });
    }
    kernel.ScheduleSampling(100 * kMillisecond);
    kernel.sim().Run();
    return kernel.sampler().JsonHistory();
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_TRUE(JsonParses(first));
}

// --- WALLET billing hook -----------------------------------------------------

TEST(BillingTest, PriceOfAppliesRates) {
  cash::BillingPrices prices;
  prices.per_activation = 2;
  prices.per_hop = 3;
  prices.eval_steps_per_ecu = 100;
  prices.bytes_per_ecu = 1000;
  ResourceAccount usage;
  usage.activations = 2;
  usage.hops = 1;
  usage.eval_steps = 250;
  usage.bytes_sent = 2500;
  EXPECT_EQ(cash::PriceOf(prices, usage), 2u * 2 + 3 + 2 + 2);

  cash::BillingPrices off;
  off.per_activation = 0;
  off.per_hop = 0;
  off.eval_steps_per_ecu = 0;
  off.bytes_per_ecu = 0;
  EXPECT_EQ(cash::PriceOf(off, usage), 0u);
}

TEST(BillingTest, WalletDebitedAtActivationBoundary) {
  Kernel kernel;
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  cash::BillingPrices prices;
  prices.per_activation = 4;
  prices.per_hop = 1;
  cash::InstallWalletBilling(&kernel, prices);

  // Billing settles at the TACL activation boundary, so the agent travels as
  // code for ag_tacl rather than meeting a native resident.
  Briefcase bc;
  bc.SetString("AGENT", "payer");
  bc.SetString("WALLET", "100");
  bc.folder(kCodeFolder).PushBackString("bc_set DONE 1");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "ag_tacl", bc).ok());
  kernel.sim().Run();

  const ResourceAccount* acct = kernel.accounts().Find(AccountKey{"payer", 0});
  ASSERT_NE(acct, nullptr);
  // One activation (4) + one hop (1), fully covered by the wallet.
  EXPECT_EQ(acct->ecu_billed, 5u);
  EXPECT_EQ(kernel.accounts().billing_shortfall(), 0u);
}

TEST(BillingTest, ShortfallRecordedWhenWalletRunsDry) {
  Kernel kernel;
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  cash::BillingPrices prices;
  prices.per_activation = 10;
  cash::InstallWalletBilling(&kernel, prices);

  Briefcase funded;
  funded.SetString("AGENT", "broke");
  funded.SetString("WALLET", "3");
  funded.folder(kCodeFolder).PushBackString("bc_set DONE 1");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "ag_tacl", funded).ok());

  Briefcase walletless;
  walletless.SetString("AGENT", "stowaway");
  walletless.folder(kCodeFolder).PushBackString("bc_set DONE 1");
  ASSERT_TRUE(
      kernel.TransferAgent(sites[0], sites[1], "ag_tacl", walletless).ok());
  kernel.sim().Run();

  const ResourceAccount* broke = kernel.accounts().Find(AccountKey{"broke", 0});
  ASSERT_NE(broke, nullptr);
  EXPECT_EQ(broke->ecu_billed, 3u);  // Everything the wallet had.
  const ResourceAccount* stowaway =
      kernel.accounts().Find(AccountKey{"stowaway", 0});
  ASSERT_NE(stowaway, nullptr);
  EXPECT_EQ(stowaway->ecu_billed, 0u);  // No wallet: all shortfall.
  // Unpaid remainder from "broke" plus the stowaway's whole bill.
  EXPECT_GT(kernel.accounts().billing_shortfall(), 0u);
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, ExplicitDumpIsAtomicAndParses) {
  const std::string path = TempPath("flight_explicit.json");
  std::remove(path.c_str());
  Kernel kernel;
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  kernel.place(sites[1])->RegisterAgent(
      "sink", [](Place&, Briefcase&) { return OkStatus(); });
  Briefcase bc;
  bc.SetString("AGENT", "walker");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  kernel.sim().Run();

  ASSERT_TRUE(kernel.DumpFlightRecord(path, "manual test dump").ok());
  EXPECT_EQ(kernel.flight_dumps(), 1u);
  EXPECT_FALSE(FileExists(path + ".tmp"));  // Renamed into place.

  std::string doc = ReadFileOrEmpty(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonParses(doc)) << doc.substr(0, 200);
  EXPECT_NE(doc.find("\"reason\":\"manual test dump\""), std::string::npos);
  EXPECT_NE(doc.find("\"accounts\""), std::string::npos);
  EXPECT_NE(doc.find("\"sampler\""), std::string::npos);
  EXPECT_NE(doc.find("\"trace\""), std::string::npos);
  EXPECT_NE(doc.find("\"walker\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, EmptyTargetIsAnError) {
  Kernel kernel;
  EXPECT_FALSE(kernel.DumpFlightRecord("", "nowhere to land").ok());
  EXPECT_EQ(kernel.flight_dumps(), 0u);
}

TEST(FlightRecorderTest, ChaosViolationTriggersDump) {
  const std::string path = TempPath("flight_violation.json");
  std::remove(path.c_str());
  Kernel kernel;
  auto sites = BuildRing(&kernel.net(), 3);
  kernel.AdoptNetworkSites();

  ChaosOptions chaos_options;
  chaos_options.horizon = 100 * kMillisecond;
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.AddInvariant("always.broken",
                     [] { return InternalError("synthetic breakage"); });
  kernel.AttachFlightRecorder(&chaos, path);

  EXPECT_FALSE(chaos.CheckNow().ok());
  EXPECT_GE(kernel.flight_dumps(), 1u);
  std::string doc = ReadFileOrEmpty(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonParses(doc));
  EXPECT_NE(doc.find("chaos.violation"), std::string::npos);
  EXPECT_NE(doc.find("synthetic breakage"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, LogErrorTriggersDumpWhenEnabled) {
  const std::string path = TempPath("flight_logerr.json");
  std::remove(path.c_str());
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  {
    KernelOptions options;
    options.telemetry.flight_path = path;
    options.telemetry.flight_on_log_error = true;
    Kernel kernel(options);
    TLOG_ERROR << "something terrible happened";
    EXPECT_GE(kernel.flight_dumps(), 1u);
    std::string doc = ReadFileOrEmpty(path);
    ASSERT_FALSE(doc.empty());
    EXPECT_TRUE(JsonParses(doc));
    EXPECT_NE(doc.find("log.error"), std::string::npos);
    EXPECT_NE(doc.find("something terrible happened"), std::string::npos);
  }
  // The kernel detached its hook on destruction: further errors do nothing.
  std::remove(path.c_str());
  TLOG_ERROR << "after teardown";
  EXPECT_FALSE(FileExists(path));
  SetLogLevel(saved);
}

// --- Log error hooks (the process-wide trigger plumbing) ---------------------

TEST(LogHookTest, FiresOnlyForErrorLevelAndDetaches) {
  LogLevel saved = GetLogLevel();
  int fired = 0;
  int id = SetLogErrorHook([&fired](const std::string&) { ++fired; });

  SetLogLevel(LogLevel::kOff);
  TLOG_ERROR << "suppressed";
  EXPECT_EQ(fired, 0);

  SetLogLevel(LogLevel::kError);
  TLOG_ERROR << "counted";
  EXPECT_EQ(fired, 1);
  TLOG_WARN << "not an error";
  EXPECT_EQ(fired, 1);

  ClearLogErrorHook(id);
  TLOG_ERROR << "after detach";
  EXPECT_EQ(fired, 1);
  SetLogLevel(saved);
}

TEST(LogHookTest, ReentrantErrorsDoNotRecurse) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int fired = 0;
  int id = SetLogErrorHook([&fired](const std::string&) {
    ++fired;
    // A hook that itself logs an error must not re-enter the hook set.
    TLOG_ERROR << "from inside the hook";
  });
  TLOG_ERROR << "outer";
  EXPECT_EQ(fired, 1);
  ClearLogErrorHook(id);
  SetLogLevel(saved);
}

// --- JSON helpers ------------------------------------------------------------

TEST(JsonUtilTest, EscapeHandlesQuotesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  std::string escaped = JsonEscape(std::string(1, '\x01'));
  EXPECT_TRUE(JsonParses("\"" + escaped + "\""));
}

TEST(JsonUtilTest, ParsesAcceptsDocumentsRejectsGarbage) {
  EXPECT_TRUE(JsonParses("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"));
  EXPECT_TRUE(JsonParses("[]"));
  EXPECT_TRUE(JsonParses("-1.5e3"));
  EXPECT_FALSE(JsonParses("{\"a\":}"));
  EXPECT_FALSE(JsonParses("{\"a\":1"));
  EXPECT_FALSE(JsonParses("[1,]"));
  EXPECT_FALSE(JsonParses(""));
  EXPECT_FALSE(JsonParses("{} trailing"));
}

}  // namespace
}  // namespace tacoma
