#include "sim/topology.h"

#include <gtest/gtest.h>

namespace tacoma {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() : net_(&sim_) {}
  Simulator sim_;
  Network net_;
};

TEST_F(TopologyTest, LineHopCounts) {
  auto ids = BuildLine(&net_, 6);
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(net_.HopCount(ids[0], ids[5]).value(), 5u);
  EXPECT_EQ(net_.HopCount(ids[2], ids[3]).value(), 1u);
}

TEST_F(TopologyTest, RingWrapsAround) {
  auto ids = BuildRing(&net_, 8);
  // Opposite side is 4 hops; adjacent via the wrap link is 1.
  EXPECT_EQ(net_.HopCount(ids[0], ids[4]).value(), 4u);
  EXPECT_EQ(net_.HopCount(ids[0], ids[7]).value(), 1u);
}

TEST_F(TopologyTest, StarHubAndSpokes) {
  auto ids = BuildStar(&net_, 5);
  EXPECT_EQ(net_.HopCount(ids[0], ids[3]).value(), 1u);
  EXPECT_EQ(net_.HopCount(ids[1], ids[4]).value(), 2u);  // Via the hub.
  EXPECT_EQ(net_.Neighbors(ids[0]).size(), 4u);
}

TEST_F(TopologyTest, FullMeshAllDirect) {
  auto ids = BuildFullMesh(&net_, 5);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = 0; j < ids.size(); ++j) {
      if (i != j) {
        EXPECT_EQ(net_.HopCount(ids[i], ids[j]).value(), 1u);
      }
    }
  }
}

TEST_F(TopologyTest, GridManhattanDistance) {
  auto ids = BuildGrid(&net_, 3, 4);
  ASSERT_EQ(ids.size(), 12u);
  // Corner to corner: (3-1)+(4-1) = 5 hops.
  EXPECT_EQ(net_.HopCount(ids[0], ids[11]).value(), 5u);
  EXPECT_EQ(net_.HopCount(ids[0], ids[1]).value(), 1u);
  EXPECT_EQ(net_.HopCount(ids[0], ids[4]).value(), 1u);  // Down one row.
}

class RandomTopologyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest, ::testing::Range<uint64_t>(1, 9));

TEST_P(RandomTopologyTest, AlwaysConnected) {
  Simulator sim;
  Network net(&sim);
  Rng rng(GetParam());
  auto ids = BuildRandom(&net, 20, 0.05, &rng);
  for (SiteId id : ids) {
    EXPECT_TRUE(net.HopCount(ids[0], id).has_value()) << "site " << id;
  }
}

TEST_F(TopologyTest, BuildersComposeOnOneNetwork) {
  auto line = BuildLine(&net_, 3);
  auto star = BuildStar(&net_, 3);
  // Two disjoint components until linked.
  EXPECT_FALSE(net_.HopCount(line[0], star[0]).has_value());
  net_.AddLink(line[2], star[0]);
  EXPECT_TRUE(net_.HopCount(line[0], star[2]).has_value());
}

TEST_F(TopologyTest, SiteNamesSequential) {
  auto ids = BuildLine(&net_, 3);
  EXPECT_EQ(net_.site_name(ids[0]), "s0");
  EXPECT_EQ(net_.site_name(ids[2]), "s2");
  auto more = BuildRing(&net_, 2);
  EXPECT_EQ(net_.site_name(more[0]), "s3");
}

}  // namespace
}  // namespace tacoma
