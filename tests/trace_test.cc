// Journey tracing: every activation gets a trace id, every hop a span, and
// the kernel stamps span events into a bounded per-kernel buffer.  The
// headline property (ISSUE acceptance): a 3-hop rexec journey exports a
// deterministic trace — same seed, identical span sequence and timestamps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernel.h"
#include "core/trace.h"
#include "sim/topology.h"
#include "util/json.h"

namespace tacoma {
namespace {

TEST(TraceContextTest, EncodeDecodeRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 42;
  ctx.span_id = 7;
  ctx.hop = 3;
  ctx.sent_ts = 123456789;
  auto back = TraceContext::Decode(ctx.Encoded());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 42u);
  EXPECT_EQ(back->span_id, 7u);
  EXPECT_EQ(back->hop, 3u);
  EXPECT_EQ(back->sent_ts, 123456789u);
}

TEST(TraceContextTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(TraceContext::Decode("").has_value());
  EXPECT_FALSE(TraceContext::Decode("1:2").has_value());
  EXPECT_FALSE(TraceContext::Decode("a:b:c:d").has_value());
  EXPECT_FALSE(TraceContext::Decode("1:2:3:4:5").has_value());
}

TEST(TraceContextTest, StampAndReadBack) {
  TraceContext ctx;
  ctx.trace_id = 9;
  ctx.span_id = 1;
  ctx.hop = 2;
  ctx.sent_ts = 500;
  Briefcase bc;
  ctx.Stamp(&bc);
  auto back = TraceContext::FromBriefcase(bc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 9u);
  EXPECT_EQ(back->hop, 2u);
}

TEST(TraceBufferTest, BoundedEvictsOldest) {
  TraceBuffer buffer(/*capacity=*/3);
  for (uint64_t i = 1; i <= 5; ++i) {
    TraceEvent ev;
    ev.trace_id = i;
    ev.name = "e" + std::to_string(i);
    buffer.Record(std::move(ev));
  }
  EXPECT_EQ(buffer.recorded(), 5u);
  EXPECT_EQ(buffer.dropped(), 2u);
  ASSERT_EQ(buffer.events().size(), 3u);
  EXPECT_EQ(buffer.events().front().name, "e3");
  EXPECT_EQ(buffer.events().back().name, "e5");
}

// The canonical journey: launch at s0, jump s1 -> s2 -> s3.  Each hop through
// rexec must yield exactly transfer.send (source), meet.dispatch
// (destination), agent.activate (destination), in that order, with the hop
// counter advancing and each span parented on the previous one.
struct JourneyRun {
  std::vector<TraceEvent> events;
  std::string chrome_json;
};

JourneyRun RunThreeHopJourney(uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 4);
  kernel.AdoptNetworkSites();

  Briefcase bc;
  for (int i = 1; i <= 3; ++i) {
    bc.folder("ITINERARY").PushBackString("s" + std::to_string(i));
  }
  const char* agent = "if {[bc_len ITINERARY] > 0} {jump [bc_pop ITINERARY]}";
  EXPECT_TRUE(kernel.LaunchAgent(sites[0], agent, bc).ok());
  kernel.sim().Run();

  JourneyRun run;
  run.events = kernel.trace().ForTrace(1);
  run.chrome_json = kernel.trace().ChromeTraceJson();
  return run;
}

TEST(TraceJourneyTest, ThreeHopRexecYieldsExpectedSpanSequence) {
  JourneyRun run = RunThreeHopJourney(/*seed=*/1234);

  struct Expected {
    const char* name;
    const char* site;
    uint32_t hop;
  };
  const Expected expected[] = {
      {"agent.launch", "s0", 0},    {"agent.activate", "s0", 0},
      {"transfer.send", "s0", 1},   {"meet.dispatch", "s1", 1},
      {"agent.activate", "s1", 1},  {"transfer.send", "s1", 2},
      {"meet.dispatch", "s2", 2},   {"agent.activate", "s2", 2},
      {"transfer.send", "s2", 3},   {"meet.dispatch", "s3", 3},
      {"agent.activate", "s3", 3},
  };
  ASSERT_EQ(run.events.size(), std::size(expected));
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(run.events[i].name, expected[i].name) << "event " << i;
    EXPECT_EQ(run.events[i].site, expected[i].site) << "event " << i;
    EXPECT_EQ(run.events[i].hop, expected[i].hop) << "event " << i;
    EXPECT_EQ(run.events[i].trace_id, 1u) << "event " << i;
  }

  // Spans chain: each transfer.send opens a new span parented on the span
  // that carried the agent here.
  EXPECT_EQ(run.events[0].span_id, 1u);                       // launch
  EXPECT_EQ(run.events[2].parent_span_id, 1u);                // hop 1
  EXPECT_EQ(run.events[5].parent_span_id, run.events[2].span_id);  // hop 2
  EXPECT_EQ(run.events[8].parent_span_id, run.events[5].span_id);  // hop 3

  // Arrival events ride the span of the transfer that delivered them.
  EXPECT_EQ(run.events[3].span_id, run.events[2].span_id);
  EXPECT_EQ(run.events[4].span_id, run.events[2].span_id);

  // Time moves forward across hops.
  EXPECT_LT(run.events[2].ts, run.events[3].ts);
  EXPECT_LT(run.events[5].ts, run.events[6].ts);
  EXPECT_LT(run.events[8].ts, run.events[9].ts);
}

TEST(TraceJourneyTest, SameSeedProducesIdenticalTrace) {
  JourneyRun first = RunThreeHopJourney(/*seed=*/777);
  JourneyRun second = RunThreeHopJourney(/*seed=*/777);
  ASSERT_EQ(first.events.size(), second.events.size());
  for (size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_EQ(first.events[i].name, second.events[i].name);
    EXPECT_EQ(first.events[i].span_id, second.events[i].span_id);
    EXPECT_EQ(first.events[i].ts, second.events[i].ts) << "event " << i;
  }
  // Byte-identical Chrome-trace export.
  EXPECT_EQ(first.chrome_json, second.chrome_json);
}

TEST(TraceJourneyTest, ChromeTraceJsonShape) {
  JourneyRun run = RunThreeHopJourney(/*seed=*/5);
  EXPECT_NE(run.chrome_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"transfer.send\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"meet.dispatch\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceJourneyTest, CourierCarriesTraceContext) {
  Kernel kernel;
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();
  kernel.place(sites[1])->RegisterAgent("sink",
                                        [](Place&, Briefcase&) { return OkStatus(); });

  // An agent at s0 couriers a folder to the sink at s1: the delivery is one
  // more hop of the agent's journey, so the courier's transfer must chain
  // under the launching trace id rather than start a fresh one.
  const char* agent =
      "bc_put PAYLOAD hello;"
      "bc_set HOST s1; bc_set CONTACT sink; bc_set FOLDER PAYLOAD;"
      "meet courier";
  ASSERT_TRUE(kernel.LaunchAgent(sites[0], agent).ok());
  kernel.sim().Run();

  auto journey = kernel.trace().ForTrace(1);
  bool courier_send = false;
  for (const TraceEvent& ev : journey) {
    if (ev.name == "transfer.send" && ev.hop == 1) {
      courier_send = true;
    }
  }
  EXPECT_TRUE(courier_send) << "courier transfer did not join the journey";
}

TEST(TraceJourneyTest, TracingDisabledStampsNothing) {
  KernelOptions options;
  options.trace_enabled = false;
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 2);
  kernel.AdoptNetworkSites();

  std::vector<std::string> folders;
  kernel.place(sites[1])->RegisterAgent("sink", [&](Place&, Briefcase& bc) {
    folders = bc.FolderNames();
    return OkStatus();
  });
  Briefcase bc;
  bc.SetString("K", "v");
  ASSERT_TRUE(kernel.TransferAgent(sites[0], sites[1], "sink", bc).ok());
  kernel.sim().Run();

  EXPECT_EQ(kernel.trace().recorded(), 0u);
  for (const std::string& f : folders) {
    EXPECT_NE(f, kTraceFolder);
  }
}

// --- Wrap-around behaviour (the flight recorder dumps tails of a buffer
// that has usually wrapped by the time anything goes wrong) ------------------

TEST(TraceBufferTest, ForTraceStaysCausallyOrderedAfterWrap) {
  TraceBuffer buffer(/*capacity=*/6);
  // Two interleaved journeys, 5 events each: the buffer keeps only the last
  // 6 events overall.
  for (uint64_t i = 1; i <= 5; ++i) {
    for (uint64_t trace : {uint64_t{1}, uint64_t{2}}) {
      TraceEvent ev;
      ev.trace_id = trace;
      ev.span_id = i;
      ev.name = "step" + std::to_string(i);
      ev.ts = i * 10;
      buffer.Record(std::move(ev));
    }
  }
  EXPECT_EQ(buffer.recorded(), 10u);
  EXPECT_EQ(buffer.dropped(), 4u);

  std::vector<TraceEvent> journey = buffer.ForTrace(1);
  ASSERT_EQ(journey.size(), 3u);  // Steps 1-2 of trace 1 were evicted.
  EXPECT_EQ(journey.front().name, "step3");
  EXPECT_EQ(journey.back().name, "step5");
  for (size_t i = 1; i < journey.size(); ++i) {
    EXPECT_LE(journey[i - 1].ts, journey[i].ts);  // Still time-ordered.
  }
}

TEST(TraceBufferTest, ChromeTraceJsonParsesAfterWrap) {
  TraceBuffer buffer(/*capacity=*/4);
  for (uint64_t i = 1; i <= 12; ++i) {
    TraceEvent ev;
    ev.trace_id = i % 3;
    ev.span_id = i;
    ev.name = "hop\"" + std::to_string(i);  // Needs JSON escaping.
    ev.site = "s" + std::to_string(i % 4);
    ev.ts = i * 7;
    buffer.Record(std::move(ev));
  }
  EXPECT_EQ(buffer.dropped(), 8u);
  std::string json = buffer.ChromeTraceJson();
  EXPECT_TRUE(JsonParses(json)) << json;
  // Only retained events are exported.
  EXPECT_EQ(json.find("hop\\\"8"), std::string::npos);
  EXPECT_NE(json.find("hop\\\"12"), std::string::npos);
}

TEST(TraceBufferTest, ClearResetsEventsAndCounters) {
  TraceBuffer buffer(/*capacity=*/2);
  for (uint64_t i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.name = "e";
    buffer.Record(std::move(ev));
  }
  EXPECT_EQ(buffer.recorded(), 5u);
  EXPECT_EQ(buffer.dropped(), 3u);
  buffer.Clear();
  // A fresh start: the shell's `trace clear` zeroes the counters too.
  EXPECT_TRUE(buffer.events().empty());
  EXPECT_EQ(buffer.ForTrace(0).size(), 0u);
  EXPECT_EQ(buffer.recorded(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  // Recording resumes normally after the reset.
  TraceEvent ev;
  ev.name = "fresh";
  buffer.Record(std::move(ev));
  EXPECT_EQ(buffer.recorded(), 1u);
  EXPECT_EQ(buffer.events().front().name, "fresh");
}

TEST(KernelTraceWrapTest, WrappedKernelBufferStillExportsValidJson) {
  KernelOptions options;
  options.trace_capacity = 16;  // Tiny: the workload wraps it many times.
  Kernel kernel(options);
  auto sites = BuildRing(&kernel.net(), 4);
  kernel.AdoptNetworkSites();
  kernel.AddPlaceInitializer([](Place& place) {
    place.RegisterAgent("sink", [](Place&, Briefcase&) { return OkStatus(); });
  });
  for (int i = 0; i < 32; ++i) {
    kernel.sim().At(1 + i * kMillisecond, [&kernel, &sites, i] {
      Briefcase bc;
      (void)kernel.TransferAgent(sites[i % 4], sites[(i + 1) % 4], "sink", bc);
    });
  }
  kernel.sim().Run();

  EXPECT_GT(kernel.trace().dropped(), 0u);
  EXPECT_LE(kernel.trace().events().size(), 16u);
  EXPECT_TRUE(JsonParses(kernel.trace().ChromeTraceJson()));
}

}  // namespace
}  // namespace tacoma
