// Transport-contract conformance, run identically against both backends:
// the deterministic sim Network and the TCP/epoll loopback transport.  The
// contract under test (see net/transport.h):
//
//   - frames are delivered to the destination's handler with the sender's id,
//   - payload bytes survive the trip exactly,
//   - a self-send is NEVER dispatched re-entrantly inside Send,
//   - sending from within a handler is legal,
//   - a send to a site the transport cannot reach fails up front,
//   - transport_stats() counts sent and delivered frames.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp_transport.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tacoma {
namespace {

struct Received {
  SiteId at;
  SiteId from;
  Bytes payload;
};

// A two-site world (plus one unreachable id) behind either backend.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual Transport& transport_for(SiteId site) = 0;
  SiteId a() const { return 0; }
  SiteId b() const { return 1; }
  SiteId unreachable() const { return 2; }
  // Runs the world until deliveries settle.
  virtual void Pump() = 0;

  void Install(SiteId site, std::vector<Received>* log) {
    transport_for(site).SetHandler(
        site, [site, log](SiteId from, const SharedBytes& payload) {
          log->push_back({site, from, payload.ToBytes()});
        });
  }
};

class SimBackend : public Backend {
 public:
  SimBackend() : net_(&sim_) {
    net_.AddSite("a");
    net_.AddSite("b");
    net_.AddSite("unreachable");  // Exists but has no links.
    net_.AddLink(a(), b());
  }
  Transport& transport_for(SiteId) override { return net_; }
  void Pump() override { sim_.Run(); }

 private:
  Simulator sim_;
  Network net_;
};

class TcpBackend : public Backend {
 public:
  TcpBackend() {
    at_a_ = std::make_unique<TcpTransport>();
    at_b_ = std::make_unique<TcpTransport>();
    EXPECT_TRUE(at_a_->Listen().ok());
    EXPECT_TRUE(at_b_->Listen().ok());
    at_a_->AddPeer(b(), "127.0.0.1", at_b_->bound_port());
    at_b_->AddPeer(a(), "127.0.0.1", at_a_->bound_port());
    // No peer entry for unreachable(): sends to it are refused.
  }
  // Each site lives in its own transport, like one process per site.
  Transport& transport_for(SiteId site) override {
    return site == a() ? *at_a_ : *at_b_;
  }
  void Pump() override {
    int idle_rounds = 0;
    for (int i = 0; i < 2000 && idle_rounds < 3; ++i) {
      int dispatched = at_a_->Poll(1) + at_b_->Poll(1);
      bool queued = at_a_->QueuedFrames(b()) > 0 || at_b_->QueuedFrames(a()) > 0;
      idle_rounds = (dispatched == 0 && !queued) ? idle_rounds + 1 : 0;
    }
  }

 private:
  std::unique_ptr<TcpTransport> at_a_;
  std::unique_ptr<TcpTransport> at_b_;
};

class TransportConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Backend> Make() {
    if (GetParam() == "sim") {
      return std::make_unique<SimBackend>();
    }
    return std::make_unique<TcpBackend>();
  }
};

TEST_P(TransportConformanceTest, DeliversWithSenderIdentity) {
  auto world = Make();
  std::vector<Received> log;
  world->Install(world->b(), &log);

  ASSERT_TRUE(world->transport_for(world->a())
                  .Send(world->a(), world->b(), ToBytes("hello"))
                  .ok());
  world->Pump();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, world->a());
  EXPECT_EQ(log[0].payload, ToBytes("hello"));
}

TEST_P(TransportConformanceTest, BinaryPayloadSurvivesExactly) {
  auto world = Make();
  std::vector<Received> log;
  world->Install(world->b(), &log);

  // Every byte value, long enough to span several socket reads.
  Bytes payload(70'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  ASSERT_TRUE(world->transport_for(world->a())
                  .Send(world->a(), world->b(), payload)
                  .ok());
  world->Pump();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].payload, payload);
}

TEST_P(TransportConformanceTest, SelfSendNeverRunsInsideSend) {
  auto world = Make();
  std::vector<Received> log;
  world->Install(world->a(), &log);

  ASSERT_TRUE(world->transport_for(world->a())
                  .Send(world->a(), world->a(), ToBytes("self"))
                  .ok());
  EXPECT_TRUE(log.empty()) << "handler ran re-entrantly inside Send";
  world->Pump();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, world->a());
}

TEST_P(TransportConformanceTest, SendingFromInsideAHandlerIsLegal) {
  auto world = Make();
  std::vector<Received> a_log;
  // b's handler answers every frame straight back from dispatch context.
  Transport& at_b = world->transport_for(world->b());
  SiteId a = world->a();
  SiteId b = world->b();
  at_b.SetHandler(b, [&at_b, a, b](SiteId from, const SharedBytes& payload) {
    Bytes echo = payload.ToBytes();
    echo.push_back('!');
    ASSERT_TRUE(at_b.Send(b, from, std::move(echo)).ok());
  });
  world->Install(a, &a_log);

  ASSERT_TRUE(world->transport_for(a).Send(a, b, ToBytes("ping")).ok());
  world->Pump();

  ASSERT_EQ(a_log.size(), 1u);
  EXPECT_EQ(a_log[0].from, b);
  EXPECT_EQ(a_log[0].payload, ToBytes("ping!"));
}

TEST_P(TransportConformanceTest, UnreachableDestinationRefusedUpFront) {
  auto world = Make();
  Status s = world->transport_for(world->a())
                 .Send(world->a(), world->unreachable(), ToBytes("x"));
  EXPECT_FALSE(s.ok());
}

TEST_P(TransportConformanceTest, StatsCountSentAndDelivered) {
  auto world = Make();
  std::vector<Received> log;
  world->Install(world->b(), &log);

  Transport& at_a = world->transport_for(world->a());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(at_a.Send(world->a(), world->b(), ToBytes("n")).ok());
  }
  world->Pump();

  EXPECT_EQ(log.size(), 5u);
  EXPECT_GE(at_a.transport_stats().frames_sent, 5u);
  // Delivery is counted where the handler ran.
  EXPECT_GE(world->transport_for(world->b()).transport_stats().frames_delivered,
            5u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values("sim", "tcp"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace tacoma
