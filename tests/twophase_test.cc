// The two-phase-commit baseline the paper rejected (§3) — correctness of the
// protocol and its blocking failure mode.
#include <gtest/gtest.h>

#include "cash/twophase.h"

#include "cash/mint.h"

namespace tacoma::cash {
namespace {

class TwoPhaseTest : public ::testing::Test {
 protected:
  TwoPhaseTest() : mint_(9) {
    customer_ = kernel_.AddSite("customer");
    provider_ = kernel_.AddSite("provider");
    coordinator_ = kernel_.AddSite("coordinator");
    kernel_.net().AddLink(customer_, coordinator_);
    kernel_.net().AddLink(provider_, coordinator_);
    kernel_.net().AddLink(customer_, provider_);
    exchange_ = std::make_unique<TwoPhaseExchange>(
        &kernel_, TwoPhaseConfig{customer_, provider_, coordinator_});
  }

  Kernel kernel_;
  Mint mint_;
  std::unique_ptr<TwoPhaseExchange> exchange_;
  SiteId customer_ = 0, provider_ = 0, coordinator_ = 0;
};

TEST_F(TwoPhaseTest, CommitMovesCashAndGoods) {
  exchange_->FundCustomer({mint_.Issue(50), mint_.Issue(50)});
  ASSERT_TRUE(exchange_->Start("t1", 50).ok());
  kernel_.sim().Run();

  const TxnRecord* rec = exchange_->record("t1");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, TxnState::kDone);
  EXPECT_TRUE(rec->cash_transferred);
  EXPECT_TRUE(rec->goods_transferred);
  EXPECT_EQ(exchange_->customer_wallet().Balance(), 50u);
  EXPECT_EQ(exchange_->provider_wallet().Balance(), 50u);
}

TEST_F(TwoPhaseTest, InsufficientFundsAborts) {
  exchange_->FundCustomer({mint_.Issue(10)});
  ASSERT_TRUE(exchange_->Start("t1", 50).ok());
  kernel_.sim().Run();

  const TxnRecord* rec = exchange_->record("t1");
  EXPECT_EQ(rec->state, TxnState::kAborted);
  EXPECT_FALSE(rec->cash_transferred);
  EXPECT_FALSE(rec->goods_transferred);
  // Escrow released.
  EXPECT_EQ(exchange_->customer_wallet().Balance(), 10u);
}

TEST_F(TwoPhaseTest, DuplicateTransactionIdRejected) {
  exchange_->FundCustomer({mint_.Issue(50)});
  ASSERT_TRUE(exchange_->Start("t1", 50).ok());
  EXPECT_FALSE(exchange_->Start("t1", 50).ok());
}

TEST_F(TwoPhaseTest, SequentialTransactions) {
  exchange_->FundCustomer({mint_.Issue(30), mint_.Issue(30), mint_.Issue(30)});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(exchange_->Start("t" + std::to_string(i), 30).ok());
  }
  kernel_.sim().Run();
  EXPECT_EQ(exchange_->provider_wallet().Balance(), 90u);
  EXPECT_EQ(exchange_->customer_wallet().Balance(), 0u);
}

TEST_F(TwoPhaseTest, CoordinatorCrashBlocksTransaction) {
  // The paper's objection: a transaction mechanism is "effective only if it
  // were trusted" — and it blocks when the trusted party fails.
  exchange_->FundCustomer({mint_.Issue(50)});
  ASSERT_TRUE(exchange_->Start("t1", 50).ok());
  // Kill the coordinator inside the blocking window: the customer has already
  // escrowed on PREPARE (~2ms with the default 1ms links), but COMMIT (~4ms)
  // will never be sent.
  kernel_.sim().After(2500, [this] { kernel_.CrashSite(coordinator_); });
  kernel_.sim().Run();

  const TxnRecord* rec = exchange_->record("t1");
  EXPECT_NE(rec->state, TxnState::kDone);
  EXPECT_FALSE(rec->cash_transferred);
  EXPECT_FALSE(rec->goods_transferred);
  // The customer's escrowed cash is stuck — the classic 2PC blocking window.
  EXPECT_EQ(exchange_->customer_wallet().Balance(), 0u);
}

TEST_F(TwoPhaseTest, MessageCountPerCommit) {
  exchange_->FundCustomer({mint_.Issue(50)});
  uint64_t before = kernel_.stats().transfers_sent;
  ASSERT_TRUE(exchange_->Start("t1", 50).ok());
  kernel_.sim().Run();
  uint64_t messages = kernel_.stats().transfers_sent - before;
  // begin + 2 prepare + 2 votes + 2 commit + cash + goods + 2 acks = 11.
  EXPECT_EQ(messages, 11u);
}

}  // namespace
}  // namespace tacoma::cash
