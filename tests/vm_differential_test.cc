// Differential testing of the bytecode VM against the tree-walk oracle.
//
// Every script in the corpus runs twice — once through the compiled engine,
// once through EvalTree — on otherwise identical interpreters, and the test
// asserts the two engines are observationally indistinguishable: same
// Outcome (code and value, including error-message text), same final
// variable state, same side-effect trace (order included), same accounting
// charge (steps), same `puts` output.  The corpus covers the constructs the
// compiler special-cases (inlined builtins, the expression compiler, loop
// unwinding, fallback paths) plus every shipped example agent, which runs
// through a real Place under both engines.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/briefcase.h"
#include "core/kernel.h"
#include "core/place.h"
#include "tacl/interp.h"

namespace tacoma {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Everything observable about one evaluation.
struct Observation {
  tacl::Code code = tacl::Code::kOk;
  std::string value;
  uint64_t steps = 0;
  std::vector<std::string> output;        // puts lines, in order.
  std::vector<std::string> side_effects;  // `probe ...` calls, in order.
  std::vector<std::string> variables;     // "name=value", sorted by name.
};

Observation RunOn(tacl::Interp& interp, const std::string& script,
                  uint64_t step_limit) {
  Observation obs;
  interp.set_step_limit(step_limit);
  interp.set_output([&obs](const std::string& line) { obs.output.push_back(line); });
  interp.Register("probe", [&obs](tacl::Interp&, const std::vector<std::string>& argv) {
    std::string joined;
    for (size_t i = 1; i < argv.size(); ++i) {
      if (i > 1) joined += " ";
      joined += argv[i];
    }
    obs.side_effects.push_back(joined);
    return tacl::Ok(std::to_string(argv.size() - 1));
  });
  tacl::Outcome out = interp.Eval(script);
  obs.code = out.code;
  obs.value = out.value;
  obs.steps = interp.steps();
  for (const std::string& name : interp.VarNames()) {
    obs.variables.push_back(name + "=" + interp.GetVar(name).value_or("<unset>"));
  }
  std::sort(obs.variables.begin(), obs.variables.end());
  return obs;
}

void ExpectIdentical(const std::string& script, uint64_t step_limit = 0) {
  SCOPED_TRACE(script);
  tacl::Interp tree;
  tree.set_vm_enabled(false);
  Observation want = RunOn(tree, script, step_limit);

  tacl::Interp vm;
  vm.set_vm_enabled(true);
  Observation got = RunOn(vm, script, step_limit);

  EXPECT_EQ(static_cast<int>(want.code), static_cast<int>(got.code));
  EXPECT_EQ(want.value, got.value);
  EXPECT_EQ(want.steps, got.steps) << "accounting charge diverged";
  EXPECT_EQ(want.output, got.output);
  EXPECT_EQ(want.side_effects, got.side_effects);
  EXPECT_EQ(want.variables, got.variables);
}

TEST(VmDifferentialTest, VariablesAndIncr) {
  ExpectIdentical("set a 5");
  ExpectIdentical("set a 5; set b $a; set a");
  ExpectIdentical("set x $nope");
  ExpectIdentical("incr c; incr c; incr c 10; incr c -12; set c");
  ExpectIdentical("set s hello; incr s");
  ExpectIdentical("incr n bogus");
  ExpectIdentical("set v 007; incr v 1");
  ExpectIdentical("set a 1; unset a; set b $a");
  ExpectIdentical("set name world; set msg \"hello $name\"; set msg");
  ExpectIdentical("set a x; set b $a$a$a");
}

TEST(VmDifferentialTest, IfElse) {
  ExpectIdentical("if {1} {probe then} else {probe else}");
  ExpectIdentical("if {0} {probe then} else {probe else}");
  ExpectIdentical("if {0} {probe a} elseif {0} {probe b} elseif {1} {probe c} else {probe d}");
  ExpectIdentical("if {0} {probe a} elseif {0} {probe b}");
  ExpectIdentical("set x 3; if {$x > 2} {set y big} else {set y small}; set y");
  ExpectIdentical("if {1} then {probe legacy-then}");
  // Structural errors must produce the oracle's exact message.
  ExpectIdentical("if");
  ExpectIdentical("if {1}");
  ExpectIdentical("if {1} {probe a} else");
  ExpectIdentical("if {1} {probe a} bogus {probe b}");
  ExpectIdentical("if {notanumber} {probe a}");
}

TEST(VmDifferentialTest, WhileLoops) {
  ExpectIdentical("set i 0; while {$i < 5} {incr i}; set i");
  ExpectIdentical("set i 0; set s {}; while {$i < 10} {incr i; if {$i == 3} {continue}; if {$i > 6} {break}; append s $i}; set s");
  ExpectIdentical("while {0} {probe never}");
  ExpectIdentical("set i 0; while {$i < 3} {probe tick $i; incr i}");
  // Error in the condition, error in the body.
  ExpectIdentical("while {$undefined} {probe never}");
  ExpectIdentical("set i 0; while {$i < 3} {incr i; bogus_cmd}");
  // Nested loops with break/continue binding the right loop.
  ExpectIdentical(
      "set log {}; set i 0; while {$i < 3} {incr i; set j 0;"
      " while {$j < 3} {incr j; if {$j == 2} {break}; lappend log $i.$j}};"
      " set log");
  ExpectIdentical(
      "set log {}; set i 0; while {$i < 4} {incr i; if {$i == 2} {continue};"
      " lappend log $i}; set log");
}

TEST(VmDifferentialTest, ForLoops) {
  ExpectIdentical("for {set i 0} {$i < 5} {incr i} {probe i $i}");
  ExpectIdentical("set s {}; for {set i 9} {$i > 5} {incr i -1} {append s $i}; set s");
  ExpectIdentical("for {set i 0} {$i < 10} {incr i} {if {$i == 3} {break}}; set i");
  // continue in a for loop still runs the next-script.
  ExpectIdentical(
      "set s {}; for {set i 0} {$i < 6} {incr i} {if {$i % 2} {continue};"
      " append s $i}; set s");
  // break inside the next-script binds an enclosing loop, not this one.
  ExpectIdentical(
      "set n 0; while {1} {for {set i 0} {$i < 2} {incr i; break} {incr n};"
      " break}; list $n $i");
  ExpectIdentical("for {set i 0} {$i < 2} {incr i}");
  ExpectIdentical("for {bogus_cmd} {1} {} {probe body}");
}

TEST(VmDifferentialTest, ForeachLoops) {
  ExpectIdentical("set s {}; foreach x {c b a} {set s $x$s}; set s");
  ExpectIdentical("set out {}; foreach {k v} {a 1 b 2} {lappend out $k=$v}; set out");
  ExpectIdentical("set out {}; foreach {k v} {a 1 b} {lappend out $k=$v}; set out");
  ExpectIdentical("foreach x {} {probe never}; set x");
  ExpectIdentical("set n 0; foreach x {1 2 3 4 5} {if {$x == 4} {break}; incr n}; set n");
  ExpectIdentical("set s {}; foreach x {1 2 3} {if {$x == 2} {continue}; append s $x}; set s");
  ExpectIdentical("foreach {} {1 2} {probe never}");
  ExpectIdentical("foreach x {unbalanced \"brace} {probe never}");
  // Nested foreach with break from the inner loop only.
  ExpectIdentical(
      "set log {}; foreach a {1 2} {foreach b {x y z} {if {$b eq \"y\"} {break};"
      " lappend log $a$b}}; set log");
  // break inside a foreach nested in a while unwinds the foreach state.
  ExpectIdentical(
      "set log {}; set i 0; while {$i < 3} {incr i; foreach v {p q} {lappend log $i$v;"
      " if {$i == 2} {break}}}; set log");
}

TEST(VmDifferentialTest, ProcsAndReturn) {
  ExpectIdentical("proc twice {x} {expr {$x * 2}}; twice 21");
  ExpectIdentical("proc f {} {return early; probe never}; f");
  ExpectIdentical("proc f {} {return}; f");
  ExpectIdentical("proc add {a {b 10}} {expr {$a + $b}}; list [add 1] [add 1 2]");
  ExpectIdentical("proc v {args} {llength $args}; v a b c");
  ExpectIdentical(
      "proc fib {n} {if {$n < 2} {return $n};"
      " expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}}; fib 10");
  // return terminates a loop inside the proc body.
  ExpectIdentical("proc f {} {while {1} {return looped}}; f");
  // Top-level return / break / continue.
  ExpectIdentical("return 42");
  ExpectIdentical("break");
  ExpectIdentical("continue");
  ExpectIdentical("while {1} {probe once; break}; probe after");
}

TEST(VmDifferentialTest, Expressions) {
  ExpectIdentical("expr {1 + 2 * 3}");
  ExpectIdentical("expr {(1 + 2) * 3}");
  ExpectIdentical("expr {7 / 2}; expr {7 % 2}; expr {7.0 / 2}");
  ExpectIdentical("expr {-7 / 2}; expr {-7 % 2}");
  ExpectIdentical("expr {1 / 0}");
  ExpectIdentical("expr {1 % 0}");
  ExpectIdentical("expr {1.0 / 0}");
  ExpectIdentical("expr {3 < 4 && 4 < 3}; expr {3 < 4 || 4 < 3}");
  ExpectIdentical("expr {1 << 10}; expr {1024 >> 3}; expr {5 & 3}; expr {5 | 3}; expr {5 ^ 3}");
  ExpectIdentical("expr {\"abc\" eq \"abc\"}; expr {\"abc\" ne \"abd\"}; expr {\"abc\" < \"abd\"}");
  ExpectIdentical("expr {1 == 1.0}; expr {\"1\" eq \"1.0\"}");
  ExpectIdentical("expr {1 ? \"yes\" : \"no\"}; expr {0 ? \"yes\" : \"no\"}");
  ExpectIdentical("expr {!1}; expr {!0}; expr {~5}; expr {-(3)}");
  ExpectIdentical("expr {abs(-5)}; expr {min(3, 1, 2)}; expr {max(3, 1, 2)}");
  ExpectIdentical("expr {sqrt(16)}; expr {pow(2, 10)}; expr {fmod(7.5, 2.0)}");
  ExpectIdentical("expr {round(2.5)}; expr {floor(2.5)}; expr {ceil(2.5)}");
  ExpectIdentical("expr {double(3)}; expr {int(3.9)}");
  ExpectIdentical("set x 4; expr {$x * $x}");
  ExpectIdentical("expr {$missing + 1}");
  ExpectIdentical("expr {1 +}");
  ExpectIdentical("expr {)}");
  ExpectIdentical("expr {nosuchfn(1)}");
  ExpectIdentical("expr {fmod(1, 0)}");
  ExpectIdentical("expr {true && false}; expr {yes || no}");
  ExpectIdentical("expr {2 ** 3}");
  ExpectIdentical("expr {1e3 + 1}; expr {0x10 + 1}; expr {.5 + .25}");
  // Short-circuit must not evaluate (or error on) the dead operand.
  ExpectIdentical("expr {0 && $undefined}");
  ExpectIdentical("expr {1 || $undefined}");
  ExpectIdentical("expr {1 ? 2 : $undefined}");
  ExpectIdentical("set x 5; if {$x > 0 && $x < 10} {probe in-range}");
}

TEST(VmDifferentialTest, CommandSubstitution) {
  ExpectIdentical("set a [expr {1 + 1}]");
  ExpectIdentical("set a [list 1 2 3]; llength $a");
  ExpectIdentical("probe [probe inner] outer");
  ExpectIdentical("set x a[probe mid]b; set x");
  // Errors inside a substitution propagate.
  ExpectIdentical("set a [bogus_cmd]");
  ExpectIdentical("set a [expr {1 +}]");
  // Command substitution inside an expression (the non-compiled expr path),
  // including the oracle's evaluate-after-error behaviour.
  ExpectIdentical("expr {[probe one] + [probe two three]}");
  ExpectIdentical("expr {$undefined + [probe still-runs]}");
  ExpectIdentical("set i 0; while {[incr i] < 4} {probe lap $i}");
  // break/continue raised while substituting a loop body's words.
  ExpectIdentical("set i 0; while {$i < 3} {incr i; probe a[break]b}; set i");
  ExpectIdentical("set i 0; while {$i < 3} {incr i; set x [continue]}; set i");
}

TEST(VmDifferentialTest, StepLimitAndDepth) {
  ExpectIdentical("set i 0; while {$i < 1000} {incr i}", 100);
  ExpectIdentical("set i 0; while {$i < 1000} {incr i}", 0);
  ExpectIdentical("probe a; probe b; probe c", 3);
  ExpectIdentical("probe a; probe b; probe c", 2);
  ExpectIdentical("proc f {n} {if {$n > 0} {f [expr {$n - 1}]}}; f 10000");
}

TEST(VmDifferentialTest, MiscBuiltins) {
  ExpectIdentical("puts hello; puts world");
  ExpectIdentical("set l {}; lappend l a; lappend l b c; set l");
  ExpectIdentical("string length abc; string toupper abc; string index abc 1");
  ExpectIdentical("join {a b c} -");
  ExpectIdentical("lindex {a b c} 1; lrange {a b c d} 1 2");
  ExpectIdentical("bogus_cmd 1 2 3");
  ExpectIdentical("");
  ExpectIdentical("   ;  ; \n\n ;");
  ExpectIdentical("# just a comment\nprobe after-comment");
  ExpectIdentical("global g; set g 1; proc f {} {global g; incr g}; f; set g");
  ExpectIdentical("proc f {} {upvar 1 x local; set local 99}; set x 1; f; set x");
  ExpectIdentical("catch {bogus_cmd} msg; set msg");
  ExpectIdentical("catch {expr {1 + 1}} val; set val");
  ExpectIdentical("eval {set a 1; incr a}");
  ExpectIdentical("set body {incr n}; set n 0; eval $body; eval $body; set n");
}

// Shadowing an inlined builtin after a unit is cached must route the shadowed
// statements through the live command table (the epoch fallback), matching
// what the tree-walker would do.
TEST(VmDifferentialTest, BuiltinShadowingFallback) {
  for (bool vm_on : {false, true}) {
    SCOPED_TRACE(vm_on ? "vm" : "tree");
    tacl::Interp interp;
    interp.set_vm_enabled(vm_on);
    // Warm the unit cache with an inlined `incr`.
    ASSERT_EQ(interp.Eval("set n 0; incr n").code, tacl::Code::kOk);
    // Shadow incr: now +2 per call.
    interp.Register("incr",
                    [](tacl::Interp& i, const std::vector<std::string>& argv) {
                      int64_t v = std::stoll(i.GetVar(argv[1]).value_or("0"));
                      i.SetVar(argv[1], std::to_string(v + 2));
                      return tacl::Ok(std::to_string(v + 2));
                    });
    tacl::Outcome out = interp.Eval("set n 0; incr n");
    EXPECT_EQ(out.code, tacl::Code::kOk);
    EXPECT_EQ(out.value, "2") << "shadowed incr must win over the inlined one";
  }
}

// A proc named after an inlined builtin behaves the same way.
TEST(VmDifferentialTest, ProcShadowingInlinedBuiltin) {
  ExpectIdentical("set r [expr {1 + 1}]; proc expr {args} {return shadowed};"
                  " list $r [expr {1 + 1}]");
}

// --- Example agents through a real Place ------------------------------------------

// Runs one agent script under both engines in identical fresh kernels and
// compares the activation outcome, agent output, accounting, and the effect
// monitor's verdicts.
void ExpectAgentIdentical(const std::string& code) {
  struct AgentObservation {
    std::string status;
    std::vector<std::string> output;
    uint64_t steps = 0;
    uint64_t manifest_violations = 0;
    uint64_t failed_activations = 0;
  };
  AgentObservation results[2];
  const bool saved = tacl::VmDefaultEnabled();
  for (int engine = 0; engine < 2; ++engine) {
    // Activation interpreters are built inside RunAgentCode, so the engine is
    // selected through the process-wide default.
    tacl::SetVmDefaultEnabled(engine == 1);
    Kernel kernel;
    SiteId site = kernel.AddSite("alpha");
    kernel.AddSite("beta");
    Place* place = kernel.place(site);
    place->set_effect_monitor(true);
    AgentObservation& obs = results[engine];
    place->set_agent_output([&obs](const std::string& line) { obs.output.push_back(line); });
    Briefcase bc;
    Status status = place->RunAgentCode(code, bc, "diff-agent");
    obs.status = status.ok() ? "ok" : status.message();
    obs.steps = place->stats().interp_steps;
    obs.manifest_violations = place->stats().manifest_violations;
    obs.failed_activations = place->stats().failed_activations;
  }
  tacl::SetVmDefaultEnabled(saved);
  EXPECT_EQ(results[0].status, results[1].status);
  EXPECT_EQ(results[0].output, results[1].output);
  EXPECT_EQ(results[0].steps, results[1].steps) << "accounting charge diverged";
  EXPECT_EQ(results[0].manifest_violations, results[1].manifest_violations);
  EXPECT_EQ(results[0].failed_activations, results[1].failed_activations);
}

TEST(VmDifferentialTest, ExampleAgentsRunIdentically) {
  const fs::path agents = fs::path(TACOMA_SOURCE_DIR) / "examples" / "agents";
  ASSERT_TRUE(fs::exists(agents)) << agents;
  std::vector<fs::path> scripts;
  for (const auto& entry : fs::directory_iterator(agents)) {
    if (entry.path().extension() == ".tacl") {
      scripts.push_back(entry.path());
    }
  }
  std::sort(scripts.begin(), scripts.end());
  ASSERT_GE(scripts.size(), 5u);
  for (const fs::path& script : scripts) {
    SCOPED_TRACE(script.filename().string());
    ExpectAgentIdentical(ReadFile(script));
  }
}

// A warm digest hit at the place must skip the compile entirely: repeating
// the same CODE through one place compiles exactly once.
TEST(VmDifferentialTest, WarmPlaceActivationSkipsCompile) {
  const bool saved = tacl::VmDefaultEnabled();
  tacl::SetVmDefaultEnabled(true);
  Kernel kernel;
  SiteId site = kernel.AddSite("alpha");
  Place* place = kernel.place(site);
  const std::string code = "set total 0; foreach x {1 2 3 4 5} {incr total $x}";
  for (int hop = 0; hop < 5; ++hop) {
    Briefcase bc;
    ASSERT_TRUE(place->RunAgentCode(code, bc, "warm-agent").ok());
  }
  tacl::SetVmDefaultEnabled(saved);
  EXPECT_EQ(place->stats().vm_compiles, 1u);
  EXPECT_EQ(place->code_cache().unit_stats().hits, 4u);
  EXPECT_EQ(place->code_cache().unit_stats().misses, 1u);
  EXPECT_GT(place->stats().vm_dispatches, 0u);
}

}  // namespace
}  // namespace tacoma
