// Golden-file lock on the bytecode compiler's output for a representative
// script corpus.  Any compiler change that shifts generated code — a new
// optimization, an opcode renumbering, a folding fix — shows up as a golden
// diff to be reviewed, not as a silent codegen change.
//
// Regenerate after an intentional change with:
//   TACOMA_REGEN_GOLDEN=1 ctest --test-dir build -R VmDisasmGolden
// then review the diff under tests/golden/ like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "tacl/vm/bytecode.h"
#include "tacl/vm/compiler.h"

namespace tacoma::tacl {
namespace {

namespace fs = std::filesystem;

bool RegenRequested() {
  const char* env = std::getenv("TACOMA_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// One listing per corpus entry, separated by headers, all in one golden file.
struct Snippet {
  const char* title;
  const char* script;
};

constexpr Snippet kCorpus[] = {
    {"set-and-substitution", "set greeting hello\nset message \"$greeting world\"\n"},
    {"constant-folding", "set x [expr {2 * 3 + 4}]\nset y [expr {1 < 2 && 3 < 4}]\n"},
    {"counting-loop", "set total 0\nfor {set i 0} {$i < 10} {incr i} {incr total $i}\n"},
    {"while-break-continue",
     "set i 0\nwhile {$i < 10} {incr i; if {$i == 3} {continue}; if {$i > 6} "
     "{break}; append s $i}\n"},
    {"foreach-strides", "foreach {k v} {a 1 b 2} {lappend out $k=$v}\n"},
    {"generic-invocation", "puts [join [list a b c] -]\n"},
    {"expr-fallback-command-sub", "set n [expr {[llength {a b}] + 1}]\n"},
    {"short-circuit-and-ternary",
     "set v [expr {$a > 0 ? \"pos\" : \"non-pos\"}]\nset w [expr {$a > 0 && $b > 0}]\n"},
};

TEST(VmDisasmGoldenTest, CorpusMatchesGoldenListing) {
  std::string actual;
  for (const Snippet& snippet : kCorpus) {
    actual += "==== ";
    actual += snippet.title;
    actual += " ====\n";
    actual += snippet.script;
    actual += "----\n";
    vm::CompileOptions options;
    Status error = OkStatus();
    auto unit = vm::Compile(snippet.script, options, &error);
    ASSERT_NE(unit, nullptr) << snippet.title << ": " << error.message();
    actual += vm::Disassemble(*unit);
    actual += "\n";
  }

  const fs::path golden =
      fs::path(TACOMA_SOURCE_DIR) / "tests" / "golden" / "vm_disasm.txt";
  if (RegenRequested()) {
    std::ofstream out(golden);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << golden;
    return;
  }
  ASSERT_TRUE(fs::exists(golden))
      << golden << " is missing; run with TACOMA_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(ReadFile(golden), actual)
      << "compiled bytecode drifted from " << golden
      << "; regenerate with TACOMA_REGEN_GOLDEN=1 if the change is intended";
}

}  // namespace
}  // namespace tacoma::tacl
