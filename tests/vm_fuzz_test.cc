// Fuzz-ish differential testing: a seeded generator emits random-but-valid
// TACL scripts biased toward the constructs the VM compiles specially —
// nested loops, break/continue at surprising depths, expressions mixing
// ints, doubles and strings, command substitution, procs — and every script
// runs through both engines.  Any observable divergence (outcome, variables,
// step charge, side-effect order) fails the test with the offending script
// and its seed, which then reproduces deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "tacl/interp.h"

namespace tacoma::tacl {
namespace {

// Small deterministic PRNG (xorshift*), independent of the library's Rng so
// the corpus never shifts when the simulator's generator changes.
class ScriptRng {
 public:
  explicit ScriptRng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  // In [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }
  bool Chance(int percent) { return Below(100) < static_cast<uint64_t>(percent); }

 private:
  uint64_t state_;
};

// Generates one statement, recursing into blocks up to `depth`.
class ScriptGenerator {
 public:
  explicit ScriptGenerator(uint64_t seed) : rng_(seed) {}

  std::string Script() {
    std::string s;
    int statements = 1 + static_cast<int>(rng_.Below(6));
    for (int i = 0; i < statements; ++i) {
      s += Statement(2);
      s += "\n";
    }
    return s;
  }

 private:
  std::string Var() {
    static const char* kNames[] = {"a", "b", "c", "n", "s", "acc"};
    return kNames[rng_.Below(6)];
  }

  std::string Atom() {
    switch (rng_.Below(6)) {
      case 0: return std::to_string(static_cast<int64_t>(rng_.Below(200)) - 100);
      case 1: return std::to_string(static_cast<int64_t>(rng_.Below(10))) + "." +
                     std::to_string(static_cast<int64_t>(rng_.Below(100)));
      case 2: return "$" + Var();
      case 3: return "0";
      case 4: return "1";
      default: return std::to_string(static_cast<int64_t>(rng_.Below(7)));
    }
  }

  std::string Expr(int depth) {
    if (depth <= 0 || rng_.Chance(30)) {
      return Atom();
    }
    static const char* kOps[] = {"+", "-", "*", "/", "%", "<", "<=", ">", ">=",
                                 "==", "!=", "&&", "||", "&", "|", "^"};
    std::string lhs = Expr(depth - 1);
    std::string rhs = Expr(depth - 1);
    const char* op = kOps[rng_.Below(16)];
    if (rng_.Chance(15)) {
      return "min(" + lhs + ", " + rhs + ")";
    }
    if (rng_.Chance(10)) {
      return "abs(" + lhs + ")";
    }
    return "(" + lhs + " " + op + " " + rhs + ")";
  }

  std::string Block(int depth, bool in_loop) {
    std::string s;
    int statements = 1 + static_cast<int>(rng_.Below(3));
    for (int i = 0; i < statements; ++i) {
      s += Statement(depth, in_loop);
      s += "; ";
    }
    return s;
  }

  std::string Statement(int depth, bool in_loop = false) {
    int pick = static_cast<int>(rng_.Below(in_loop ? 12 : 10));
    switch (pick) {
      case 0:
        return "set " + Var() + " " + Atom();
      case 1:
        return "set " + Var() + " [expr {" + Expr(depth) + "}]";
      case 2:
        return "incr " + Var() + (rng_.Chance(50) ? " " + std::to_string(
                                      static_cast<int64_t>(rng_.Below(5)) - 2)
                                                  : "");
      case 3:
        return "probe " + Atom() + " " + Atom();
      case 4:
        if (depth <= 0) return "probe leaf";
        return "if {" + Expr(depth - 1) + "} {" + Block(depth - 1, in_loop) +
               "} else {" + Block(depth - 1, in_loop) + "}";
      case 5: {
        if (depth <= 0) return "set " + Var() + " 1";
        // A bounded while: guard variable makes termination certain.
        std::string guard = "g" + std::to_string(rng_.Below(3));
        return "set " + guard + " 0; while {$" + guard + " < " +
               std::to_string(2 + rng_.Below(5)) + "} {incr " + guard + "; " +
               Block(depth - 1, true) + "}";
      }
      case 6: {
        if (depth <= 0) return "probe leaf2";
        std::string body = Block(depth - 1, true);
        return "foreach v {p q r} {" + body + "}";
      }
      case 7: {
        if (depth <= 0) return "incr n";
        std::string iv = "i" + std::to_string(rng_.Below(2));
        return "for {set " + iv + " 0} {$" + iv + " < " +
               std::to_string(1 + rng_.Below(4)) + "} {incr " + iv + "} {" +
               Block(depth - 1, true) + "}";
      }
      case 8:
        return "append s " + Atom();
      case 9:
        return "lappend acc " + Atom();
      case 10:
        // Only generated when in_loop.
        return rng_.Chance(60) ? "if {" + Expr(0) + "} {break}"
                               : "break";
      default:
        return rng_.Chance(60) ? "if {" + Expr(0) + "} {continue}"
                               : "continue";
    }
  }

  ScriptRng rng_;
};

struct Observation {
  Code code;
  std::string value;
  uint64_t steps;
  std::vector<std::string> effects;
  std::vector<std::string> variables;
};

Observation RunOn(Interp& interp, const std::string& script) {
  Observation obs;
  interp.set_step_limit(20000);  // Random nesting can still multiply out.
  interp.Register("probe", [&obs](Interp&, const std::vector<std::string>& argv) {
    std::string joined;
    for (size_t i = 1; i < argv.size(); ++i) {
      if (i > 1) joined += " ";
      joined += argv[i];
    }
    obs.effects.push_back(joined);
    return Ok(std::to_string(argv.size() - 1));
  });
  Outcome out = interp.Eval(script);
  obs.code = out.code;
  obs.value = out.value;
  obs.steps = interp.steps();
  for (const std::string& name : interp.VarNames()) {
    obs.variables.push_back(name + "=" + interp.GetVar(name).value_or("<unset>"));
  }
  std::sort(obs.variables.begin(), obs.variables.end());
  return obs;
}

TEST(VmFuzzTest, OneThousandSeededScriptsMatchTreeWalk) {
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    ScriptGenerator gen(seed * 0x9E3779B9ULL);
    const std::string script = gen.Script();
    SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + script);

    Interp tree;
    tree.set_vm_enabled(false);
    Observation want = RunOn(tree, script);

    Interp vm;
    vm.set_vm_enabled(true);
    Observation got = RunOn(vm, script);

    ASSERT_EQ(static_cast<int>(want.code), static_cast<int>(got.code));
    ASSERT_EQ(want.value, got.value);
    ASSERT_EQ(want.steps, got.steps) << "step charge diverged";
    ASSERT_EQ(want.effects, got.effects);
    ASSERT_EQ(want.variables, got.variables);
  }
}

}  // namespace
}  // namespace tacoma::tacl
